/root/repo/target/debug/deps/differential-5aac81fb63cf0ee1.d: tests/differential.rs

/root/repo/target/debug/deps/differential-5aac81fb63cf0ee1: tests/differential.rs

tests/differential.rs:
