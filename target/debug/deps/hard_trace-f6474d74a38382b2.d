/root/repo/target/debug/deps/hard_trace-f6474d74a38382b2.d: crates/trace/src/lib.rs crates/trace/src/codec.rs crates/trace/src/detect.rs crates/trace/src/event.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/sched.rs crates/trace/src/stats.rs

/root/repo/target/debug/deps/hard_trace-f6474d74a38382b2: crates/trace/src/lib.rs crates/trace/src/codec.rs crates/trace/src/detect.rs crates/trace/src/event.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/sched.rs crates/trace/src/stats.rs

crates/trace/src/lib.rs:
crates/trace/src/codec.rs:
crates/trace/src/detect.rs:
crates/trace/src/event.rs:
crates/trace/src/op.rs:
crates/trace/src/program.rs:
crates/trace/src/sched.rs:
crates/trace/src/stats.rs:
