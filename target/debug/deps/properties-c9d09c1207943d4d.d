/root/repo/target/debug/deps/properties-c9d09c1207943d4d.d: crates/trace/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c9d09c1207943d4d.rmeta: crates/trace/tests/properties.rs Cargo.toml

crates/trace/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
