/root/repo/target/debug/deps/obs_identity-8e931237c99a2219.d: crates/core/tests/obs_identity.rs

/root/repo/target/debug/deps/obs_identity-8e931237c99a2219: crates/core/tests/obs_identity.rs

crates/core/tests/obs_identity.rs:
