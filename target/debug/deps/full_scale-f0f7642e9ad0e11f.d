/root/repo/target/debug/deps/full_scale-f0f7642e9ad0e11f.d: tests/full_scale.rs

/root/repo/target/debug/deps/full_scale-f0f7642e9ad0e11f: tests/full_scale.rs

tests/full_scale.rs:
