//! Prometheus text exposition (format version 0.0.4).
//!
//! Builds the plain-text body served by the harness metrics endpoint:
//! `# TYPE` headers, `name{labels} value` samples, and the
//! `_bucket`/`_sum`/`_count` triplet for histograms. Only the subset
//! of the format we emit is supported — counters, gauges, histograms,
//! string-escaped label values.

use crate::jsonl;
use crate::recorder::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    const fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Accumulates samples and renders them grouped by metric name.
#[derive(Default)]
pub struct Exposition {
    /// metric name -> (type, sample lines). BTreeMap keeps rendering
    /// deterministic.
    metrics: BTreeMap<String, (Kind, Vec<String>)>,
}

impl Exposition {
    /// An empty exposition.
    #[must_use]
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn sample(&mut self, name: &str, kind: Kind, line: String) {
        let entry = self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| (kind, Vec::new()));
        debug_assert!(
            entry.0 == kind,
            "metric {name} registered twice with different types"
        );
        entry.1.push(line);
    }

    /// Adds one counter sample.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let line = format!("{name}{} {value}", fmt_labels(labels));
        self.sample(name, Kind::Counter, line);
    }

    /// Adds one gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let line = format!("{name}{} {value}", fmt_labels(labels));
        self.sample(name, Kind::Gauge, line);
    }

    /// Adds one histogram (buckets, sum, count) under `name`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &HistogramSnapshot) {
        let mut lines = Vec::with_capacity(h.buckets.len() + 3);
        for &(le, cumulative) in &h.buckets {
            let mut with_le: Vec<(&str, String)> =
                labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
            with_le.push(("le", le.to_string()));
            let borrowed: Vec<(&str, &str)> =
                with_le.iter().map(|(k, v)| (*k, v.as_str())).collect();
            lines.push(format!(
                "{name}_bucket{} {cumulative}",
                fmt_labels(&borrowed)
            ));
        }
        let mut inf: Vec<(&str, &str)> = labels.to_vec();
        inf.push(("le", "+Inf"));
        lines.push(format!("{name}_bucket{} {}", fmt_labels(&inf), h.count));
        lines.push(format!("{name}_sum{} {}", fmt_labels(labels), h.sum));
        lines.push(format!("{name}_count{} {}", fmt_labels(labels), h.count));
        for line in lines {
            self.sample(name, Kind::Histogram, line);
        }
    }

    /// Adds every counter and histogram from a recorder snapshot,
    /// tagged with `labels`. Zero-valued counters are included so the
    /// full taxonomy is visible to scrapers.
    pub fn add_snapshot(&mut self, labels: &[(&str, &str)], s: &Snapshot) {
        for id in crate::CounterId::ALL {
            self.counter(id.name(), labels, s.counter(id));
        }
        for h in &s.histograms {
            self.histogram(h.id.name(), labels, h);
        }
    }

    /// Renders the accumulated samples as a text-format body.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, (kind, lines)) in &self.metrics {
            let _ = writeln!(out, "# TYPE {name} {}", kind.label());
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

fn fmt_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|&(k, v)| format!("{k}=\"{}\"", jsonl::escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemoryRecorder, Recorder};
    use crate::{CounterId, HistId};

    #[test]
    fn renders_types_labels_and_histogram_triplets() {
        let rec = MemoryRecorder::new();
        rec.counter(CounterId::BroadcastsSent, 4);
        rec.histogram(HistId::LockDepth, 1);
        rec.histogram(HistId::LockDepth, 9);
        let mut e = Exposition::new();
        e.add_snapshot(&[("app", "barnes")], &rec.snapshot());
        e.gauge("hard_runs", &[], 2.0);
        let body = e.render();
        assert!(body.contains("# TYPE hard_meta_broadcasts_total counter"));
        assert!(body.contains("hard_meta_broadcasts_total{app=\"barnes\"} 4"));
        // Zero counters still appear.
        assert!(body.contains("hard_races_reported_total{app=\"barnes\"} 0"));
        assert!(body.contains("# TYPE hard_lock_depth histogram"));
        assert!(body.contains("hard_lock_depth_bucket{app=\"barnes\",le=\"1\"} 1"));
        assert!(body.contains("hard_lock_depth_bucket{app=\"barnes\",le=\"+Inf\"} 2"));
        assert!(body.contains("hard_lock_depth_sum{app=\"barnes\"} 10"));
        assert!(body.contains("hard_lock_depth_count{app=\"barnes\"} 2"));
        assert!(body.contains("# TYPE hard_runs gauge"));
        assert!(body.contains("hard_runs 2"));
        // Each TYPE header appears exactly once.
        assert_eq!(body.matches("# TYPE hard_lock_depth histogram").count(), 1);
    }
}
