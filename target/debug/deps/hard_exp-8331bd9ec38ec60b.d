/root/repo/target/debug/deps/hard_exp-8331bd9ec38ec60b.d: crates/harness/src/bin/hard_exp.rs Cargo.toml

/root/repo/target/debug/deps/libhard_exp-8331bd9ec38ec60b.rmeta: crates/harness/src/bin/hard_exp.rs Cargo.toml

crates/harness/src/bin/hard_exp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
