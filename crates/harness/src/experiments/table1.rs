//! Table 1: parameters of the simulated architecture.
//!
//! Not an experiment — the live defaults of the simulator, printed in
//! the paper's format so a reader can diff them against Table 1.

use crate::table::TextTable;
use hard::HardConfig;

/// Renders the default machine parameters.
#[must_use]
pub fn run() -> TextTable {
    let c = HardConfig::default();
    let mut t = TextTable::new(vec!["parameter", "value"]);
    t.row(vec!["cores".into(), c.hierarchy.num_cores.to_string()]);
    t.row(vec!["L1 cache".into(), format!("{}", c.hierarchy.l1)]);
    t.row(vec![
        "L1 latency".into(),
        format!("{} cycles", c.latency.l1_hit),
    ]);
    t.row(vec!["L2 cache".into(), format!("{}", c.hierarchy.l2)]);
    t.row(vec![
        "L2 latency".into(),
        format!("{} cycles", c.latency.l2_hit),
    ]);
    t.row(vec![
        "memory latency".into(),
        format!("{} cycles", c.latency.memory),
    ]);
    t.row(vec!["BFVector".into(), format!("{}/line", c.bloom)]);
    t.row(vec![
        "metadata granularity".into(),
        format!("{}", c.granularity),
    ]);
    t.row(vec![
        "barrier pruning".into(),
        c.barrier_pruning.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_values() {
        let s = run().to_string();
        assert!(s.contains("16KB 4-way 32B/line"));
        assert!(s.contains("1024KB 8-way 32B/line"));
        assert!(s.contains("3 cycles"));
        assert!(s.contains("10 cycles"));
        assert!(s.contains("200 cycles"));
        assert!(s.contains("16b/line"));
    }
}
