//! The §3.6 detection-window measurement.
//!
//! "Since the L2 cache is typically a few megabytes large, keeping the
//! candidate set only in the cache provides a detection window that is
//! hundreds of thousands of instructions large, before lines have to be
//! evicted back to the memory." This experiment measures that window on
//! the synthetic applications: the metadata lifetime of each line, from
//! its fetch to its L2 displacement, counted in *memory accesses* (our
//! trace has no non-memory instructions to count; the paper's
//! instruction windows are a small constant factor larger).

use crate::campaign::{race_free_trace, CampaignConfig};
use crate::table::TextTable;
use hard_cache::policy::NullFactory;
use hard_cache::{Hierarchy, HierarchyConfig, ServedBy};
use hard_trace::{Op, TraceEvent};
use hard_types::Addr;
use hard_workloads::App;
use std::collections::BTreeMap;

/// Window statistics of one application at one L2 size.
#[derive(Clone, Debug)]
pub struct WindowRow {
    /// The application.
    pub app: App,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Number of displacement events observed.
    pub evictions: usize,
    /// Median metadata lifetime in accesses (0 if no eviction).
    pub median: u64,
    /// 90th-percentile lifetime.
    pub p90: u64,
    /// Maximum lifetime.
    pub max: u64,
    /// Total memory accesses in the run.
    pub total_accesses: u64,
}

/// The full detection-window study.
#[derive(Clone, Debug)]
pub struct WindowStudy {
    /// One row per (application, L2 size).
    pub rows: Vec<WindowRow>,
}

fn measure(app: App, cfg: &CampaignConfig, l2_bytes: u64) -> WindowRow {
    let trace = race_free_trace(app, cfg);
    let mut hcfg = HierarchyConfig::default();
    hcfg.l2 = hard_cache::CacheGeometry::new(l2_bytes, hcfg.l2.ways(), hcfg.l2.line_bytes());
    let mut h = Hierarchy::new(hcfg, NullFactory).expect("default hierarchy shape is valid");
    let mut fetched_at: BTreeMap<Addr, u64> = BTreeMap::new();
    let mut lifetimes: Vec<u64> = Vec::new();
    let mut ordinal = 0u64;
    let line_of = |a: Addr| hcfg.l1.line_of(a);
    for e in &trace.events {
        if let TraceEvent::Op { thread, op } = e {
            let access = match *op {
                Op::Read { addr, size, .. } => Some((addr, size, hard_types::AccessKind::Read)),
                Op::Write { addr, size, .. } => Some((addr, size, hard_types::AccessKind::Write)),
                Op::Lock { lock, .. } | Op::Unlock { lock, .. } => {
                    Some((lock.addr(), 4, hard_types::AccessKind::Write))
                }
                _ => None,
            };
            let Some((addr, size, kind)) = access else {
                continue;
            };
            if thread.index() >= hcfg.num_cores {
                continue;
            }
            for line in hcfg.l1.lines_in(addr, u64::from(size)) {
                ordinal += 1;
                let r = h
                    .ensure(thread.core(), line, kind)
                    .expect("fault-free measurement hierarchy never errors");
                if r.served_by == ServedBy::Memory {
                    fetched_at.insert(line_of(line), ordinal);
                }
                for evicted in h.drain_l2_evictions() {
                    if let Some(f) = fetched_at.remove(&evicted) {
                        lifetimes.push(ordinal - f);
                    }
                }
            }
        }
    }
    lifetimes.sort_unstable();
    let pick = |q: f64| -> u64 {
        if lifetimes.is_empty() {
            0
        } else {
            lifetimes[((lifetimes.len() - 1) as f64 * q) as usize]
        }
    };
    WindowRow {
        app,
        l2_bytes,
        evictions: lifetimes.len(),
        median: pick(0.5),
        p90: pick(0.9),
        max: lifetimes.last().copied().unwrap_or(0),
        total_accesses: ordinal,
    }
}

/// Runs the study over the paper's default (1 MB) and smallest
/// (128 KB) L2 sizes, on the campaign pool.
#[must_use]
pub fn run(cfg: &CampaignConfig) -> WindowStudy {
    let rows = crate::campaign::per_app(cfg.jobs, |app| {
        [1024 * 1024, 128 * 1024].map(|l2| measure(app, cfg, l2))
    })
    .into_iter()
    .flatten()
    .collect();
    WindowStudy { rows }
}

impl WindowStudy {
    /// Renders the study.
    #[must_use]
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "application",
            "L2",
            "evictions",
            "median window",
            "p90 window",
            "max window",
            "accesses",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.name().into(),
                format!("{}KB", r.l2_bytes / 1024),
                r.evictions.to_string(),
                r.median.to_string(),
                r.p90.to_string(),
                r.max.to_string(),
                r.total_accesses.to_string(),
            ]);
        }
        t
    }
}

impl std::fmt::Display for WindowStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_shrink_with_l2_size() {
        let cfg = CampaignConfig::reduced(0.2, 1);
        let s = run(&cfg);
        assert_eq!(s.rows.len(), 12);
        for pair in s.rows.chunks(2) {
            let (big, small) = (&pair[0], &pair[1]);
            assert_eq!(big.app, small.app);
            assert!(big.l2_bytes > small.l2_bytes);
            // A smaller L2 displaces at least as often.
            assert!(
                small.evictions >= big.evictions,
                "{}: {} vs {}",
                big.app,
                small.evictions,
                big.evictions
            );
        }
        // At least one big-footprint app shows long windows at 1MB.
        assert!(
            s.rows
                .iter()
                .filter(|r| r.l2_bytes == 1024 * 1024)
                .any(|r| r.evictions == 0 || r.median > 1000),
            "the 1MB L2 must provide a long detection window"
        );
    }
}
