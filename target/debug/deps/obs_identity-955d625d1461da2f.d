/root/repo/target/debug/deps/obs_identity-955d625d1461da2f.d: crates/core/tests/obs_identity.rs Cargo.toml

/root/repo/target/debug/deps/libobs_identity-955d625d1461da2f.rmeta: crates/core/tests/obs_identity.rs Cargo.toml

crates/core/tests/obs_identity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
