//! The HARD machine: detection and timing on the simulated CMP.

use crate::config::HardConfig;
use crate::metadata::{HardLineMeta, HardMetaFactory};
use hard_bloom::LockRegister;
use hard_cache::{BusTimeline, Hierarchy, MemStats, ServedBy};
use hard_lockset::{dummy_lock, fork_transfer, lockset_access};
use hard_trace::{Detector, Op, RaceReport, TraceEvent};
use hard_types::{AccessKind, Addr, CoreId, Cycles, LockId, SiteId, ThreadId};
use std::collections::BTreeSet;



/// HARD: a CMP whose caches carry bloom-filter candidate sets and
/// LStates, with per-core Lock/Counter Registers (paper §3).
///
/// The machine is a [`Detector`] (it reports races) and a timing model
/// (it tracks per-core cycles and shared-bus contention; see
/// [`HardMachine::total_cycles`]).
#[derive(Debug)]
pub struct HardMachine {
    cfg: HardConfig,
    hierarchy: Hierarchy<HardMetaFactory>,
    /// One Lock/Counter Register pair per *thread*: the hardware holds
    /// the running thread's pair; on a context switch the OS swaps it
    /// like any other register state (§3.3 stores "the lock set of the
    /// running thread").
    registers: Vec<LockRegister>,
    /// The thread currently occupying each core, for context-switch
    /// accounting.
    running: Vec<Option<ThreadId>>,
    reports: Vec<RaceReport>,
    reported: BTreeSet<(Addr, SiteId)>,
    core_time: Vec<u64>,
    bus: BusTimeline,
    detection_enabled: bool,
}

impl HardMachine {
    /// A fresh machine.
    #[must_use]
    pub fn new(cfg: HardConfig) -> HardMachine {
        let factory = HardMetaFactory {
            shape: cfg.bloom,
            granules_per_line: cfg.granules_per_line(),
        };
        let n = cfg.hierarchy.num_cores;
        HardMachine {
            hierarchy: Hierarchy::new(cfg.hierarchy, factory),
            registers: (0..n).map(|_| LockRegister::new(cfg.bloom)).collect(),
            running: vec![None; n],
            reports: Vec::new(),
            reported: BTreeSet::new(),
            core_time: vec![0; n],
            bus: BusTimeline::new(),
            detection_enabled: true,
            cfg,
        }
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &HardConfig {
        &self.cfg
    }

    /// Memory-system statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        self.hierarchy.stats()
    }

    /// The shared-bus timeline (for utilization reporting).
    #[must_use]
    pub fn bus(&self) -> &BusTimeline {
        &self.bus
    }

    /// Execution time so far: the maximum core clock.
    #[must_use]
    pub fn total_cycles(&self) -> Cycles {
        Cycles(self.core_time.iter().copied().max().unwrap_or(0))
    }

    /// True if the line containing `addr` ever lost its metadata to an
    /// L2 displacement — the paper's only cause of missed races in the
    /// default configuration (§5.1).
    #[must_use]
    pub fn was_meta_lost(&self, addr: Addr) -> bool {
        self.hierarchy.was_meta_lost(addr)
    }

    /// The lock register of `thread` (inspection/debugging). The
    /// hardware register physically lives in the core the thread runs
    /// on; the OS swaps it on context switches.
    ///
    /// # Panics
    ///
    /// Panics if `thread` was never seen by the machine.
    #[must_use]
    pub fn lock_register(&self, thread: ThreadId) -> &LockRegister {
        &self.registers[thread.index()]
    }

    /// Maps a thread to its core. With at most `num_cores` threads this
    /// is the paper's one-thread-per-core pinning; beyond that, threads
    /// share cores round-robin and pay a context switch whenever the
    /// core's occupant changes.
    fn core_of(&mut self, thread: ThreadId) -> CoreId {
        let core = CoreId(thread.0 % self.cfg.hierarchy.num_cores as u32);
        let slot = &mut self.running[core.index()];
        if *slot != Some(thread) {
            if slot.is_some() {
                self.core_time[core.index()] += self.cfg.latency.context_switch;
            }
            *slot = Some(thread);
        }
        while self.registers.len() <= thread.index() {
            self.registers.push(LockRegister::new(self.cfg.bloom));
        }
        core
    }

    /// Performs the cache access and advances the core clock; returns
    /// whether the metadata path should charge the candidate check.
    fn timed_ensure(&mut self, core: CoreId, addr: Addr, kind: AccessKind) -> ServedBy {
        let r = self.hierarchy.ensure(core, addr, kind);
        let lat = &self.cfg.latency;
        let c = core.index();
        // Every data transfer also carries the 18 metadata bits (§3.4).
        let piggyback = if self.detection_enabled && r.bus_data > 0 {
            lat.meta_piggyback_occupancy
        } else {
            0
        };
        let occ = lat.bus_occupancy(&r) + piggyback;
        let start = if occ > 0 {
            self.bus.acquire(self.core_time[c], occ)
        } else {
            self.core_time[c]
        };
        let mut t = start + lat.service_latency(&r) + piggyback;
        // The candidate check overlaps an L1 hit entirely; on misses the
        // metadata arrives with the line and the AND+test tacks on.
        if self.detection_enabled && r.served_by != ServedBy::L1 {
            t += lat.candidate_check;
        }
        self.core_time[c] = t;
        r.served_by
    }

    fn on_access(
        &mut self,
        index: usize,
        thread: ThreadId,
        addr: Addr,
        size: u8,
        kind: AccessKind,
        site: SiteId,
    ) {
        let core = self.core_of(thread);
        let line_bytes = self.hierarchy.line_bytes();
        let gran = self.cfg.granularity;
        let lines: Vec<Addr> = self
            .cfg
            .hierarchy
            .l1
            .lines_in(addr, u64::from(size))
            .collect();
        for line_addr in lines {
            self.timed_ensure(core, line_addr, kind);
            // Clip the access to this line and update each overlapped
            // granule's candidate set and LState.
            let lo = addr.0.max(line_addr.0);
            let hi = (addr.0 + u64::from(size)).min(line_addr.0 + line_bytes);
            let held = self.registers[thread.index()].vector();
            let mut changed = false;
            let mut racy_granules: Vec<Addr> = Vec::new();
            {
                let meta: &mut HardLineMeta = self
                    .hierarchy
                    .meta_mut(core, line_addr)
                    .expect("line was just ensured resident");
                for g in gran.granules_in(Addr(lo), hi - lo) {
                    let gi = ((g.0 - line_addr.0) / gran.bytes()) as usize;
                    // §3.4 keeps candidate sets AND LStates consistent
                    // across copies, so any metadata change on a shared
                    // line is broadcast — including pure state
                    // transitions (e.g. Virgin→Exclusive on a read).
                    let before = meta[gi].clone();
                    let out = lockset_access(&mut meta[gi], thread, kind, &held);
                    changed |= meta[gi] != before;
                    if out.race {
                        racy_granules.push(g);
                    }
                }
            }
            // §3.4: a changed candidate set on a line with other valid
            // copies is broadcast so all L1s and the L2 stay current.
            if self.cfg.metadata_broadcast && changed && self.hierarchy.sharers(line_addr) > 1 {
                self.hierarchy.broadcast_meta(core, line_addr);
                // The broadcast is posted: it occupies the bus (delaying
                // later transactions) without stalling this core.
                let occ = self.cfg.latency.meta_broadcast_occupancy;
                self.bus.acquire(self.core_time[core.index()], occ);
            }
            for g in racy_granules {
                if self.reported.insert((g, site)) {
                    self.reports.push(RaceReport {
                        addr,
                        size,
                        site,
                        thread,
                        kind,
                        event_index: index,
                    });
                }
            }
        }
    }

    fn on_lock_op(&mut self, thread: ThreadId, lock: LockId, acquire: bool) {
        let core = self.core_of(thread);
        // The lock variable itself is memory traffic (test-and-set),
        // but lock/unlock instructions are recognized by HARD and do
        // not run the lockset update on their own line.
        let was_enabled = self.detection_enabled;
        self.detection_enabled = false;
        self.timed_ensure(core, lock.addr(), AccessKind::Write);
        self.detection_enabled = was_enabled;
        let lat = &self.cfg.latency;
        self.core_time[core.index()] += lat.sync_op + lat.lock_register_update;
        if acquire {
            self.registers[thread.index()].acquire(lock);
        } else {
            self.registers[thread.index()].release(lock);
        }
    }

    fn on_barrier_complete(&mut self) {
        // All cores leave the barrier together.
        let max = self.core_time.iter().copied().max().unwrap_or(0);
        for t in &mut self.core_time {
            *t = max;
        }
        if self.cfg.barrier_pruning {
            let shape = self.cfg.bloom;
            self.hierarchy.flash_meta(|meta| {
                for g in meta.iter_mut() {
                    g.barrier_reset(shape);
                }
            });
        }
    }
}

impl Detector for HardMachine {
    fn name(&self) -> &str {
        "hard"
    }

    fn on_event(&mut self, index: usize, event: &TraceEvent) {
        match *event {
            TraceEvent::Op { thread, op } => match op {
                Op::Read { addr, size, site } => {
                    self.on_access(index, thread, addr, size, AccessKind::Read, site);
                }
                Op::Write { addr, size, site } => {
                    self.on_access(index, thread, addr, size, AccessKind::Write, site);
                }
                Op::Lock { lock, .. } => self.on_lock_op(thread, lock, true),
                Op::Unlock { lock, .. } => self.on_lock_op(thread, lock, false),
                Op::Fork { child, .. } => {
                    // §3.1 ownership model: the parent's exclusively
                    // owned granules go back to Virgin so the child can
                    // adopt them without a false foreign transition.
                    self.hierarchy.flash_meta(|meta| {
                        for g in meta.iter_mut() {
                            fork_transfer(g, thread);
                        }
                    });
                    let c = self.core_of(thread).index();
                    // §3.1 dummy lock: the child holds it for life.
                    while self.registers.len() <= child.index() {
                        self.registers.push(LockRegister::new(self.cfg.bloom));
                    }
                    self.registers[child.index()].acquire(dummy_lock(child));
                    self.core_time[c] += self.cfg.latency.sync_op;
                }
                Op::Join { child, .. } => {
                    // The parent inherits the child's dummy lock.
                    let c = self.core_of(thread).index();
                    self.registers[thread.index()].acquire(dummy_lock(child));
                    self.core_time[c] += self.cfg.latency.sync_op;
                }
                Op::Barrier { .. } => {
                    let c = self.core_of(thread).index();
                    self.core_time[c] += self.cfg.latency.sync_op;
                }
                Op::Compute { cycles } => {
                    let c = self.core_of(thread).index();
                    self.core_time[c] += u64::from(cycles);
                }
            },
            TraceEvent::BarrierComplete { .. } => self.on_barrier_complete(),
        }
    }

    fn reports(&self) -> &[RaceReport] {
        &self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hard_trace::{run_detector, ProgramBuilder, SchedConfig, Scheduler, Trace};
    use hard_types::BarrierId;

    fn sched(seed: u64) -> Scheduler {
        Scheduler::new(SchedConfig { seed, max_quantum: 4 })
    }

    fn detect(trace: &Trace, cfg: HardConfig) -> (Vec<RaceReport>, HardMachine) {
        let mut m = HardMachine::new(cfg);
        let r = run_detector(&mut m, trace);
        (r, m)
    }

    #[test]
    fn unprotected_sharing_is_flagged() {
        let x = Addr(0x2000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0).write(x, 4, SiteId(1));
        b.thread(1).write(x, 4, SiteId(2));
        let trace = sched(0).run(&b.build());
        let (r, _) = detect(&trace, HardConfig::default());
        assert!(r.iter().any(|r| r.overlaps(x, Addr(x.0 + 4))));
    }

    #[test]
    fn figure1_race_caught_in_every_interleaving() {
        let lock = LockId(0x40);
        let x = Addr(0x2000);
        let y = Addr(0x3000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0)
            .write(x, 4, SiteId(1))
            .lock(lock, SiteId(2))
            .write(y, 4, SiteId(3))
            .unlock(lock, SiteId(4));
        b.thread(1)
            .lock(lock, SiteId(5))
            .write(y, 4, SiteId(6))
            .unlock(lock, SiteId(7))
            .write(x, 4, SiteId(8));
        let p = b.build();
        for seed in 0..16 {
            let trace = sched(seed).run(&p);
            let (r, _) = detect(&trace, HardConfig::default());
            assert!(
                r.iter().any(|r| r.overlaps(x, Addr(x.0 + 4))),
                "seed {seed}: HARD is interleaving-insensitive"
            );
        }
    }

    #[test]
    fn consistent_locking_is_clean() {
        let mut b = ProgramBuilder::new(4);
        for t in 0..4u32 {
            let tp = b.thread(t);
            for i in 0..20u32 {
                tp.lock(LockId(0x40), SiteId(t * 1000 + i))
                    .write(Addr(0x1000), 4, SiteId(5))
                    .read(Addr(0x1000), 4, SiteId(6))
                    .unlock(LockId(0x40), SiteId(t * 1000 + 500 + i));
            }
        }
        let trace = sched(1).run(&b.build());
        let (r, m) = detect(&trace, HardConfig::default());
        assert!(r.is_empty(), "{r:?}");
        assert!(m.total_cycles().0 > 0);
    }

    #[test]
    fn barrier_pruning_suppresses_phase_alarms() {
        let a = Addr(0x500);
        let mut b = ProgramBuilder::new(2);
        b.thread(0)
            .write(a, 4, SiteId(1))
            .barrier(BarrierId(0), SiteId(2));
        b.thread(1)
            .barrier(BarrierId(0), SiteId(3))
            .write(a, 4, SiteId(4));
        let p = b.build();
        let trace = sched(2).run(&p);
        let (with, _) = detect(&trace, HardConfig::default());
        assert!(with.is_empty());
        let raw_cfg = HardConfig { barrier_pruning: false, ..HardConfig::default() };
        let (without, _) = detect(&trace, raw_cfg);
        assert!(!without.is_empty(), "pruning disabled: alarm expected");
    }

    #[test]
    fn l2_displacement_causes_missed_race() {
        // Tiny caches: thrash the L2 between the two racy accesses so
        // the candidate-set evidence is displaced and the race missed.
        let mut cfg = HardConfig::default();
        cfg.hierarchy.l1 = hard_cache::CacheGeometry::new(128, 2, 32);
        cfg.hierarchy.l2 = hard_cache::CacheGeometry::new(256, 2, 32);
        let x = Addr(0x0);
        let mut b = ProgramBuilder::new(2);
        b.thread(0).write(x, 4, SiteId(1));
        // Thrash: walk far more lines than the 256-byte L2 holds.
        let tp = b.thread(0);
        for i in 1..64u64 {
            tp.write(Addr(i * 32), 4, SiteId(100 + i as u32));
        }
        b.thread(1).barrier(BarrierId(9), SiteId(200));
        b.thread(0).barrier(BarrierId(9), SiteId(201));
        b.thread(1).write(x, 4, SiteId(2));
        let p = b.build();
        let trace = sched(0).run(&p);
        // Disable pruning so the barrier (used here only for ordering)
        // does not also reset metadata — we want to isolate eviction.
        let mut cfg_raw = cfg;
        cfg_raw.barrier_pruning = false;
        let (r, m) = detect(&trace, cfg_raw);
        assert!(
            !r.iter().any(|r| r.overlaps(x, Addr(x.0 + 4))),
            "evidence was evicted: race missed"
        );
        assert!(m.was_meta_lost(x), "the miss is attributable to L2 displacement");
        assert!(m.stats().l2_evictions > 0);
    }

    #[test]
    fn metadata_broadcasts_happen_on_shared_lines() {
        // Two threads read-share a line, then take turns updating the
        // candidate set under different locks: changes on the shared
        // line must broadcast.
        let x = Addr(0x1000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0).read(x, 4, SiteId(1));
        b.thread(1).read(x, 4, SiteId(2));
        for t in 0..2u32 {
            b.thread(t)
                .lock(LockId(0x40), SiteId(10 + t))
                .read(x, 4, SiteId(20 + t))
                .unlock(LockId(0x40), SiteId(30 + t));
        }
        let trace = sched(3).run(&b.build());
        let (_, m) = detect(&trace, HardConfig::default());
        assert!(
            m.stats().meta_broadcasts > 0,
            "candidate-set change on a shared line must broadcast"
        );
    }

    #[test]
    fn timing_advances_and_barrier_syncs_cores() {
        let mut b = ProgramBuilder::new(2);
        b.thread(0).compute(1000).barrier(BarrierId(0), SiteId(1));
        b.thread(1).compute(10).barrier(BarrierId(0), SiteId(2));
        let trace = sched(0).run(&b.build());
        let (_, m) = detect(&trace, HardConfig::default());
        // Both cores end at the barrier: total = slowest core.
        assert!(m.total_cycles().0 >= 1000);
    }

    #[test]
    fn more_threads_than_cores_multiplex() {
        // Six threads on the 4-core machine: threads 0 and 4 share
        // core 0 and pay context switches; detection is unaffected.
        let x = Addr(0x2000);
        let mut b = ProgramBuilder::new(6);
        for t in 0..6u32 {
            let tp = b.thread(t);
            for i in 0..3u32 {
                tp.write(x, 4, SiteId(t * 10 + i)).compute(5);
            }
        }
        let trace = sched(1).run(&b.build());
        let (r, m) = detect(&trace, HardConfig::default());
        assert!(
            r.iter().any(|rr| rr.addr == x),
            "the unprotected sharing is still flagged"
        );
        // Context switches register in the timing: rerun with a free
        // switch and compare.
        let mut free_cfg = HardConfig::default();
        free_cfg.latency.context_switch = 0;
        let (_, free) = detect(&trace, free_cfg);
        assert!(
            m.total_cycles().0 > free.total_cycles().0,
            "context switches must cost cycles ({} vs {})",
            m.total_cycles(),
            free.total_cycles()
        );
    }

    #[test]
    fn figure3_l2_detects_like_table1_when_nothing_evicts() {
        // With a footprint far below both L2 configurations, the L2
        // line organization cannot change detection.
        let mut b = ProgramBuilder::new(2);
        for t in 0..2u32 {
            let tp = b.thread(t);
            for i in 0..10u64 {
                tp.write(Addr(0x1000 + (i % 4) * 32), 4, SiteId(t * 100 + i as u32));
            }
        }
        let trace = sched(2).run(&b.build());
        let (table1, _) = detect(&trace, HardConfig::default());
        let (fig3, _) = detect(&trace, HardConfig::default().with_figure3_l2());
        assert_eq!(table1, fig3);
    }

    #[test]
    fn lock_register_tracks_held_locks() {
        let mut b = ProgramBuilder::new(1);
        b.thread(0).lock(LockId(0x40), SiteId(0));
        let trace = sched(0).run(&b.build());
        let mut m = HardMachine::new(HardConfig::default());
        run_detector(&mut m, &trace);
        assert!(m.lock_register(ThreadId(0)).vector().contains(LockId(0x40)));
        assert_eq!(m.lock_register(ThreadId(0)).depth(), 1);
    }
}
