//! The application generators: the paper's six SPLASH-2-like kernels
//! (the [`App`] enum) plus the §7 future-work [`server`] workload
//! (fork/join threading) and the Table 6 footnote's [`radix`] kernel
//! (three-deep lock nesting); neither is part of the six-app tables.
//!
//! Each module reproduces one application's synchronization and
//! sharing signature; see the crate docs and DESIGN.md for what
//! "signature" means and EXPERIMENTS.md for the calibration notes.

pub mod barnes;
pub mod cholesky;
pub mod fmm;
pub mod ocean;
pub mod radix;
pub mod raytrace;
pub mod server;
pub mod water;

use crate::common::WorkloadConfig;
use hard_trace::Program;
use std::fmt;

/// The benchmark applications of the paper's evaluation (§4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum App {
    /// Sparse Cholesky factorization: task queue + panel locks, large
    /// footprint, heavy false sharing.
    Cholesky,
    /// Barnes-Hut N-body: hot tree nodes under per-node locks.
    Barnes,
    /// Fast multipole method: sparse cell updates, much hand-crafted
    /// synchronization, large footprint.
    Fmm,
    /// Ocean simulation: barrier-dominated grid phases, wide lines of
    /// false sharing, very few locks.
    Ocean,
    /// Water-nsquared: per-molecule locks visited once per phase in
    /// thread-specific orders — the happens-before stress case.
    WaterNsquared,
    /// Raytrace: work-queue scheduling plus sparse region updates.
    Raytrace,
}

impl App {
    /// All six applications, in the paper's table order.
    #[must_use]
    pub fn all() -> [App; 6] {
        [
            App::Cholesky,
            App::Barnes,
            App::Fmm,
            App::Ocean,
            App::WaterNsquared,
            App::Raytrace,
        ]
    }

    /// The application's name as printed in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            App::Cholesky => "cholesky",
            App::Barnes => "barnes",
            App::Fmm => "fmm",
            App::Ocean => "ocean",
            App::WaterNsquared => "water-nsquared",
            App::Raytrace => "raytrace",
        }
    }

    /// Generates the application's program for `cfg`.
    #[must_use]
    pub fn generate(self, cfg: &WorkloadConfig) -> Program {
        match self {
            App::Cholesky => cholesky::generate(cfg),
            App::Barnes => barnes::generate(cfg),
            App::Fmm => fmm::generate(cfg),
            App::Ocean => ocean::generate(cfg),
            App::WaterNsquared => water::generate(cfg),
            App::Raytrace => raytrace::generate(cfg),
        }
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{enumerate_critical_sections, inject_race};

    #[test]
    fn all_apps_generate_valid_programs() {
        let cfg = WorkloadConfig::reduced(0.1);
        for app in App::all() {
            let p = app.generate(&cfg);
            assert_eq!(p.validate(), Ok(()), "{app}");
            assert!(p.total_ops() > 100, "{app} is non-trivial");
            assert!(!p.locks_used().is_empty(), "{app} uses locks");
        }
    }

    #[test]
    fn all_apps_are_injectable() {
        let cfg = WorkloadConfig::reduced(0.1);
        for app in App::all() {
            let p = app.generate(&cfg);
            let cs = enumerate_critical_sections(&p).unwrap();
            assert!(cs.len() > 10, "{app} has enough critical sections");
            for seed in 0..3 {
                let (injected, info) = inject_race(&p, seed).unwrap();
                assert_eq!(injected.validate(), Ok(()), "{app} seed {seed}");
                assert!(
                    !info.section.exposed_accesses.is_empty(),
                    "{app}: the omitted section exposes accesses"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::reduced(0.1);
        for app in App::all() {
            assert_eq!(app.generate(&cfg), app.generate(&cfg), "{app}");
        }
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = App::all().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            [
                "cholesky",
                "barnes",
                "fmm",
                "ocean",
                "water-nsquared",
                "raytrace"
            ]
        );
    }
}
