//! Campaign checkpointing.
//!
//! A fault campaign is a long sweep of independent `(rate, app)` cells.
//! If the process is killed mid-sweep, everything already computed is
//! ordinarily lost; the checkpoint makes each completed cell durable so
//! a restart resumes where it stopped and produces the identical final
//! result (every cell is a pure function of its seeds).
//!
//! The format is deliberately a line-based text file, not a binary
//! blob: it survives partial writes (a truncated final line is simply
//! ignored), it diffs cleanly, and it needs no dependencies. The first
//! two lines bind the file to a campaign configuration key; a mismatch
//! means the checkpoint describes a *different* campaign, and the file
//! is ignored rather than resumed into wrong results.
//!
//! ```text
//! hard-faults-checkpoint v2
//! key runs=10 scale=1 quantum=16 rates=0,100,10000
//! cell 0 barnes 9 0 0 1 0 0 41320 118
//! cell 100 barnes 8 0 0 1 4 12 4098 117
//! ```
//!
//! v2 appended the accumulated resource counters (`cycles`,
//! `broadcasts`) to each cell: resuming must restore the *statistics*
//! of completed cells, not just their position in the sweep, or the
//! final aggregate tables silently under-count. A v1 file fails the
//! magic check and is recomputed from scratch — wrong totals are worse
//! than lost progress.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// The magic first line of every checkpoint file. The version is part
/// of the magic: a format change bumps it, and older files are
/// recomputed rather than mis-parsed.
const MAGIC: &str = "hard-faults-checkpoint v2";

/// One durable campaign cell: the tallies of a `(fault rate, app)`
/// pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Uniform fault rate in parts-per-million.
    pub rate_ppm: u32,
    /// Bugs detected across the injected runs.
    pub detected: usize,
    /// Runs that panicked inside the detector (hardening failures).
    pub faulted: usize,
    /// Runs that exceeded the cycle deadline.
    pub timed_out: usize,
    /// Source-level false alarms on the race-free run.
    pub alarms: usize,
    /// Conservative metadata resets across all runs.
    pub resets: u64,
    /// Total faults injected across all runs.
    pub injected: u64,
    /// Simulated cycles accumulated across all runs (v2).
    pub cycles: u64,
    /// §3.4 metadata broadcasts accumulated across all runs (v2).
    pub broadcasts: u64,
}

/// A resumable record of completed campaign cells.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    key: String,
    cells: BTreeMap<(u32, String), Cell>,
    /// True once the on-disk file carries our magic + key, i.e. it is
    /// safe to append to. False for absent, foreign or mismatched
    /// files, which the first record replaces wholesale.
    appendable: bool,
}

impl Checkpoint {
    /// Opens (or starts) the checkpoint at `path` for the campaign
    /// identified by `key`.
    ///
    /// An existing file is resumed only if its magic and key match;
    /// otherwise it is treated as absent and will be overwritten by
    /// the first [`Checkpoint::record`]. Unparseable lines — the
    /// normal signature of a write interrupted mid-line — are skipped,
    /// so the valid prefix is always recovered.
    ///
    /// # Errors
    ///
    /// Returns any I/O error other than the file not existing.
    pub fn load(path: &Path, key: &str) -> std::io::Result<Checkpoint> {
        let mut cp = Checkpoint {
            path: path.to_path_buf(),
            key: key.to_string(),
            cells: BTreeMap::new(),
            appendable: false,
        };
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(cp),
            Err(e) => return Err(e),
        };
        let mut lines = BufReader::new(file).lines();
        match lines.next() {
            Some(Ok(l)) if l == MAGIC => {}
            _ => return Ok(cp), // not ours; start fresh
        }
        match lines.next() {
            Some(Ok(l)) if l.strip_prefix("key ") == Some(key) => {}
            _ => return Ok(cp), // different campaign; start fresh
        }
        cp.appendable = true;
        for line in lines {
            let Ok(line) = line else { break };
            if let Some((app, cell)) = parse_cell(&line) {
                cp.cells.insert((cell.rate_ppm, app), cell);
            } else {
                // A torn line (interrupted append). The data before it
                // is safe, but appending after a partial line would
                // corrupt the next record too — rewrite on first use.
                cp.appendable = false;
            }
        }
        Ok(cp)
    }

    /// The already-completed cell for `(rate_ppm, app)`, if any.
    #[must_use]
    pub fn get(&self, rate_ppm: u32, app: &str) -> Option<Cell> {
        self.cells.get(&(rate_ppm, app.to_string())).copied()
    }

    /// Number of completed cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cell has completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Makes a completed cell durable: appends it to the file (writing
    /// the header first if this is the first record) and flushes.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the in-memory state is
    /// updated regardless, so a read-only filesystem degrades to an
    /// in-memory-only campaign rather than losing the result.
    pub fn record(&mut self, app: &str, cell: Cell) -> std::io::Result<()> {
        self.cells.insert((cell.rate_ppm, app.to_string()), cell);
        if self.appendable {
            let mut f = OpenOptions::new().append(true).open(&self.path)?;
            f.write_all(render_cell(app, &cell).as_bytes())?;
            return f.flush();
        }
        // First record over an absent, foreign or mismatched file:
        // rewrite it wholesale with our header and everything known.
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(out, "key {}", self.key);
        for ((_, a), c) in &self.cells {
            out.push_str(&render_cell(a, c));
        }
        let mut f = File::create(&self.path)?;
        f.write_all(out.as_bytes())?;
        f.flush()?;
        self.appendable = true;
        Ok(())
    }
}

fn render_cell(app: &str, cell: &Cell) -> String {
    format!(
        "cell {} {} {} {} {} {} {} {} {} {}\n",
        cell.rate_ppm,
        app,
        cell.detected,
        cell.faulted,
        cell.timed_out,
        cell.alarms,
        cell.resets,
        cell.injected,
        cell.cycles,
        cell.broadcasts
    )
}

fn parse_cell(line: &str) -> Option<(String, Cell)> {
    let mut it = line.split_ascii_whitespace();
    if it.next()? != "cell" {
        return None;
    }
    let rate_ppm = it.next()?.parse().ok()?;
    let app = it.next()?.to_string();
    let cell = Cell {
        rate_ppm,
        detected: it.next()?.parse().ok()?,
        faulted: it.next()?.parse().ok()?,
        timed_out: it.next()?.parse().ok()?,
        alarms: it.next()?.parse().ok()?,
        resets: it.next()?.parse().ok()?,
        injected: it.next()?.parse().ok()?,
        cycles: it.next()?.parse().ok()?,
        broadcasts: it.next()?.parse().ok()?,
    };
    if it.next().is_some() {
        return None; // trailing garbage: treat as corrupt
    }
    Some((app, cell))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hard-checkpoint-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    fn cell(rate: u32, detected: usize) -> Cell {
        Cell {
            rate_ppm: rate,
            detected,
            faulted: 0,
            timed_out: 0,
            alarms: 1,
            resets: 3,
            injected: 7,
            cycles: 41_320,
            broadcasts: 118,
        }
    }

    #[test]
    fn roundtrips_cells_across_a_reload() {
        let p = tmp("roundtrip");
        let _ = std::fs::remove_file(&p);
        let mut cp = Checkpoint::load(&p, "k1").unwrap();
        assert!(cp.is_empty());
        cp.record("barnes", cell(0, 9)).unwrap();
        cp.record("barnes", cell(100, 8)).unwrap();
        cp.record("fmm", cell(0, 10)).unwrap();

        let re = Checkpoint::load(&p, "k1").unwrap();
        assert_eq!(re.len(), 3);
        assert_eq!(re.get(0, "barnes"), Some(cell(0, 9)));
        assert_eq!(re.get(100, "barnes"), Some(cell(100, 8)));
        assert_eq!(re.get(0, "fmm"), Some(cell(0, 10)));
        assert_eq!(re.get(100, "fmm"), None);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn key_mismatch_starts_fresh() {
        let p = tmp("key");
        let _ = std::fs::remove_file(&p);
        let mut cp = Checkpoint::load(&p, "runs=10").unwrap();
        cp.record("barnes", cell(0, 9)).unwrap();
        let other = Checkpoint::load(&p, "runs=20").unwrap();
        assert!(other.is_empty(), "a different campaign must not resume");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn truncated_last_line_is_ignored() {
        let p = tmp("truncated");
        let _ = std::fs::remove_file(&p);
        let mut cp = Checkpoint::load(&p, "k").unwrap();
        cp.record("barnes", cell(0, 9)).unwrap();
        cp.record("fmm", cell(0, 10)).unwrap();
        // Simulate a crash mid-append: chop the file inside the last line.
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 5]).unwrap();

        let re = Checkpoint::load(&p, "k").unwrap();
        assert_eq!(re.len(), 1, "the valid prefix survives");
        assert_eq!(re.get(0, "barnes"), Some(cell(0, 9)));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn foreign_files_are_not_resumed() {
        let p = tmp("foreign");
        std::fs::write(&p, "some other format\ncell 0 barnes 1 2 3\n").unwrap();
        let cp = Checkpoint::load(&p, "k").unwrap();
        assert!(cp.is_empty());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn v1_files_are_recomputed_not_misparsed() {
        // A v1 checkpoint predates the cycles/broadcasts counters; its
        // cells cannot be restored faithfully, so the magic mismatch
        // must discard it wholesale.
        let p = tmp("v1");
        std::fs::write(
            &p,
            "hard-faults-checkpoint v1\nkey k\ncell 0 barnes 9 0 0 1 3 7\n",
        )
        .unwrap();
        let cp = Checkpoint::load(&p, "k").unwrap();
        assert!(cp.is_empty(), "v1 files must not resume into v2 cells");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn resume_restores_accumulated_stats_counters() {
        // Regression: resume used to be judged only by *position* (which
        // cells exist); the accumulated statistics must round-trip too,
        // or resumed sweeps under-count cycles/broadcasts/resets.
        let p = tmp("stats");
        let _ = std::fs::remove_file(&p);
        let original = Cell {
            rate_ppm: 500,
            detected: 4,
            faulted: 1,
            timed_out: 2,
            alarms: 9,
            resets: 1_234,
            injected: 5_678,
            cycles: 9_999_999,
            broadcasts: 4_242,
        };
        let mut cp = Checkpoint::load(&p, "k-stats").unwrap();
        cp.record("ocean", original).unwrap();

        let re = Checkpoint::load(&p, "k-stats").unwrap();
        let restored = re.get(500, "ocean").expect("cell must be resumable");
        assert_eq!(restored, original, "every accumulated counter survives");
        assert_eq!(restored.cycles, 9_999_999);
        assert_eq!(restored.broadcasts, 4_242);
        assert_eq!(restored.resets, 1_234);
        let _ = std::fs::remove_file(&p);
    }
}
