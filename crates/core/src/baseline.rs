//! The HARD-disabled reference machine for overhead measurements.
//!
//! Figure 8 reports HARD's execution-time overhead "as percentages of
//! the original execution time without HARD". This machine is that
//! original: the identical CMP and timing model, with no metadata, no
//! candidate checks, no lock-register updates and no broadcasts. Both
//! machines consume the same deterministic trace, so the cycle delta is
//! attributable purely to HARD.

use crate::config::HardConfig;
use hard_cache::{BusTimeline, Hierarchy, MemStats};
use hard_trace::{Op, TraceEvent};
use hard_types::{AccessKind, Addr, CoreId, Cycles, ThreadId};

/// The baseline (no-detection) machine.
#[derive(Debug)]
pub struct BaselineMachine {
    cfg: HardConfig,
    hierarchy: Hierarchy<hard_cache::policy::NullFactory>,
    running: Vec<Option<ThreadId>>,
    core_time: Vec<u64>,
    bus: BusTimeline,
}

impl BaselineMachine {
    /// A fresh baseline machine with the same shape and latencies as
    /// the HARD machine it is compared against.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid; use
    /// [`BaselineMachine::try_new`] to handle that as an error.
    #[must_use]
    pub fn new(cfg: HardConfig) -> BaselineMachine {
        Self::try_new(cfg).expect("HardConfig must describe a valid machine")
    }

    /// A fresh baseline machine, or the configuration error that
    /// prevents one.
    ///
    /// # Errors
    ///
    /// Returns [`hard_types::HardError::InvalidConfig`] for invalid
    /// cache shapes.
    pub fn try_new(cfg: HardConfig) -> Result<BaselineMachine, hard_types::HardError> {
        let n = cfg.hierarchy.num_cores;
        Ok(BaselineMachine {
            hierarchy: Hierarchy::new(cfg.hierarchy, hard_cache::policy::NullFactory)?,
            running: vec![None; n],
            core_time: vec![0; n],
            bus: BusTimeline::new(),
            cfg,
        })
    }

    /// Memory-system statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        self.hierarchy.stats()
    }

    /// Execution time so far: the maximum core clock.
    #[must_use]
    pub fn total_cycles(&self) -> Cycles {
        Cycles(self.core_time.iter().copied().max().unwrap_or(0))
    }

    /// The shared-bus timeline.
    #[must_use]
    pub fn bus(&self) -> &BusTimeline {
        &self.bus
    }

    fn core_of(&mut self, thread: ThreadId) -> CoreId {
        let core = CoreId(thread.0 % self.cfg.hierarchy.num_cores as u32);
        let slot = &mut self.running[core.index()];
        if *slot != Some(thread) {
            if slot.is_some() {
                self.core_time[core.index()] += self.cfg.latency.context_switch;
            }
            *slot = Some(thread);
        }
        core
    }

    fn timed_ensure(&mut self, core: CoreId, addr: Addr, kind: AccessKind) {
        let Ok(r) = self.hierarchy.ensure(core, addr, kind) else {
            // This machine injects no faults, so a coherence error is a
            // simulator bug; skip the access rather than unwind.
            debug_assert!(false, "coherence invariant broken on a fault-free machine");
            return;
        };
        let lat = &self.cfg.latency;
        let c = core.index();
        let occ = lat.bus_occupancy(&r);
        let start = if occ > 0 {
            self.bus.acquire(self.core_time[c], occ)
        } else {
            self.core_time[c]
        };
        self.core_time[c] = start + lat.service_latency(&r);
    }

    /// Consumes one trace event, advancing the clocks.
    pub fn on_event(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Op { thread, op } => match op {
                Op::Read { addr, size, .. } | Op::Write { addr, size, .. } => {
                    let kind = if matches!(op, Op::Write { .. }) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    let core = self.core_of(thread);
                    let lines: Vec<Addr> = self
                        .cfg
                        .hierarchy
                        .l1
                        .lines_in(addr, u64::from(size))
                        .collect();
                    for line in lines {
                        self.timed_ensure(core, line, kind);
                    }
                }
                Op::Lock { lock, .. } | Op::Unlock { lock, .. } => {
                    let core = self.core_of(thread);
                    self.timed_ensure(core, lock.addr(), AccessKind::Write);
                    self.core_time[core.index()] += self.cfg.latency.sync_op;
                }
                Op::Barrier { .. } | Op::Fork { .. } | Op::Join { .. } => {
                    let c = self.core_of(thread).index();
                    self.core_time[c] += self.cfg.latency.sync_op;
                }
                Op::Compute { cycles } => {
                    let c = self.core_of(thread).index();
                    self.core_time[c] += u64::from(cycles);
                }
            },
            TraceEvent::BarrierComplete { .. } => {
                let max = self.core_time.iter().copied().max().unwrap_or(0);
                for t in &mut self.core_time {
                    *t = max;
                }
            }
        }
    }

    /// Runs a whole trace and returns the total execution time.
    pub fn run(&mut self, trace: &hard_trace::Trace) -> Cycles {
        for e in &trace.events {
            self.on_event(e);
        }
        self.total_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::HardMachine;
    use hard_trace::{run_detector, ProgramBuilder, SchedConfig, Scheduler};
    use hard_types::{LockId, SiteId};

    #[test]
    fn baseline_and_hard_have_identical_cache_behaviour() {
        let mut b = ProgramBuilder::new(2);
        for t in 0..2u32 {
            let tp = b.thread(t);
            for i in 0..50u64 {
                tp.lock(LockId(0x40), SiteId(1000 + t * 100 + i as u32))
                    .write(Addr(0x1000 + (i % 8) * 32), 4, SiteId(i as u32))
                    .unlock(LockId(0x40), SiteId(2000 + t * 100 + i as u32))
                    .compute(10);
            }
        }
        let trace = Scheduler::new(SchedConfig::default()).run(&b.build());

        let mut base = BaselineMachine::new(HardConfig::default());
        let base_cycles = base.run(&trace);

        let mut hard = HardMachine::new(HardConfig::default());
        run_detector(&mut hard, &trace);
        let hard_cycles = hard.total_cycles();

        // Same residency behaviour...
        assert_eq!(base.stats().l1_hits, hard.stats().l1_hits);
        assert_eq!(base.stats().l2_misses, hard.stats().l2_misses);
        // ...but HARD costs at least the lock-register updates.
        assert!(hard_cycles.0 >= base_cycles.0);
        let overhead = (hard_cycles.0 - base_cycles.0) as f64 / base_cycles.0 as f64;
        assert!(
            overhead < 0.10,
            "HARD overhead should be small, got {:.1}%",
            overhead * 100.0
        );
    }
}
