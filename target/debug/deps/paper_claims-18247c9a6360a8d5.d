/root/repo/target/debug/deps/paper_claims-18247c9a6360a8d5.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-18247c9a6360a8d5: tests/paper_claims.rs

tests/paper_claims.rs:
