//! `hard-repro`: a reproduction of *HARD: Hardware-Assisted
//! Lockset-based Race Detection* (HPCA 2007) — facade crate
//! re-exporting the whole workspace under stable module names.
//!
//! Start with [`core`] (the HARD machine and its siblings), [`trace`]
//! (the program/trace model every detector consumes), and [`harness`]
//! (the experiment campaigns regenerating the paper's tables and
//! figures). See the repository's README.md, DESIGN.md and
//! EXPERIMENTS.md for the guided tour.
//!
//! # Examples
//!
//! ```
//! use hard_repro::core::{HardConfig, HardMachine};
//! use hard_repro::trace::{run_detector, ProgramBuilder, SchedConfig, Scheduler};
//! use hard_repro::types::{Addr, SiteId};
//!
//! let mut b = ProgramBuilder::new(2);
//! b.thread(0).write(Addr(0x1000), 4, SiteId(1));
//! b.thread(1).write(Addr(0x1000), 4, SiteId(2));
//! let trace = Scheduler::new(SchedConfig::default()).run(&b.build());
//!
//! let mut machine = HardMachine::new(HardConfig::default());
//! assert!(!run_detector(&mut machine, &trace).is_empty());
//! ```

pub use hard as core;
pub use hard_bloom as bloom;
pub use hard_cache as cache;
pub use hard_harness as harness;
pub use hard_hb as hb;
pub use hard_lockset as lockset;
pub use hard_trace as trace;
pub use hard_types as types;
pub use hard_workloads as workloads;
