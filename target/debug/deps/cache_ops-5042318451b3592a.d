/root/repo/target/debug/deps/cache_ops-5042318451b3592a.d: crates/bench/benches/cache_ops.rs

/root/repo/target/debug/deps/cache_ops-5042318451b3592a: crates/bench/benches/cache_ops.rs

crates/bench/benches/cache_ops.rs:
