/root/repo/target/debug/deps/hard-9006e52cf9b13551.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/directory_machine.rs crates/core/src/hb_machine.rs crates/core/src/hybrid.rs crates/core/src/machine.rs crates/core/src/metadata.rs crates/core/src/software.rs Cargo.toml

/root/repo/target/debug/deps/libhard-9006e52cf9b13551.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/directory_machine.rs crates/core/src/hb_machine.rs crates/core/src/hybrid.rs crates/core/src/machine.rs crates/core/src/metadata.rs crates/core/src/software.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/directory_machine.rs:
crates/core/src/hb_machine.rs:
crates/core/src/hybrid.rs:
crates/core/src/machine.rs:
crates/core/src/metadata.rs:
crates/core/src/software.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
