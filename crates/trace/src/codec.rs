//! Binary (de)serialization for traces.
//!
//! The format is a small, versioned, little-endian codec: recorded
//! traces can be replayed through detectors without regenerating the
//! workload (useful for debugging a single campaign run). We own the
//! codec instead of pulling in a serialization framework: the format is
//! seven record shapes and must stay stable for recorded experiments.

use crate::event::{Trace, TraceEvent};
use crate::op::Op;
use hard_types::{Addr, BarrierId, LockId, SiteId, ThreadId};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes opening every trace stream.
pub const MAGIC: &[u8; 8] = b"HARDTRC1";

/// Errors produced while decoding a trace.
#[derive(Debug)]
pub enum DecodeTraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic([u8; 8]),
    /// An unknown event tag was encountered.
    BadTag(u8),
}

impl fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            DecodeTraceError::BadMagic(m) => write!(f, "bad trace magic {m:?}"),
            DecodeTraceError::BadTag(t) => write!(f, "unknown trace event tag {t}"),
        }
    }
}

impl Error for DecodeTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DecodeTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeTraceError {
    fn from(e: io::Error) -> Self {
        DecodeTraceError::Io(e)
    }
}

const TAG_READ: u8 = 0;
const TAG_WRITE: u8 = 1;
const TAG_LOCK: u8 = 2;
const TAG_UNLOCK: u8 = 3;
const TAG_BARRIER: u8 = 4;
const TAG_COMPUTE: u8 = 5;
const TAG_BARRIER_COMPLETE: u8 = 6;
const TAG_FORK: u8 = 7;
const TAG_JOIN: u8 = 8;

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Serializes `trace` to `w`. Note that a `&mut W` also satisfies the
/// `W: Write` bound, so callers can keep ownership of their writer.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn encode<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    put_u32(&mut w, trace.num_threads as u32)?;
    put_u64(&mut w, trace.events.len() as u64)?;
    for e in &trace.events {
        match *e {
            TraceEvent::Op { thread, op } => {
                match op {
                    Op::Read { addr, size, site } => {
                        w.write_all(&[TAG_READ, size])?;
                        put_u32(&mut w, thread.0)?;
                        put_u64(&mut w, addr.0)?;
                        put_u32(&mut w, site.0)?;
                    }
                    Op::Write { addr, size, site } => {
                        w.write_all(&[TAG_WRITE, size])?;
                        put_u32(&mut w, thread.0)?;
                        put_u64(&mut w, addr.0)?;
                        put_u32(&mut w, site.0)?;
                    }
                    Op::Lock { lock, site } => {
                        w.write_all(&[TAG_LOCK])?;
                        put_u32(&mut w, thread.0)?;
                        put_u64(&mut w, lock.0)?;
                        put_u32(&mut w, site.0)?;
                    }
                    Op::Unlock { lock, site } => {
                        w.write_all(&[TAG_UNLOCK])?;
                        put_u32(&mut w, thread.0)?;
                        put_u64(&mut w, lock.0)?;
                        put_u32(&mut w, site.0)?;
                    }
                    Op::Barrier { barrier, site } => {
                        w.write_all(&[TAG_BARRIER])?;
                        put_u32(&mut w, thread.0)?;
                        put_u32(&mut w, barrier.0)?;
                        put_u32(&mut w, site.0)?;
                    }
                    Op::Compute { cycles } => {
                        w.write_all(&[TAG_COMPUTE])?;
                        put_u32(&mut w, thread.0)?;
                        put_u32(&mut w, cycles)?;
                    }
                    Op::Fork { child, site } => {
                        w.write_all(&[TAG_FORK])?;
                        put_u32(&mut w, thread.0)?;
                        put_u32(&mut w, child.0)?;
                        put_u32(&mut w, site.0)?;
                    }
                    Op::Join { child, site } => {
                        w.write_all(&[TAG_JOIN])?;
                        put_u32(&mut w, thread.0)?;
                        put_u32(&mut w, child.0)?;
                        put_u32(&mut w, site.0)?;
                    }
                }
            }
            TraceEvent::BarrierComplete { barrier } => {
                w.write_all(&[TAG_BARRIER_COMPLETE])?;
                put_u32(&mut w, barrier.0)?;
            }
        }
    }
    Ok(())
}

/// Deserializes a trace from `r`. A `&mut R` also satisfies `R: Read`.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] on I/O failure, bad magic, or an
/// unknown event tag.
pub fn decode<R: Read>(mut r: R) -> Result<Trace, DecodeTraceError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(DecodeTraceError::BadMagic(magic));
    }
    let num_threads = get_u32(&mut r)? as usize;
    let n = get_u64(&mut r)? as usize;
    let mut events = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        let tag = get_u8(&mut r)?;
        let e = match tag {
            TAG_READ | TAG_WRITE => {
                let size = get_u8(&mut r)?;
                let thread = ThreadId(get_u32(&mut r)?);
                let addr = Addr(get_u64(&mut r)?);
                let site = SiteId(get_u32(&mut r)?);
                let op = if tag == TAG_READ {
                    Op::Read { addr, size, site }
                } else {
                    Op::Write { addr, size, site }
                };
                TraceEvent::Op { thread, op }
            }
            TAG_LOCK | TAG_UNLOCK => {
                let thread = ThreadId(get_u32(&mut r)?);
                let lock = LockId(get_u64(&mut r)?);
                let site = SiteId(get_u32(&mut r)?);
                let op = if tag == TAG_LOCK {
                    Op::Lock { lock, site }
                } else {
                    Op::Unlock { lock, site }
                };
                TraceEvent::Op { thread, op }
            }
            TAG_BARRIER => {
                let thread = ThreadId(get_u32(&mut r)?);
                let barrier = BarrierId(get_u32(&mut r)?);
                let site = SiteId(get_u32(&mut r)?);
                TraceEvent::Op {
                    thread,
                    op: Op::Barrier { barrier, site },
                }
            }
            TAG_COMPUTE => {
                let thread = ThreadId(get_u32(&mut r)?);
                let cycles = get_u32(&mut r)?;
                TraceEvent::Op {
                    thread,
                    op: Op::Compute { cycles },
                }
            }
            TAG_FORK | TAG_JOIN => {
                let thread = ThreadId(get_u32(&mut r)?);
                let child = ThreadId(get_u32(&mut r)?);
                let site = SiteId(get_u32(&mut r)?);
                let op = if tag == TAG_FORK {
                    Op::Fork { child, site }
                } else {
                    Op::Join { child, site }
                };
                TraceEvent::Op { thread, op }
            }
            TAG_BARRIER_COMPLETE => TraceEvent::BarrierComplete {
                barrier: BarrierId(get_u32(&mut r)?),
            },
            t => return Err(DecodeTraceError::BadTag(t)),
        };
        events.push(e);
    }
    Ok(Trace {
        events,
        num_threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                TraceEvent::Op {
                    thread: ThreadId(0),
                    op: Op::Lock { lock: LockId(0x40), site: SiteId(1) },
                },
                TraceEvent::Op {
                    thread: ThreadId(0),
                    op: Op::Write { addr: Addr(0x1000), size: 4, site: SiteId(2) },
                },
                TraceEvent::Op {
                    thread: ThreadId(0),
                    op: Op::Unlock { lock: LockId(0x40), site: SiteId(3) },
                },
                TraceEvent::Op {
                    thread: ThreadId(1),
                    op: Op::Read { addr: Addr(0x1000), size: 8, site: SiteId(4) },
                },
                TraceEvent::Op {
                    thread: ThreadId(1),
                    op: Op::Barrier { barrier: BarrierId(0), site: SiteId(5) },
                },
                TraceEvent::Op {
                    thread: ThreadId(1),
                    op: Op::Compute { cycles: 77 },
                },
                TraceEvent::BarrierComplete { barrier: BarrierId(0) },
            ],
            num_threads: 2,
        }
    }

    #[test]
    fn roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        encode(&t, &mut buf).unwrap();
        let back = decode(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = decode(&b"NOTATRCE"[..]).unwrap_err();
        assert!(matches!(err, DecodeTraceError::BadMagic(_)));
        assert!(format!("{err}").contains("magic"));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let t = sample_trace();
        let mut buf = Vec::new();
        encode(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = decode(buf.as_slice()).unwrap_err();
        assert!(matches!(err, DecodeTraceError::Io(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(0xFF);
        let err = decode(buf.as_slice()).unwrap_err();
        assert!(matches!(err, DecodeTraceError::BadTag(0xFF)));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace { events: vec![], num_threads: 4 };
        let mut buf = Vec::new();
        encode(&t, &mut buf).unwrap();
        let back = decode(buf.as_slice()).unwrap();
        assert_eq!(back.num_threads, 4);
        assert!(back.is_empty());
    }
}
