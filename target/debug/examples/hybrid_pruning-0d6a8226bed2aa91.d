/root/repo/target/debug/examples/hybrid_pruning-0d6a8226bed2aa91.d: examples/hybrid_pruning.rs

/root/repo/target/debug/examples/hybrid_pruning-0d6a8226bed2aa91: examples/hybrid_pruning.rs

examples/hybrid_pruning.rs:
