//! Directory-resident detection metadata (paper §3.4, second half).
//!
//! "For a directory-based protocol, the candidate set and the LState
//! are stored in the directory instead of together with each cache
//! line. Every shared access gets the candidate set and LState
//! information from the directory, and then puts the new information
//! back."
//!
//! [`MetaDirectory`] is that home-node store: one metadata entry per
//! cached line, created on first access, retired when the line is
//! displaced from the L2 (the detection window is the same as the
//! snoopy design's). Management is simpler — there is exactly one copy,
//! so no broadcasts — but *every* monitored access performs a directory
//! round trip, even L1 hits, which is the §3.4 traffic trade-off the
//! `hard` crate's directory machine measures.

use crate::policy::MetaFactory;
use hard_types::{Addr, CoreId};
use std::collections::BTreeMap;

/// The per-line metadata directory.
#[derive(Clone, Debug)]
pub struct MetaDirectory<F: MetaFactory> {
    factory: F,
    entries: BTreeMap<Addr, F::Meta>,
    requests: u64,
}

impl<F: MetaFactory> MetaDirectory<F> {
    /// An empty directory.
    #[must_use]
    pub fn new(factory: F) -> MetaDirectory<F> {
        MetaDirectory {
            factory,
            entries: BTreeMap::new(),
            requests: 0,
        }
    }

    /// Gets (creating if absent) the metadata entry for `line`,
    /// counting one get+put-back round trip.
    ///
    /// `core` initializes fresh entries, mirroring the fetch-time
    /// initialization of the snoopy design.
    pub fn access(&mut self, line: Addr, core: CoreId) -> &mut F::Meta {
        self.requests += 1;
        self.entries
            .entry(line)
            .or_insert_with(|| self.factory.fresh(core))
    }

    /// Reads the entry without counting a request (tests/inspection).
    #[must_use]
    pub fn peek(&self, line: Addr) -> Option<&F::Meta> {
        self.entries.get(&line)
    }

    /// Retires the entry for a line displaced from the L2; the
    /// detection metadata is lost exactly as in the in-cache design.
    pub fn retire(&mut self, line: Addr) {
        self.entries.remove(&line);
    }

    /// Applies `f` to every live entry (barrier flash-reset).
    pub fn flash(&mut self, mut f: impl FnMut(&mut F::Meta)) {
        for meta in self.entries.values_mut() {
            f(meta);
        }
    }

    /// Number of directory round trips performed.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, Debug)]
    struct CountFactory;

    impl MetaFactory for CountFactory {
        type Meta = u32;

        fn fresh(&self, core: CoreId) -> u32 {
            core.0 * 100
        }
    }

    #[test]
    fn access_creates_then_reuses() {
        let mut d = MetaDirectory::new(CountFactory);
        assert!(d.is_empty());
        let m = d.access(Addr(0x40), CoreId(2));
        assert_eq!(*m, 200);
        *m = 7;
        assert_eq!(*d.access(Addr(0x40), CoreId(0)), 7, "entry persists");
        assert_eq!(d.requests(), 2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn retire_loses_the_entry() {
        let mut d = MetaDirectory::new(CountFactory);
        *d.access(Addr(0x40), CoreId(0)) = 9;
        d.retire(Addr(0x40));
        assert!(d.peek(Addr(0x40)).is_none());
        // Re-access re-initializes, as after an L2 displacement.
        assert_eq!(*d.access(Addr(0x40), CoreId(1)), 100);
    }

    #[test]
    fn flash_touches_all_entries() {
        let mut d = MetaDirectory::new(CountFactory);
        d.access(Addr(0x40), CoreId(0));
        d.access(Addr(0x80), CoreId(1));
        d.flash(|m| *m = 1);
        assert_eq!(*d.peek(Addr(0x40)).unwrap(), 1);
        assert_eq!(*d.peek(Addr(0x80)).unwrap(), 1);
    }
}
