/root/repo/target/debug/deps/properties-ecdac60d5e2cca5b.d: crates/hb/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ecdac60d5e2cca5b.rmeta: crates/hb/tests/properties.rs Cargo.toml

crates/hb/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
