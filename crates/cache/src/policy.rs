//! The metadata-initialization seam between the cache hierarchy and the
//! race detectors built on top of it.

use hard_types::CoreId;

/// Creates the metadata attached to a line freshly fetched from memory.
///
/// HARD initializes a fetched line's candidate set to all-ones and its
/// LState to Exclusive (paper §3.1); the happens-before policy starts
/// with empty timestamps; the null (baseline) policy attaches nothing.
pub trait MetaFactory {
    /// The per-line metadata type.
    type Meta: Clone;

    /// Metadata for a line fetched from memory by `core`.
    fn fresh(&self, core: CoreId) -> Self::Meta;
}

/// The no-metadata factory used for baseline (HARD-disabled) timing
/// runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullFactory;

impl MetaFactory for NullFactory {
    type Meta = ();

    fn fresh(&self, _core: CoreId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_factory_produces_unit() {
        #[allow(clippy::let_unit_value)]
        let meta = NullFactory.fresh(CoreId(0));
        let _: () = meta;
    }
}
