/root/repo/target/debug/deps/bloom_ops-5a42578954ef08c4.d: crates/bench/benches/bloom_ops.rs

/root/repo/target/debug/deps/bloom_ops-5a42578954ef08c4: crates/bench/benches/bloom_ops.rs

crates/bench/benches/bloom_ops.rs:
