//! Property-based tests for the program model and scheduler.

use hard_trace::{
    codec, packed_event, Op, Program, SchedConfig, Scheduler, ThreadProgram, Trace, TraceEvent,
};
use hard_types::{Addr, BarrierId, LockId, SiteId, ThreadId};
use proptest::prelude::*;

/// A random well-formed thread program: balanced lock/unlock around
/// accesses, plus unlocked accesses and compute ops. Every thread gets
/// the same number of arrivals at barrier 0.
fn arb_program(max_threads: usize) -> impl Strategy<Value = Program> {
    let op_block = prop_oneof![
        // Unlocked access.
        (0u64..64, any::<bool>()).prop_map(|(w, wr)| {
            vec![if wr {
                Op::Write {
                    addr: Addr(0x1000 + w * 4),
                    size: 4,
                    site: SiteId(w as u32),
                }
            } else {
                Op::Read {
                    addr: Addr(0x1000 + w * 4),
                    size: 4,
                    site: SiteId(w as u32),
                }
            }]
        }),
        // A balanced critical section.
        (0u64..4, 0u64..64).prop_map(|(l, w)| {
            let lock = LockId(0x4000_0000 + l * 4);
            vec![
                Op::Lock {
                    lock,
                    site: SiteId(900 + l as u32),
                },
                Op::Write {
                    addr: Addr(0x1000 + w * 4),
                    size: 4,
                    site: SiteId(w as u32),
                },
                Op::Unlock {
                    lock,
                    site: SiteId(950 + l as u32),
                },
            ]
        }),
        // Compute.
        (1u32..50).prop_map(|c| vec![Op::Compute { cycles: c }]),
    ];
    let thread = prop::collection::vec(op_block, 0..12).prop_map(|blocks| {
        let mut tp = ThreadProgram::new();
        for b in blocks {
            for op in b {
                tp.push(op);
            }
        }
        tp
    });
    (2..=max_threads).prop_flat_map(move |n| {
        prop::collection::vec(thread.clone(), n..=n).prop_map(|mut threads| {
            // One barrier arrival per thread keeps arrivals balanced.
            for tp in &mut threads {
                tp.barrier(BarrierId(0), SiteId(999));
            }
            Program::new(threads)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated programs are well-formed.
    #[test]
    fn generated_programs_validate(p in arb_program(4)) {
        prop_assert_eq!(p.validate(), Ok(()));
    }

    /// The scheduler emits every operation exactly once, in per-thread
    /// program order.
    #[test]
    fn scheduler_preserves_program_order(p in arb_program(4), seed in 0u64..32) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 5 }).run(&p);
        prop_assert_eq!(trace.ops().count(), p.total_ops());
        let mut pcs = vec![0usize; p.num_threads()];
        for (tid, op) in trace.ops() {
            let t = tid.index();
            prop_assert_eq!(*op, p.threads()[t].ops()[pcs[t]]);
            pcs[t] += 1;
        }
        for (t, pc) in pcs.iter().enumerate() {
            prop_assert_eq!(*pc, p.threads()[t].len(), "thread {} incomplete", t);
        }
    }

    /// Identical seeds give identical traces; the trace is a pure
    /// function of (program, seed).
    #[test]
    fn scheduler_is_deterministic(p in arb_program(4), seed in 0u64..16) {
        let a = Scheduler::new(SchedConfig { seed, max_quantum: 7 }).run(&p);
        let b = Scheduler::new(SchedConfig { seed, max_quantum: 7 }).run(&p);
        prop_assert_eq!(a, b);
    }

    /// Mutual exclusion: between a lock's acquire by thread T and its
    /// release, no other thread acquires it.
    #[test]
    fn mutual_exclusion_holds(p in arb_program(4), seed in 0u64..16) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 3 }).run(&p);
        let mut owner: std::collections::BTreeMap<LockId, ThreadId> = Default::default();
        for (tid, op) in trace.ops() {
            match *op {
                Op::Lock { lock, .. } => {
                    prop_assert!(owner.insert(lock, tid).is_none(), "double acquire");
                }
                Op::Unlock { lock, .. } => {
                    prop_assert_eq!(owner.remove(&lock), Some(tid), "foreign release");
                }
                _ => {}
            }
        }
        prop_assert!(owner.is_empty(), "locks leaked at exit");
    }

    /// Barrier semantics: exactly one completion marker, after every
    /// thread's arrival.
    #[test]
    fn barrier_completes_after_all_arrivals(p in arb_program(4), seed in 0u64..8) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 4 }).run(&p);
        let completes: Vec<usize> = trace
            .events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, TraceEvent::BarrierComplete { .. }).then_some(i))
            .collect();
        prop_assert_eq!(completes.len(), 1);
        let arrivals: Vec<usize> = trace
            .events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                matches!(e, TraceEvent::Op { op: Op::Barrier { .. }, .. }).then_some(i)
            })
            .collect();
        prop_assert_eq!(arrivals.len(), p.num_threads());
        prop_assert!(arrivals.iter().all(|&a| a < completes[0]));
    }

    /// The codec is lossless on arbitrary scheduled traces.
    #[test]
    fn codec_roundtrips(p in arb_program(4), seed in 0u64..8) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 6 }).run(&p);
        let mut buf = Vec::new();
        codec::encode(&trace, &mut buf).unwrap();
        let back: Trace = codec::decode(buf.as_slice()).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// On an undamaged stream the lossy decoder agrees with the strict
    /// one and reports completeness.
    #[test]
    fn lossy_decode_matches_strict_on_clean_streams(p in arb_program(4), seed in 0u64..8) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 6 }).run(&p);
        let mut buf = Vec::new();
        codec::encode(&trace, &mut buf).unwrap();
        let lossy = codec::decode_lossy(buf.as_slice()).unwrap();
        prop_assert!(lossy.complete);
        prop_assert_eq!(lossy.events_lost, 0);
        prop_assert_eq!(lossy.trace, trace);
    }

    /// Truncating the stream at any byte never panics the lossy
    /// decoder, and whatever it returns is a verbatim prefix.
    #[test]
    fn truncated_streams_decode_to_a_prefix(
        p in arb_program(4),
        seed in 0u64..8,
        cut in any::<u64>(),
    ) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 6 }).run(&p);
        let mut buf = Vec::new();
        codec::encode(&trace, &mut buf).unwrap();
        let cut = cut as usize % (buf.len() + 1);
        match codec::decode_lossy(&buf[..cut]) {
            Ok(lossy) => {
                let n = lossy.trace.events.len();
                prop_assert!(n <= trace.events.len());
                prop_assert_eq!(&lossy.trace.events[..], &trace.events[..n]);
                prop_assert_eq!(lossy.trace.num_threads, trace.num_threads);
                prop_assert_eq!(lossy.complete, cut == buf.len());
            }
            // Only a damaged header is allowed to fail outright
            // (magic + thread count + event count = 20 bytes).
            Err(_) => prop_assert!(cut < 20, "cut {} of {}", cut, buf.len()),
        }
    }

    /// Flipping any single byte never panics either decoder; every
    /// event the lossy decoder salvages from body corruption is a
    /// verbatim prefix of the original trace.
    #[test]
    fn corrupted_streams_never_panic_and_return_a_prefix(
        p in arb_program(4),
        seed in 0u64..8,
        pos in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 6 }).run(&p);
        let mut buf = Vec::new();
        codec::encode(&trace, &mut buf).unwrap();
        let pos = pos as usize % buf.len();
        buf[pos] ^= mask;
        // The strict decoder may accept or reject, but must not panic.
        let _ = codec::decode(buf.as_slice());
        match codec::decode_lossy(buf.as_slice()) {
            Ok(lossy) => {
                if pos >= 20 {
                    // Header intact: the salvage is a true prefix.
                    let n = lossy.trace.events.len();
                    prop_assert!(n <= trace.events.len());
                    prop_assert_eq!(&lossy.trace.events[..], &trace.events[..n]);
                    prop_assert_eq!(lossy.trace.num_threads, trace.num_threads);
                }
            }
            Err(_) => prop_assert!(pos < 20, "pos {} of {}", pos, buf.len()),
        }
    }
}

/// An arbitrary single event covering every variant at full payload
/// width (thread ids bounded by the packed encoding's 20-bit field).
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    let thread = 0u32..=packed_event::MAX_PACKED_THREAD;
    let site = any::<u32>().prop_map(SiteId);
    prop_oneof![
        (
            thread.clone(),
            any::<u64>(),
            any::<u8>(),
            site.clone(),
            any::<bool>()
        )
            .prop_map(|(t, a, s, site, wr)| {
                let (addr, size) = (Addr(a), s);
                TraceEvent::Op {
                    thread: ThreadId(t),
                    op: if wr {
                        Op::Write { addr, size, site }
                    } else {
                        Op::Read { addr, size, site }
                    },
                }
            }),
        (thread.clone(), any::<u64>(), site.clone(), any::<bool>()).prop_map(
            |(t, l, site, acq)| TraceEvent::Op {
                thread: ThreadId(t),
                op: if acq {
                    Op::Lock {
                        lock: LockId(l),
                        site,
                    }
                } else {
                    Op::Unlock {
                        lock: LockId(l),
                        site,
                    }
                },
            }
        ),
        (thread.clone(), any::<u32>(), site.clone()).prop_map(|(t, b, site)| TraceEvent::Op {
            thread: ThreadId(t),
            op: Op::Barrier {
                barrier: BarrierId(b),
                site,
            },
        }),
        (thread.clone(), any::<u32>()).prop_map(|(t, c)| TraceEvent::Op {
            thread: ThreadId(t),
            op: Op::Compute { cycles: c },
        }),
        (thread, any::<u32>(), site, any::<bool>()).prop_map(|(t, c, site, fork)| TraceEvent::Op {
            thread: ThreadId(t),
            op: if fork {
                Op::Fork {
                    child: ThreadId(c),
                    site,
                }
            } else {
                Op::Join {
                    child: ThreadId(c),
                    site,
                }
            },
        }),
        any::<u32>().prop_map(|b| TraceEvent::BarrierComplete {
            barrier: BarrierId(b)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The fixed-width packing is lossless on every event variant at
    /// full payload width, both as words and as bytes.
    #[test]
    fn packed_event_roundtrips(e in arb_event()) {
        let p = packed_event::PackedEvent::pack(&e).unwrap();
        prop_assert_eq!(p.unpack().unwrap(), e);
        let b = p.to_bytes();
        prop_assert_eq!(packed_event::PackedEvent::from_bytes(&b), p);
        prop_assert_eq!(packed_event::PackedEvent::from_bytes(&b).unpack().unwrap(), e);
    }

    /// Unpacking an arbitrary record pair never panics: it either
    /// yields an event that re-packs to the same words, or reports a
    /// bad tag.
    #[test]
    fn arbitrary_records_unpack_total(w0 in any::<u64>(), w1 in any::<u64>()) {
        let p = packed_event::PackedEvent { w0, w1 };
        match p.unpack() {
            Ok(e) => {
                let back = packed_event::PackedEvent::pack(&e).unwrap();
                // Fields a variant does not carry are zeroed by the
                // packer, so only the fields the event kept must agree.
                prop_assert_eq!(back.unpack().unwrap(), e);
            }
            Err(packed_event::PackError::BadTag(t)) => prop_assert!(t > 8),
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A packed trace is a lossless image of the scheduled trace, and
    /// its streaming iterator yields the exact event sequence.
    #[test]
    fn packed_trace_roundtrips(p in arb_program(4), seed in 0u64..8) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 6 }).run(&p);
        let packed = packed_event::PackedTrace::from_trace(&trace).unwrap();
        prop_assert_eq!(packed.len(), trace.events.len());
        prop_assert_eq!(&packed.to_trace(), &trace);
        let streamed: Vec<TraceEvent> = packed.iter().collect();
        prop_assert_eq!(streamed, trace.events.clone());
        // And adopting the raw bytes revalidates to the same trace.
        let adopted = packed_event::PackedTrace::from_bytes(
            trace.num_threads as u32,
            packed.bytes().to_vec(),
        )
        .unwrap();
        prop_assert_eq!(adopted, packed);
    }

    /// The packed encoding agrees with codec v2: a trace that has been
    /// through the archival codec packs to the identical byte image.
    #[test]
    fn packed_encoding_pins_codec_v2(p in arb_program(4), seed in 0u64..8) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 6 }).run(&p);
        let mut buf = Vec::new();
        codec::encode(&trace, &mut buf).unwrap();
        let via_codec: Trace = codec::decode(buf.as_slice()).unwrap();
        let direct = packed_event::PackedTrace::from_trace(&trace).unwrap();
        let laundered = packed_event::PackedTrace::from_trace(&via_codec).unwrap();
        prop_assert_eq!(direct, laundered);
    }

    /// The double-buffered chunk reader reassembles any packed stream
    /// exactly, for any chunk size, and never splits a record.
    #[test]
    fn chunked_reader_is_exact(p in arb_program(4), seed in 0u64..8, records in 1usize..200) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 6 }).run(&p);
        let packed = packed_event::PackedTrace::from_trace(&trace).unwrap();
        let mut r = packed_event::ChunkedReader::spawn(
            std::io::Cursor::new(packed.bytes().to_vec()),
            records,
        );
        let mut got = Vec::new();
        while let Some(chunk) = r.next_chunk() {
            let chunk = chunk.unwrap();
            prop_assert_eq!(chunk.len() % packed_event::RECORD_BYTES, 0);
            got.extend_from_slice(&chunk);
        }
        prop_assert_eq!(got, packed.bytes().to_vec());
    }
}
