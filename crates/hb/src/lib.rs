//! Happens-before race detection (the baseline HARD is compared with).
//!
//! All prior hardware race detectors the paper discusses implement the
//! happens-before algorithm: establish a partial temporal order of
//! accesses from program order plus synchronization edges, and report
//! two conflicting accesses that are unordered. This crate provides:
//!
//! * [`clock::VectorClock`] — fixed-width (per-thread) vector clocks;
//! * [`sync::SyncClocks`] — the thread/lock/barrier clock state shared
//!   by the ideal detector and the hardware policy (lock clocks model
//!   release-to-acquire edges, barriers join all threads);
//! * [`meta::LineClocks`] + [`meta::hb_access`] — per-granule access
//!   history (last-write epoch plus per-thread read clocks) and the
//!   race check, usable at any granularity;
//! * [`ideal::IdealHappensBefore`] — the paper's ideal happens-before:
//!   variable granularity, unbounded metadata store;
//! * [`scalar::ScalarHappensBefore`] — a CORD-style scalar-clock
//!   variant (the cost-effective alternative among the paper's cited
//!   baselines), precise enough for ordered programs but able to miss
//!   races by scalar coincidence.
//!
//! The *hardware* happens-before detector (line granularity, metadata
//! only in the cache) is assembled in the `hard` crate on top of the
//! same [`meta`] and [`sync`] building blocks.

pub mod clock;
pub mod ideal;
pub mod meta;
pub mod scalar;
pub mod sync;

pub use clock::VectorClock;
pub use ideal::{IdealHappensBefore, IdealHbConfig};
pub use meta::{hb_access, HbOutcome, LineClocks, ReadEpochs, INLINE_EPOCHS};
pub use scalar::{ScalarHappensBefore, ScalarHbConfig, ScalarSync};
pub use sync::SyncClocks;
