//! Per-thread programs and the whole-program container.

use crate::op::Op;
use hard_types::{Addr, BarrierId, LockId, SiteId, ThreadId};
use std::collections::BTreeSet;

/// The operation list of one simulated thread.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ThreadProgram {
    ops: Vec<Op>,
}

impl ThreadProgram {
    /// An empty thread program.
    #[must_use]
    pub fn new() -> ThreadProgram {
        ThreadProgram::default()
    }

    /// The operations in program order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the thread performs no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a raw operation.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Appends a read.
    pub fn read(&mut self, addr: Addr, size: u8, site: SiteId) -> &mut Self {
        self.push(Op::Read { addr, size, site })
    }

    /// Appends a write.
    pub fn write(&mut self, addr: Addr, size: u8, site: SiteId) -> &mut Self {
        self.push(Op::Write { addr, size, site })
    }

    /// Appends a lock acquire.
    pub fn lock(&mut self, lock: LockId, site: SiteId) -> &mut Self {
        self.push(Op::Lock { lock, site })
    }

    /// Appends a lock release.
    pub fn unlock(&mut self, lock: LockId, site: SiteId) -> &mut Self {
        self.push(Op::Unlock { lock, site })
    }

    /// Appends a barrier arrival.
    pub fn barrier(&mut self, barrier: BarrierId, site: SiteId) -> &mut Self {
        self.push(Op::Barrier { barrier, site })
    }

    /// Appends a fork of `child`.
    pub fn fork(&mut self, child: ThreadId, site: SiteId) -> &mut Self {
        self.push(Op::Fork { child, site })
    }

    /// Appends a join on `child`.
    pub fn join(&mut self, child: ThreadId, site: SiteId) -> &mut Self {
        self.push(Op::Join { child, site })
    }

    /// Appends private computation.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.push(Op::Compute { cycles })
    }

    /// Removes the operation at `index`, returning it. Used by the race
    /// injector to omit a dynamic lock/unlock instance.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove(&mut self, index: usize) -> Op {
        self.ops.remove(index)
    }

    /// Replaces the operation at `index`, returning the old one. Used
    /// by the wrong-lock injector.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn replace(&mut self, index: usize, op: Op) -> Op {
        std::mem::replace(&mut self.ops[index], op)
    }
}

/// A complete multithreaded program: one [`ThreadProgram`] per thread.
///
/// Thread *i* is [`ThreadId`]`(i)` and is pinned to core *i*.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    threads: Vec<ThreadProgram>,
}

impl Program {
    /// Builds a program from per-thread operation lists.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty.
    #[must_use]
    pub fn new(threads: Vec<ThreadProgram>) -> Program {
        assert!(!threads.is_empty(), "a program needs at least one thread");
        Program { threads }
    }

    /// Number of threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The per-thread programs, indexed by thread id.
    #[must_use]
    pub fn threads(&self) -> &[ThreadProgram] {
        &self.threads
    }

    /// Mutable access for the race injector.
    pub fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadProgram {
        &mut self.threads[t.index()]
    }

    /// The thread program of `t`.
    #[must_use]
    pub fn thread(&self, t: ThreadId) -> &ThreadProgram {
        &self.threads[t.index()]
    }

    /// Total operation count across threads.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(ThreadProgram::len).sum()
    }

    /// Threads that only start when some other thread forks them.
    #[must_use]
    pub fn fork_targets(&self) -> BTreeSet<ThreadId> {
        let mut s = BTreeSet::new();
        for t in &self.threads {
            for op in t.ops() {
                if let Op::Fork { child, .. } = *op {
                    s.insert(child);
                }
            }
        }
        s
    }

    /// The set of locks named anywhere in the program.
    #[must_use]
    pub fn locks_used(&self) -> BTreeSet<LockId> {
        let mut s = BTreeSet::new();
        for t in &self.threads {
            for op in t.ops() {
                match *op {
                    Op::Lock { lock, .. } | Op::Unlock { lock, .. } => {
                        s.insert(lock);
                    }
                    _ => {}
                }
            }
        }
        s
    }

    /// Checks the structural well-formedness the scheduler relies on:
    /// balanced lock/unlock per thread (locks released in any order but
    /// never released while not held, never left held at exit) and the
    /// same multiset of barrier arrivals in every thread.
    ///
    /// Returns a human-readable description of the first violation.
    /// Note that *race-injected* programs intentionally violate balance
    /// only by omitting a lock/unlock **pair**, which keeps this check
    /// passing.
    pub fn validate(&self) -> Result<(), String> {
        // Fork structure: a thread is forked at most once, never by
        // itself, and fork targets must exist. Thread 0 is always an
        // initial thread; other threads may be initial or forked.
        let mut fork_targets = std::collections::BTreeSet::new();
        for (ti, t) in self.threads.iter().enumerate() {
            for (oi, op) in t.ops().iter().enumerate() {
                match *op {
                    Op::Fork { child, .. } => {
                        if child.index() >= self.threads.len() {
                            return Err(format!("thread {ti} op {oi}: fork of unknown {child}"));
                        }
                        if child.index() == ti {
                            return Err(format!("thread {ti} op {oi}: self-fork"));
                        }
                        if !fork_targets.insert(child) {
                            return Err(format!("thread {ti} op {oi}: {child} forked twice"));
                        }
                    }
                    Op::Join { child, .. } => {
                        if child.index() >= self.threads.len() {
                            return Err(format!("thread {ti} op {oi}: join of unknown {child}"));
                        }
                        if child.index() == ti {
                            return Err(format!("thread {ti} op {oi}: self-join"));
                        }
                    }
                    _ => {}
                }
            }
        }
        if fork_targets.contains(&ThreadId(0)) {
            return Err("thread 0 cannot be a fork target".into());
        }
        // Barrier completion waits for *all* threads; a not-yet-forked
        // participant would deadlock, so fork/join programs must not
        // use barriers (SPLASH-style programs use one or the other).
        if !fork_targets.is_empty() {
            let uses_barriers = self
                .threads
                .iter()
                .flat_map(|t| t.ops())
                .any(|op| matches!(op, Op::Barrier { .. }));
            if uses_barriers {
                return Err("programs with forked threads cannot use barriers".into());
            }
        }
        let mut barrier_counts: Option<Vec<(BarrierId, usize)>> = None;
        for (ti, t) in self.threads.iter().enumerate() {
            let mut held: Vec<LockId> = Vec::new();
            let mut barriers: Vec<(BarrierId, usize)> = Vec::new();
            for (oi, op) in t.ops().iter().enumerate() {
                match *op {
                    Op::Lock { lock, .. } => {
                        if held.contains(&lock) {
                            return Err(format!("thread {ti} op {oi}: relock of held {lock}"));
                        }
                        held.push(lock);
                    }
                    Op::Unlock { lock, .. } => match held.iter().position(|&l| l == lock) {
                        Some(p) => {
                            held.remove(p);
                        }
                        None => {
                            return Err(format!("thread {ti} op {oi}: unlock of unheld {lock}"))
                        }
                    },
                    Op::Barrier { barrier, .. } => {
                        match barriers.iter_mut().find(|(b, _)| *b == barrier) {
                            Some((_, c)) => *c += 1,
                            None => barriers.push((barrier, 1)),
                        }
                    }
                    _ => {}
                }
            }
            if !held.is_empty() {
                return Err(format!("thread {ti}: exits holding {held:?}"));
            }
            barriers.sort();
            match &barrier_counts {
                None => barrier_counts = Some(barriers),
                Some(first) => {
                    if *first != barriers {
                        return Err(format!(
                            "thread {ti}: barrier arrivals {barriers:?} differ from thread 0's {first:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Convenience builder producing a [`Program`] with a fixed thread
/// count.
///
/// # Examples
///
/// ```
/// use hard_trace::ProgramBuilder;
/// use hard_types::{Addr, SiteId};
///
/// let mut b = ProgramBuilder::new(2);
/// b.thread(0).write(Addr(0x100), 4, SiteId(1));
/// b.thread(1).read(Addr(0x100), 4, SiteId(2));
/// let p = b.build();
/// assert_eq!(p.num_threads(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    threads: Vec<ThreadProgram>,
}

impl ProgramBuilder {
    /// A builder for `num_threads` (initially empty) threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    #[must_use]
    pub fn new(num_threads: usize) -> ProgramBuilder {
        assert!(num_threads > 0, "a program needs at least one thread");
        ProgramBuilder {
            threads: vec![ThreadProgram::new(); num_threads],
        }
    }

    /// Mutable access to thread `t`'s program.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn thread(&mut self, t: u32) -> &mut ThreadProgram {
        &mut self.threads[t as usize]
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> Program {
        Program::new(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u32) -> SiteId {
        SiteId(n)
    }

    #[test]
    fn builder_chains_and_counts() {
        let mut b = ProgramBuilder::new(2);
        b.thread(0)
            .lock(LockId(4), site(0))
            .write(Addr(0x10), 4, site(1))
            .unlock(LockId(4), site(2))
            .compute(5);
        b.thread(1).read(Addr(0x10), 4, site(3));
        let p = b.build();
        assert_eq!(p.total_ops(), 5);
        assert_eq!(p.thread(ThreadId(0)).len(), 4);
        assert!(!p.thread(ThreadId(0)).is_empty());
        assert_eq!(p.locks_used().len(), 1);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let mut b = ProgramBuilder::new(2);
        for t in 0..2 {
            b.thread(t)
                .lock(LockId(4), site(0))
                .unlock(LockId(4), site(1))
                .barrier(BarrierId(0), site(2));
        }
        assert_eq!(b.build().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unlock_of_unheld() {
        let mut b = ProgramBuilder::new(1);
        b.thread(0).unlock(LockId(4), site(0));
        let err = b.build().validate().unwrap_err();
        assert!(err.contains("unheld"), "{err}");
    }

    #[test]
    fn validate_rejects_leaked_lock() {
        let mut b = ProgramBuilder::new(1);
        b.thread(0).lock(LockId(4), site(0));
        let err = b.build().validate().unwrap_err();
        assert!(err.contains("exits holding"), "{err}");
    }

    #[test]
    fn validate_rejects_relock() {
        let mut b = ProgramBuilder::new(1);
        b.thread(0)
            .lock(LockId(4), site(0))
            .lock(LockId(4), site(1));
        let err = b.build().validate().unwrap_err();
        assert!(err.contains("relock"), "{err}");
    }

    #[test]
    fn validate_rejects_mismatched_barriers() {
        let mut b = ProgramBuilder::new(2);
        b.thread(0).barrier(BarrierId(0), site(0));
        // thread 1 never arrives
        let err = b.build().validate().unwrap_err();
        assert!(err.contains("barrier"), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_program_panics() {
        let _ = Program::new(vec![]);
    }

    #[test]
    fn remove_op_for_injection() {
        let mut b = ProgramBuilder::new(1);
        b.thread(0)
            .lock(LockId(4), site(0))
            .write(Addr(0x10), 4, site(1))
            .unlock(LockId(4), site(2));
        let mut p = b.build();
        let removed = p.thread_mut(ThreadId(0)).remove(0);
        assert!(matches!(removed, Op::Lock { .. }));
        assert_eq!(p.thread(ThreadId(0)).len(), 2);
    }
}
