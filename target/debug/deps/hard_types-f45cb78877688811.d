/root/repo/target/debug/deps/hard_types-f45cb78877688811.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/fault.rs crates/types/src/ids.rs crates/types/src/rng.rs

/root/repo/target/debug/deps/libhard_types-f45cb78877688811.rlib: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/fault.rs crates/types/src/ids.rs crates/types/src/rng.rs

/root/repo/target/debug/deps/libhard_types-f45cb78877688811.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/fault.rs crates/types/src/ids.rs crates/types/src/rng.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/fault.rs:
crates/types/src/ids.rs:
crates/types/src/rng.rs:
