//! The `hard-serve` wire protocol: framing and handshake.
//!
//! A detection session travels over a plain TCP byte stream as a
//! fixed 8-byte protocol handshake followed by length-prefixed
//! frames. The protocol is deliberately minimal — no TLS, no
//! multiplexing — because the service sits behind the same trust
//! boundary as the corpus directory it mirrors; what it *is* careful
//! about is hostile framing: every length is bounded before
//! allocation, unknown frame kinds are rejected without consuming
//! the payload, and a truncated stream surfaces as a clean error
//! rather than a hang or a panic.
//!
//! # Handshake
//!
//! The client opens the connection by sending [`WIRE_MAGIC`]
//! (`"HARDSRV1"`); the server echoes the same 8 bytes back. A server
//! receiving any other prefix answers with an [`FrameKind::Error`]
//! frame naming the mismatch and closes. The version digit is part of
//! the magic, so a future `HARDSRV2` client is detected before any
//! frame is parsed.
//!
//! # Frame layout
//!
//! ```text
//! kind     1  byte (see FrameKind)
//! len      4  u32 LE payload length
//! payload  len bytes
//! ```
//!
//! Client → server kinds: [`FrameKind::Begin`] (payload: UTF-8
//! detector label, optionally extended with a session trace ID — see
//! [`encode_begin`]) opens a session, [`FrameKind::Data`] chunks carry
//! the bytes of one `HARDCRP1` corpus stream (any chunking; the
//! session reassembles them), [`FrameKind::End`] closes the session
//! and requests the report, [`FrameKind::Health`] asks for a
//! readiness snapshot without opening a session, and
//! [`FrameKind::Shutdown`] asks the server to drain and exit.
//! Server → client kinds: [`FrameKind::Report`] (payload: JSON report
//! body), [`FrameKind::Error`] (payload: UTF-8 message),
//! [`FrameKind::Busy`] (overload shed; payload from [`encode_busy`]
//! carries a retry-after hint), [`FrameKind::Healthy`] (payload: JSON
//! readiness snapshot), and [`FrameKind::Bye`] (shutdown
//! acknowledged).
//!
//! # Session trace IDs
//!
//! A `Begin` payload may carry a client-generated 64-bit trace ID as
//! a `;trace=<16 hex digits>` suffix after the detector label
//! ([`encode_begin`] / [`decode_begin`]); a bare label stays a valid
//! payload, so version-1 clients interoperate unchanged. The server
//! assigns an ID when the client sent none and echoes the session's
//! ID back as a strippable `trace=<16 hex digits>;` *prefix* on its
//! `Report`, `Error`, and `Busy` payloads ([`encode_traced`] /
//! [`split_traced`]). The prefix rides *outside* the report body on
//! purpose: the body stays byte-identical to offline replay, which
//! the serve tier's equivalence tests compare verbatim.
//!
//! # Flushing
//!
//! [`write_frame`] buffers: it never flushes the sink, so a client
//! streaming thousands of small `Data` frames through a `BufWriter`
//! pays one syscall per buffer, not one per frame. The cost of that
//! decision is a protocol rule — **flush before you wait**. Every
//! writer that is about to block on the peer's answer (client after
//! `End`, `Health` or `Shutdown`; server after any response frame)
//! must flush explicitly, or both sides deadlock until a timeout
//! fires.
//!
//! The payload checksum is *not* a framing concern: the `HARDCRP1`
//! stream the Data frames carry embeds its own header and payload
//! FNV-1a checksums, which the server verifies on ingest before any
//! detection runs.

use std::io::{Read, Write};

/// Handshake magic; the trailing digit is the protocol version.
pub const WIRE_MAGIC: &[u8; 8] = b"HARDSRV1";

/// Hard upper bound on one frame's payload, defending the reader
/// against absurd length prefixes before any allocation happens.
/// Servers typically configure a tighter per-session byte budget on
/// top of this.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// The frame kinds of protocol version 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: open a session; payload is the UTF-8 detector
    /// label (e.g. `hard`).
    Begin = 0x01,
    /// Client → server: a chunk of the session's `HARDCRP1` stream.
    Data = 0x02,
    /// Client → server: the stream is complete; run detection and
    /// answer with a report.
    End = 0x03,
    /// Client → server: readiness probe; the server answers with a
    /// [`FrameKind::Healthy`] snapshot. Legal at any point between
    /// sessions and does not open one.
    Health = 0x04,
    /// Client → server: stop accepting connections, drain in-flight
    /// sessions and exit.
    Shutdown = 0x0F,
    /// Server → client: the session's JSON report body.
    Report = 0x81,
    /// Server → client: a session or protocol error description.
    Error = 0x82,
    /// Server → client: shutdown acknowledged; the connection closes.
    Bye = 0x83,
    /// Server → client: the server is shedding load and did not run
    /// this session; the payload ([`encode_busy`]) carries a
    /// retry-after hint. Unlike [`FrameKind::Error`], a `Busy` answer
    /// is explicitly transient: the same submission is expected to
    /// succeed after backing off.
    Busy = 0x84,
    /// Server → client: answer to [`FrameKind::Health`]; the payload
    /// is a JSON readiness snapshot.
    Healthy = 0x85,
}

impl FrameKind {
    /// Decodes a kind byte.
    #[must_use]
    pub fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0x01 => Some(FrameKind::Begin),
            0x02 => Some(FrameKind::Data),
            0x03 => Some(FrameKind::End),
            0x04 => Some(FrameKind::Health),
            0x0F => Some(FrameKind::Shutdown),
            0x81 => Some(FrameKind::Report),
            0x82 => Some(FrameKind::Error),
            0x83 => Some(FrameKind::Bye),
            0x84 => Some(FrameKind::Busy),
            0x85 => Some(FrameKind::Healthy),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the frame means.
    pub kind: FrameKind,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with no payload.
    #[must_use]
    pub fn empty(kind: FrameKind) -> Frame {
        Frame {
            kind,
            payload: Vec::new(),
        }
    }

    /// The payload as UTF-8, with invalid sequences replaced — error
    /// and label payloads are for humans, so lossy is the right call.
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed or ended mid-frame.
    Io(std::io::Error),
    /// The peer sent a kind byte outside the protocol.
    UnknownKind(u8),
    /// A length prefix exceeded the permitted payload bound.
    TooLarge {
        /// The announced payload length.
        len: u32,
        /// The bound it violated.
        max: u32,
    },
    /// The handshake bytes were not [`WIRE_MAGIC`].
    BadMagic([u8; 8]),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O: {e}"),
            WireError::UnknownKind(b) => write!(f, "unknown frame kind byte 0x{b:02X}"),
            WireError::TooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte bound"
                )
            }
            WireError::BadMagic(m) => {
                write!(f, "bad handshake {:?} (expected {:?})", m, WIRE_MAGIC)
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl WireError {
    /// True when the error is an I/O timeout (`WouldBlock` /
    /// `TimedOut`, depending on platform) — the idle-session signal
    /// servers turn into a client-visible error frame.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<()> {
    r.read_exact(buf)
}

/// Writes the 8-byte handshake.
///
/// # Errors
///
/// Propagates write errors.
pub fn write_handshake(w: &mut impl Write) -> Result<(), WireError> {
    w.write_all(WIRE_MAGIC)?;
    Ok(())
}

/// Reads and checks the 8-byte handshake.
///
/// # Errors
///
/// [`WireError::BadMagic`] carries the received bytes so the server
/// can name them in its error frame; I/O failures pass through.
pub fn read_handshake(r: &mut impl Read) -> Result<(), WireError> {
    let mut m = [0u8; 8];
    read_exact(r, &mut m)?;
    if &m != WIRE_MAGIC {
        return Err(WireError::BadMagic(m));
    }
    Ok(())
}

/// Writes one frame. Does **not** flush the sink (see the module-level
/// flushing rule): a caller about to wait for the peer's answer must
/// flush explicitly.
///
/// # Errors
///
/// [`WireError::TooLarge`] when the payload exceeds
/// [`MAX_FRAME_BYTES`]; I/O failures pass through.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::TooLarge {
        len: u32::MAX,
        max: MAX_FRAME_BYTES,
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    w.write_all(&[kind as u8])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Encodes a [`FrameKind::Busy`] payload: the machine-readable
/// retry-after hint followed by a human-readable reason.
///
/// The format is a single UTF-8 line, `retry-after-ms=<N>; <reason>`,
/// so the payload stays debuggable in a packet capture while
/// [`decode_busy`] can still recover the hint exactly.
#[must_use]
pub fn encode_busy(retry_after_ms: u64, reason: &str) -> Vec<u8> {
    format!("retry-after-ms={retry_after_ms}; {reason}").into_bytes()
}

/// Decodes a [`FrameKind::Busy`] payload into its retry-after hint (if
/// the peer sent a parseable one) and the human-readable reason.
///
/// Tolerant by design: a payload without the `retry-after-ms=` prefix
/// — say, from a future server speaking a richer dialect — decodes as
/// `(None, whole payload)` so the client can still back off on its own
/// schedule and log the reason.
#[must_use]
pub fn decode_busy(payload: &[u8]) -> (Option<u64>, String) {
    let text = String::from_utf8_lossy(payload).into_owned();
    if let Some(rest) = text.strip_prefix("retry-after-ms=") {
        if let Some((num, reason)) = rest.split_once("; ") {
            if let Ok(ms) = num.parse::<u64>() {
                return (Some(ms), reason.to_string());
            }
        }
    }
    (None, text)
}

/// Parses exactly 16 ASCII hex digits into a u64.
fn parse_hex16(bytes: &[u8]) -> Option<u64> {
    if bytes.len() != 16 || !bytes.iter().all(u8::is_ascii_hexdigit) {
        return None;
    }
    let text = std::str::from_utf8(bytes).ok()?;
    u64::from_str_radix(text, 16).ok()
}

/// Encodes a [`FrameKind::Begin`] payload: the detector label,
/// optionally extended with the session's client-generated trace ID
/// as a `;trace=<16 hex digits>` suffix.
///
/// `encode_begin("hard", None)` produces exactly the bytes a
/// version-1 client sent, so the extension is invisible to servers
/// and captures when unused.
#[must_use]
pub fn encode_begin(detector: &str, trace: Option<u64>) -> Vec<u8> {
    match trace {
        Some(t) => format!("{detector};trace={t:016x}").into_bytes(),
        None => detector.as_bytes().to_vec(),
    }
}

/// Decodes a [`FrameKind::Begin`] payload into the detector label and
/// the client's trace ID, if it sent a well-formed one.
///
/// Total and tolerant — this decoder faces untrusted network input.
/// Anything that is not exactly `<label>;trace=<16 hex digits>`
/// decodes as `(whole payload as text, None)`: a malformed trace
/// suffix degrades to an unknown-detector error downstream (the label
/// won't parse), never to a panic or a silently truncated label.
#[must_use]
pub fn decode_begin(payload: &[u8]) -> (String, Option<u64>) {
    let text = String::from_utf8_lossy(payload).into_owned();
    if let Some((label, hex)) = text.rsplit_once(";trace=") {
        if let Some(trace) = parse_hex16(hex.as_bytes()) {
            return (label.to_string(), Some(trace));
        }
    }
    (text, None)
}

/// Prefixes a server response payload with the session's trace ID:
/// `trace=<16 hex digits>;` followed by the body, or the body
/// unchanged when there is no ID to echo.
///
/// Used on `Report`, `Error`, and `Busy` payloads. The prefix is
/// strippable ([`split_traced`]) so the body — a report that must stay
/// byte-identical to offline replay — is never altered by tracing.
#[must_use]
pub fn encode_traced(trace: Option<u64>, body: &[u8]) -> Vec<u8> {
    match trace {
        Some(t) => {
            let mut out = format!("trace={t:016x};").into_bytes();
            out.extend_from_slice(body);
            out
        }
        None => body.to_vec(),
    }
}

/// Splits a server response payload into its echoed trace ID (if the
/// well-formed `trace=<16 hex digits>;` prefix is present) and the
/// body. Payloads from servers that don't echo trace IDs pass through
/// as `(None, payload)`.
#[must_use]
pub fn split_traced(payload: &[u8]) -> (Option<u64>, &[u8]) {
    const PREFIX: &[u8] = b"trace=";
    const END: usize = 6 + 16; // "trace=" + 16 hex digits
    if payload.len() > END && payload.starts_with(PREFIX) && payload[END] == b';' {
        if let Some(trace) = parse_hex16(&payload[6..END]) {
            return (Some(trace), &payload[END + 1..]);
        }
    }
    (None, payload)
}

/// Reads one frame, bounding the payload at the *smaller* of
/// `max_payload` and [`MAX_FRAME_BYTES`].
///
/// The length prefix is validated before any allocation, so a hostile
/// peer announcing a 4 GiB payload costs five bytes of reading, not
/// an allocation attempt.
///
/// # Errors
///
/// [`WireError::UnknownKind`] for a kind byte outside the protocol,
/// [`WireError::TooLarge`] for an over-bound length prefix, and
/// [`WireError::Io`] for stream failures (including clean EOF between
/// frames, which surfaces as `UnexpectedEof`).
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Frame, WireError> {
    let mut head = [0u8; 5];
    read_exact(r, &mut head)?;
    let kind = FrameKind::from_byte(head[0]).ok_or(WireError::UnknownKind(head[0]))?;
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes"));
    let max = max_payload.min(MAX_FRAME_BYTES);
    if len > max {
        return Err(WireError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload)?;
    Ok(Frame { kind, payload })
}

/// An incremental (push-style) frame decoder for async readers.
///
/// [`read_frame`] pulls from a blocking [`Read`]; an async reader
/// instead *pushes* whatever bytes the socket produced and asks for
/// complete frames. The assembler buffers at most one frame head plus
/// one payload, so memory per connection is bounded by the negotiated
/// frame cap, never by upload size.
///
/// Validation matches [`read_frame`] byte for byte: the kind byte is
/// only judged once all 5 head bytes are present (a lone garbage byte
/// followed by silence is an idle timeout, not an `UnknownKind`), the
/// length prefix is bounded before the payload is buffered, and the
/// error values are the same [`WireError`] variants.
#[derive(Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted once it outgrows the tail.
    start: usize,
}

impl FrameAssembler {
    /// A fresh assembler with no buffered bytes.
    #[must_use]
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decodes the next complete frame, bounding payloads at the
    /// smaller of `max_payload` and [`MAX_FRAME_BYTES`]. `Ok(None)`
    /// means more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownKind`] and [`WireError::TooLarge`] exactly
    /// as [`read_frame`] reports them. The assembler is poisoned-free:
    /// after an error the caller is expected to drop the connection,
    /// matching the blocking reader's contract.
    pub fn next_frame(&mut self, max_payload: u32) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 5 {
            return Ok(None);
        }
        let kind = FrameKind::from_byte(avail[0]).ok_or(WireError::UnknownKind(avail[0]))?;
        let len = u32::from_le_bytes(avail[1..5].try_into().expect("4 bytes"));
        let max = max_payload.min(MAX_FRAME_BYTES);
        if len > max {
            return Err(WireError::TooLarge { len, max });
        }
        let total = 5 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[5..total].to_vec();
        self.start += total;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(Frame { kind, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_handshake(&mut buf).unwrap();
        write_frame(&mut buf, FrameKind::Begin, b"hard").unwrap();
        write_frame(&mut buf, FrameKind::Data, &[0xAB; 100]).unwrap();
        write_frame(&mut buf, FrameKind::End, b"").unwrap();
        let mut r = Cursor::new(buf);
        read_handshake(&mut r).unwrap();
        let f = read_frame(&mut r, MAX_FRAME_BYTES).unwrap();
        assert_eq!((f.kind, f.text().as_str()), (FrameKind::Begin, "hard"));
        let f = read_frame(&mut r, MAX_FRAME_BYTES).unwrap();
        assert_eq!((f.kind, f.payload.len()), (FrameKind::Data, 100));
        let f = read_frame(&mut r, MAX_FRAME_BYTES).unwrap();
        assert_eq!(f, Frame::empty(FrameKind::End));
        // Stream exhausted: clean EOF surfaces as an I/O error.
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME_BYTES),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn bad_magic_is_reported_with_the_received_bytes() {
        let mut r = Cursor::new(b"HARDSRV9".to_vec());
        let Err(WireError::BadMagic(m)) = read_handshake(&mut r) else {
            panic!("version-9 magic must be rejected");
        };
        assert_eq!(&m, b"HARDSRV9");
    }

    #[test]
    fn unknown_kind_and_oversized_frames_are_rejected() {
        let mut buf = vec![0x7Fu8];
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf), MAX_FRAME_BYTES),
            Err(WireError::UnknownKind(0x7F))
        ));
        let mut buf = vec![FrameKind::Data as u8];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let Err(WireError::TooLarge { len, max }) = read_frame(&mut Cursor::new(buf), 1024) else {
            panic!("a 4 GiB length prefix must be rejected before allocation");
        };
        assert_eq!((len, max), (u32::MAX, 1024));
    }

    #[test]
    fn truncated_payload_is_an_io_error_not_a_hang() {
        let mut buf = vec![FrameKind::Data as u8];
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 10]); // 90 bytes short
        assert!(matches!(
            read_frame(&mut Cursor::new(buf), MAX_FRAME_BYTES),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn every_kind_byte_round_trips() {
        for k in [
            FrameKind::Begin,
            FrameKind::Data,
            FrameKind::End,
            FrameKind::Health,
            FrameKind::Shutdown,
            FrameKind::Report,
            FrameKind::Error,
            FrameKind::Bye,
            FrameKind::Busy,
            FrameKind::Healthy,
        ] {
            assert_eq!(FrameKind::from_byte(k as u8), Some(k));
        }
        assert_eq!(FrameKind::from_byte(0x00), None);
    }

    #[test]
    fn busy_payload_round_trips() {
        let p = encode_busy(250, "detection queue saturated");
        assert_eq!(
            decode_busy(&p),
            (Some(250), "detection queue saturated".to_string())
        );
        // A zero hint is a legal "retry immediately".
        assert_eq!(decode_busy(&encode_busy(0, "x")), (Some(0), "x".into()));
    }

    #[test]
    fn busy_decode_tolerates_foreign_payloads() {
        let (hint, reason) = decode_busy(b"server is grumpy");
        assert_eq!((hint, reason.as_str()), (None, "server is grumpy"));
        // A malformed hint degrades to no-hint, never to a parse error.
        let (hint, _) = decode_busy(b"retry-after-ms=soon; later");
        assert_eq!(hint, None);
        let (hint, _) = decode_busy(b"retry-after-ms=5");
        assert_eq!(hint, None);
    }

    #[test]
    fn begin_payload_round_trips_with_and_without_trace() {
        assert_eq!(encode_begin("hard", None), b"hard".to_vec());
        assert_eq!(decode_begin(b"hard"), ("hard".to_string(), None));
        let p = encode_begin("lockset-ideal", Some(0xdead_beef_0000_002a));
        assert_eq!(p, b"lockset-ideal;trace=deadbeef0000002a".to_vec());
        assert_eq!(
            decode_begin(&p),
            ("lockset-ideal".to_string(), Some(0xdead_beef_0000_002a))
        );
        // Trace 0 is legal and distinguishable from "no trace".
        assert_eq!(
            decode_begin(&encode_begin("hard", Some(0))),
            ("hard".to_string(), Some(0))
        );
    }

    #[test]
    fn begin_decode_tolerates_hostile_payloads() {
        // Malformed suffixes degrade to "whole text is the label".
        for bad in [
            b"hard;trace=".as_slice(),
            b"hard;trace=zz",
            b"hard;trace=123",               // too short
            b"hard;trace=00000000000000000", // too long
            b"hard;trace=00000000 0000002a", // inner space
            b";trace=",
            b"",
        ] {
            let (label, trace) = decode_begin(bad);
            assert_eq!(trace, None, "{label:?}");
            assert_eq!(label.as_bytes(), bad);
        }
        // Invalid UTF-8 never panics.
        let (_, trace) = decode_begin(&[0xFF, 0xFE, b';', b't']);
        assert_eq!(trace, None);
        // A label that itself contains ";trace=" keeps the last
        // well-formed suffix as the ID and the rest as the label.
        let (label, trace) = decode_begin(b"a;trace=0000000000000001;trace=0000000000000002");
        assert_eq!(trace, Some(2));
        assert_eq!(label, "a;trace=0000000000000001");
    }

    #[test]
    fn traced_responses_split_back_into_trace_and_body() {
        let body = b"{\"label\":\"hard\"}";
        let p = encode_traced(Some(0x2a), body);
        let (trace, rest) = split_traced(&p);
        assert_eq!(trace, Some(0x2a));
        assert_eq!(rest, body);
        // No trace: bytes pass through identical.
        assert_eq!(encode_traced(None, body), body.to_vec());
        assert_eq!(split_traced(body), (None, body.as_slice()));
        // Empty body after the prefix.
        let p = encode_traced(Some(1), b"");
        assert_eq!(split_traced(&p), (Some(1), b"".as_slice()));
        // A body that happens to start with a malformed trace-like
        // prefix is left intact.
        let fake = b"trace=nothexdigits00;x".as_slice();
        assert_eq!(split_traced(fake), (None, fake));
        let short = b"trace=00000000000000".as_slice();
        assert_eq!(split_traced(short), (None, short));
    }

    #[test]
    fn write_frame_does_not_flush() {
        // A sink that panics on flush proves the framing layer leaves
        // flush policy to the caller.
        struct NoFlush(Vec<u8>);
        impl Write for NoFlush {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                panic!("write_frame must not flush");
            }
        }
        let mut w = NoFlush(Vec::new());
        write_frame(&mut w, FrameKind::Data, b"abc").unwrap();
        assert_eq!(w.0.len(), 5 + 3);
    }

    #[test]
    fn assembler_matches_read_frame_for_any_chunking() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Begin, b"hard;trace=00000000c11e0001").unwrap();
        write_frame(&mut wire, FrameKind::Data, &[0xAB; 1000]).unwrap();
        write_frame(&mut wire, FrameKind::Data, b"").unwrap();
        write_frame(&mut wire, FrameKind::End, b"").unwrap();
        let mut r = Cursor::new(wire.clone());
        let expected: Vec<Frame> = (0..4).map(|_| read_frame(&mut r, 4096).unwrap()).collect();
        for chunk in [1usize, 2, 3, 7, 64, 4096] {
            let mut asm = FrameAssembler::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                asm.push(piece);
                while let Some(f) = asm.next_frame(4096).unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, expected, "chunk={chunk}");
            assert_eq!(asm.pending(), 0);
        }
    }

    #[test]
    fn assembler_rejects_hostile_frames_like_read_frame() {
        // Unknown kind: judged only once the full 5-byte head is in.
        let mut asm = FrameAssembler::new();
        asm.push(&[0x7F]);
        assert!(matches!(asm.next_frame(1024), Ok(None)));
        asm.push(&0u32.to_le_bytes());
        assert!(matches!(
            asm.next_frame(1024),
            Err(WireError::UnknownKind(0x7F))
        ));
        // Oversized length prefix: rejected before buffering a payload.
        let mut asm = FrameAssembler::new();
        asm.push(&[FrameKind::Data as u8]);
        asm.push(&u32::MAX.to_le_bytes());
        let Err(WireError::TooLarge { len, max }) = asm.next_frame(1024) else {
            panic!("a 4 GiB length prefix must be rejected");
        };
        assert_eq!((len, max), (u32::MAX, 1024));
    }

    #[test]
    fn timeout_classification() {
        let t = WireError::Io(std::io::Error::new(std::io::ErrorKind::WouldBlock, "t"));
        assert!(t.is_timeout());
        let t = WireError::Io(std::io::Error::new(std::io::ErrorKind::TimedOut, "t"));
        assert!(t.is_timeout());
        assert!(!WireError::UnknownKind(1).is_timeout());
    }
}
