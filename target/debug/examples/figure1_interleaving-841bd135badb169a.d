/root/repo/target/debug/examples/figure1_interleaving-841bd135badb169a.d: examples/figure1_interleaving.rs

/root/repo/target/debug/examples/figure1_interleaving-841bd135badb169a: examples/figure1_interleaving.rs

examples/figure1_interleaving.rs:
