/root/repo/target/debug/deps/radix-2a208480fd1a54df.d: tests/radix.rs

/root/repo/target/debug/deps/radix-2a208480fd1a54df: tests/radix.rs

tests/radix.rs:
