/root/repo/target/debug/deps/hard_hb-a96b471d2cf84b32.d: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs

/root/repo/target/debug/deps/hard_hb-a96b471d2cf84b32: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs

crates/hb/src/lib.rs:
crates/hb/src/clock.rs:
crates/hb/src/ideal.rs:
crates/hb/src/meta.rs:
crates/hb/src/scalar.rs:
crates/hb/src/sync.rs:
