/root/repo/target/debug/deps/hard_repro-b8cc32eabc930f25.d: src/lib.rs

/root/repo/target/debug/deps/libhard_repro-b8cc32eabc930f25.rlib: src/lib.rs

/root/repo/target/debug/deps/libhard_repro-b8cc32eabc930f25.rmeta: src/lib.rs

src/lib.rs:
