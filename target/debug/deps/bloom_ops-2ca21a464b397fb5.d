/root/repo/target/debug/deps/bloom_ops-2ca21a464b397fb5.d: crates/bench/benches/bloom_ops.rs

/root/repo/target/debug/deps/bloom_ops-2ca21a464b397fb5: crates/bench/benches/bloom_ops.rs

crates/bench/benches/bloom_ops.rs:
