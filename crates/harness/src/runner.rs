//! Hardened campaign execution.
//!
//! The plain [`execute`](crate::detectors::execute) path is the right
//! tool for the paper's fault-free tables: any panic there is a
//! simulator bug and should abort loudly. Fault-injection campaigns
//! invert that contract — the whole point is to drive the machine into
//! states that *would* crash an unhardened implementation — so every
//! run is isolated behind [`std::panic::catch_unwind`] and bounded by a
//! simulated-cycle deadline, and the campaign reports a structured
//! [`RunOutcome`] instead of tearing down the sweep.

use crate::campaign::CellTrace;
use crate::detectors::{DetectorKind, DetectorRun};
use crate::kernel;
use hard::{HardMachine, HbMachine};
use hard_hb::{IdealHappensBefore, IdealHbConfig};
use hard_lockset::bloom_table::BloomLockset;
use hard_lockset::IdealLockset;
use hard_obs::ObsHandle;
use hard_trace::codec;
use hard_trace::packed_event::{ChunkedReader, PackedEvent, PackedTrace, RECORD_BYTES};
use hard_trace::{observe_event, Detector, Trace, TraceEvent, BATCH_EVENTS};
use hard_types::{Addr, FaultStats};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Resource bounds for one hardened run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunLimits {
    /// Simulated-cycle deadline. Checked on the HARD machine, the only
    /// detector with a full timing model; the others ignore it and are
    /// bounded by `max_events` instead.
    pub max_cycles: Option<u64>,
    /// Trace-event deadline, applied to every detector.
    pub max_events: Option<u64>,
}

impl RunLimits {
    /// No bounds: run to completion.
    #[must_use]
    pub const fn unlimited() -> RunLimits {
        RunLimits {
            max_cycles: None,
            max_events: None,
        }
    }
}

/// Resource accounting for one completed run: fault statistics plus
/// the cycle/traffic attribution the observability spans carry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Fault-injection statistics (all-zero for detectors without a
    /// fault layer).
    pub faults: FaultStats,
    /// Simulated cycles consumed (0 for untimed detectors).
    pub cycles: u64,
    /// Trace events dispatched.
    pub events: u64,
    /// §3.4 metadata broadcasts issued (hardware detectors only).
    pub meta_broadcasts: u64,
    /// L2 evictions, each losing a line's metadata (hardware detectors
    /// only).
    pub l2_evictions: u64,
}

/// The structured result of one hardened run.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// The run finished, with its resource metrics.
    Ok(DetectorRun, RunMetrics),
    /// The detector panicked; the run is charged as a crash, not
    /// silently dropped.
    Faulted {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A deadline expired before the trace was consumed.
    TimedOut {
        /// Events consumed before the deadline.
        events_done: u64,
        /// Simulated cycles at expiry (0 for untimed detectors).
        cycles: u64,
    },
}

impl RunOutcome {
    /// The completed run, if there is one.
    #[must_use]
    pub fn ok(&self) -> Option<&DetectorRun> {
        match self {
            RunOutcome::Ok(run, _) => Some(run),
            _ => None,
        }
    }

    /// True for [`RunOutcome::Faulted`].
    #[must_use]
    pub fn is_faulted(&self) -> bool {
        matches!(self, RunOutcome::Faulted { .. })
    }

    /// True for [`RunOutcome::TimedOut`].
    #[must_use]
    pub fn is_timed_out(&self) -> bool {
        matches!(self, RunOutcome::TimedOut { .. })
    }
}

/// How often the deadline is checked, in events. Checking per event
/// would double the dispatch cost for nothing; any overshoot is
/// bounded by this constant.
const DEADLINE_STRIDE: u64 = 256;

// The batched loop checks deadlines after each full batch; the stride
// must equal the batch size so batched and per-event runs time out at
// the same event counts (identical overshoot included).
const _: () = assert!(DEADLINE_STRIDE == BATCH_EVENTS as u64);

enum AnyDetector {
    Hard(Box<HardMachine>),
    LocksetIdeal(Box<IdealLockset>),
    HbHw(Box<HbMachine>),
    HbIdeal(Box<IdealHappensBefore>),
    BloomUnbounded(Box<BloomLockset>),
}

impl AnyDetector {
    fn build(kind: &DetectorKind, num_threads: usize, obs: &ObsHandle) -> AnyDetector {
        match kind {
            DetectorKind::Hard(cfg) => {
                let mut m = Box::new(HardMachine::new(*cfg));
                m.attach_recorder(obs.clone());
                m.set_lane_kernel(kernel::installed().lane_kernel());
                AnyDetector::Hard(m)
            }
            DetectorKind::LocksetIdeal(cfg) => {
                AnyDetector::LocksetIdeal(Box::new(IdealLockset::new(*cfg)))
            }
            DetectorKind::HbHw(cfg) => {
                let mut m = Box::new(HbMachine::new(*cfg));
                m.attach_recorder(obs.clone());
                AnyDetector::HbHw(m)
            }
            DetectorKind::HbIdeal { granularity } => {
                AnyDetector::HbIdeal(Box::new(IdealHappensBefore::new(IdealHbConfig {
                    num_threads,
                    granularity: *granularity,
                })))
            }
            DetectorKind::BloomUnbounded(cfg) => {
                AnyDetector::BloomUnbounded(Box::new(BloomLockset::new(*cfg)))
            }
        }
    }

    fn on_event(&mut self, index: usize, e: &hard_trace::TraceEvent) {
        match self {
            AnyDetector::Hard(m) => m.on_event(index, e),
            AnyDetector::LocksetIdeal(d) => d.on_event(index, e),
            AnyDetector::HbHw(m) => m.on_event(index, e),
            AnyDetector::HbIdeal(d) => d.on_event(index, e),
            AnyDetector::BloomUnbounded(d) => d.on_event(index, e),
        }
    }

    fn on_batch(&mut self, index: usize, events: &[TraceEvent]) {
        match self {
            // HARD overrides on_batch with its vectorized span kernel;
            // the rest run the trait's default per-event loop.
            AnyDetector::Hard(m) => m.on_batch(index, events),
            AnyDetector::LocksetIdeal(d) => d.on_batch(index, events),
            AnyDetector::HbHw(m) => m.on_batch(index, events),
            AnyDetector::HbIdeal(d) => d.on_batch(index, events),
            AnyDetector::BloomUnbounded(d) => d.on_batch(index, events),
        }
    }

    fn cycles(&self) -> u64 {
        match self {
            // HARD is the only detector with a full timing model; the
            // others fall back to the event deadline.
            AnyDetector::Hard(m) => m.total_cycles().0,
            _ => 0,
        }
    }

    fn fault_stats(&self) -> FaultStats {
        match self {
            AnyDetector::Hard(m) => m.fault_stats(),
            _ => FaultStats::default(),
        }
    }

    /// `(meta_broadcasts, l2_evictions)` for the hardware detectors;
    /// the ideal detectors have no memory hierarchy.
    fn traffic(&self) -> (u64, u64) {
        match self {
            AnyDetector::Hard(m) => (m.stats().meta_broadcasts, m.stats().l2_evictions),
            AnyDetector::HbHw(m) => (m.stats().meta_broadcasts, m.stats().l2_evictions),
            _ => (0, 0),
        }
    }

    fn finish(self, probes: &[Addr]) -> DetectorRun {
        match self {
            AnyDetector::Hard(m) => DetectorRun {
                reports: m.reports().to_vec(),
                meta_lost: probes.iter().map(|&a| m.was_meta_lost(a)).collect(),
            },
            AnyDetector::LocksetIdeal(d) => DetectorRun {
                reports: d.reports().to_vec(),
                meta_lost: vec![false; probes.len()],
            },
            AnyDetector::HbHw(m) => DetectorRun {
                reports: m.reports().to_vec(),
                meta_lost: probes.iter().map(|&a| m.was_meta_lost(a)).collect(),
            },
            AnyDetector::HbIdeal(d) => DetectorRun {
                reports: d.reports().to_vec(),
                meta_lost: vec![false; probes.len()],
            },
            AnyDetector::BloomUnbounded(d) => DetectorRun {
                reports: d.reports().to_vec(),
                meta_lost: vec![false; probes.len()],
            },
        }
    }
}

/// The shared bounded dispatch loop, generic over the event source so
/// the materialized (`&Trace`) and packed/streamed paths run the exact
/// same code — a detector cannot tell them apart.
fn run_bounded_events<I: Iterator<Item = TraceEvent>>(
    kind: &DetectorKind,
    num_threads: usize,
    events: I,
    probes: &[Addr],
    limits: RunLimits,
    obs: &ObsHandle,
) -> RunOutcome {
    let mut d = AnyDetector::build(kind, num_threads, obs);
    // The observed path stays per-event so trace-level counters and
    // detector work interleave exactly as they always have; the batch
    // kernel is a throughput lever for the unobserved hot path.
    if kernel::installed().is_batched() && !obs.is_on() {
        return run_bounded_batched(d, events, probes, limits);
    }
    let observing = obs.is_on();
    let mut events_done = 0u64;
    for (index, e) in events.enumerate() {
        if observing {
            observe_event(obs, &e);
        }
        d.on_event(index, &e);
        events_done += 1;
        if events_done.is_multiple_of(DEADLINE_STRIDE) {
            if let Some(timed_out) = deadline_check(&d, limits, events_done) {
                return timed_out;
            }
        }
    }
    finish_run(d, probes, events_done)
}

/// The batched bounded loop: events are decoded/copied into one
/// recycled [`BATCH_EVENTS`]-sized buffer and dispatched through
/// [`Detector::on_batch`]. Deadlines are checked after each full batch
/// — the same `events_done` multiples as the per-event loop, so both
/// paths time out with identical `(events_done, cycles)`.
fn run_bounded_batched<I: Iterator<Item = TraceEvent>>(
    mut d: AnyDetector,
    mut events: I,
    probes: &[Addr],
    limits: RunLimits,
) -> RunOutcome {
    let mut buf: Vec<TraceEvent> = Vec::with_capacity(BATCH_EVENTS);
    let mut events_done = 0u64;
    let mut index = 0usize;
    loop {
        buf.clear();
        buf.extend(events.by_ref().take(BATCH_EVENTS));
        if buf.is_empty() {
            break;
        }
        d.on_batch(index, &buf);
        index += buf.len();
        events_done += buf.len() as u64;
        if events_done.is_multiple_of(DEADLINE_STRIDE) {
            if let Some(timed_out) = deadline_check(&d, limits, events_done) {
                return timed_out;
            }
        }
    }
    finish_run(d, probes, events_done)
}

/// One deadline probe, shared by both dispatch loops.
fn deadline_check(d: &AnyDetector, limits: RunLimits, events_done: u64) -> Option<RunOutcome> {
    if let Some(max) = limits.max_events {
        if events_done >= max {
            return Some(RunOutcome::TimedOut {
                events_done,
                cycles: d.cycles(),
            });
        }
    }
    if let Some(max) = limits.max_cycles {
        let c = d.cycles();
        if c >= max {
            return Some(RunOutcome::TimedOut {
                events_done,
                cycles: c,
            });
        }
    }
    None
}

/// Wraps up a completed run with its resource metrics.
fn finish_run(d: AnyDetector, probes: &[Addr], events_done: u64) -> RunOutcome {
    let (meta_broadcasts, l2_evictions) = d.traffic();
    let metrics = RunMetrics {
        faults: d.fault_stats(),
        cycles: d.cycles(),
        events: events_done,
        meta_broadcasts,
        l2_evictions,
    };
    RunOutcome::Ok(d.finish(probes), metrics)
}

fn run_bounded(
    kind: &DetectorKind,
    trace: &Trace,
    probes: &[Addr],
    limits: RunLimits,
    obs: &ObsHandle,
) -> RunOutcome {
    run_bounded_events(
        kind,
        trace.num_threads,
        trace.events.iter().copied(),
        probes,
        limits,
        obs,
    )
}

/// Runs `kind` over `trace` with panic isolation and deadlines, using
/// the process-global observability handle ([`hard_obs::installed`]).
///
/// Unlimited, with a detector that completes and no recorder
/// installed, this produces exactly the reports of
/// [`execute`](crate::detectors::execute) on the same inputs — the
/// hardened path adds containment, not behaviour.
#[must_use]
pub fn execute_hardened(
    kind: &DetectorKind,
    trace: &Trace,
    probes: &[Addr],
    limits: RunLimits,
) -> RunOutcome {
    execute_hardened_observed(kind, trace, probes, limits, &hard_obs::installed())
}

/// [`execute_hardened`] with an explicit observability handle: the
/// whole run is wrapped in a `run:<detector>` span carrying
/// cycle/event attribution, trace events are classified into
/// per-op-class counters, and the hardware machines emit their
/// detection-pipeline metrics.
#[must_use]
pub fn execute_hardened_observed(
    kind: &DetectorKind,
    trace: &Trace,
    probes: &[Addr],
    limits: RunLimits,
    obs: &ObsHandle,
) -> RunOutcome {
    hardened(kind, obs, || run_bounded(kind, trace, probes, limits, obs))
}

/// [`execute_hardened`] over a packed trace: the detector consumes the
/// record buffer directly through the streaming iterator — no
/// `Vec<TraceEvent>` is materialized — and observes the identical
/// event sequence, so reports and metrics match the materialized path
/// bit for bit.
#[must_use]
pub fn execute_hardened_packed(
    kind: &DetectorKind,
    trace: &PackedTrace,
    probes: &[Addr],
    limits: RunLimits,
) -> RunOutcome {
    execute_hardened_packed_observed(kind, trace, probes, limits, &hard_obs::installed())
}

/// [`execute_hardened_packed`] with an explicit observability handle.
#[must_use]
pub fn execute_hardened_packed_observed(
    kind: &DetectorKind,
    trace: &PackedTrace,
    probes: &[Addr],
    limits: RunLimits,
    obs: &ObsHandle,
) -> RunOutcome {
    hardened(kind, obs, || {
        run_bounded_events(kind, trace.num_threads(), trace.iter(), probes, limits, obs)
    })
}

/// [`execute_hardened`] over whichever representation the campaign
/// produced ([`CellTrace`]): materialized traces take the classic
/// path, corpus-served traces replay streamed.
#[must_use]
pub fn execute_hardened_cell(
    kind: &DetectorKind,
    trace: &CellTrace,
    probes: &[Addr],
    limits: RunLimits,
) -> RunOutcome {
    execute_hardened_cell_observed(kind, trace, probes, limits, &hard_obs::installed())
}

/// [`execute_hardened_cell`] with an explicit observability handle.
#[must_use]
pub fn execute_hardened_cell_observed(
    kind: &DetectorKind,
    trace: &CellTrace,
    probes: &[Addr],
    limits: RunLimits,
    obs: &ObsHandle,
) -> RunOutcome {
    match trace {
        CellTrace::Materialized(t) => execute_hardened_observed(kind, t, probes, limits, obs),
        CellTrace::Packed(p) => execute_hardened_packed_observed(kind, p, probes, limits, obs),
    }
}

/// The shared containment wrapper: `run:<detector>` span, panic
/// isolation, and bench accounting around whichever dispatch loop
/// `run` drives.
fn hardened(kind: &DetectorKind, obs: &ObsHandle, run: impl FnOnce() -> RunOutcome) -> RunOutcome {
    let timer = obs.span(|| format!("run:{}", kind.label()));
    let outcome = match catch_unwind(AssertUnwindSafe(run)) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            RunOutcome::Faulted { message }
        }
    };
    let (cycles, events) = match &outcome {
        RunOutcome::Ok(_, m) => (m.cycles, m.events),
        RunOutcome::TimedOut {
            events_done,
            cycles,
        } => (*cycles, *events_done),
        RunOutcome::Faulted { .. } => (0, 0),
    };
    obs.span_end(timer, cycles, events);
    crate::bench::account(events, cycles);
    outcome
}

/// Replays a file-backed packed record stream through `kind` without
/// ever holding the payload in memory: the double-buffered
/// [`ChunkedReader`] overlaps disk reads with detection, each record
/// decodes on the stack, and the payload FNV-1a accumulates chunk by
/// chunk for the caller to compare against the file header.
///
/// Returns the completed run, the number of events dispatched and the
/// accumulated payload hash.
///
/// # Errors
///
/// Returns a description of any I/O error or undecodable record. The
/// stream has no ground-truth probes, so `meta_lost` is empty.
pub fn execute_streamed(
    kind: &DetectorKind,
    num_threads: usize,
    reader: &mut ChunkedReader,
) -> Result<(DetectorRun, u64, u64), String> {
    let obs = hard_obs::installed();
    let observing = obs.is_on();
    let batched = kernel::installed().is_batched() && !observing;
    let mut d = AnyDetector::build(kind, num_threads, &obs);
    let mut buf: Vec<TraceEvent> = Vec::with_capacity(if batched { BATCH_EVENTS } else { 0 });
    // `index` counts decoded records (error messages, final total);
    // `base` is the global index of the first event buffered but not
    // yet dispatched.
    let mut index = 0usize;
    let mut base = 0usize;
    let mut fnv = codec::FNV1A_INIT;
    while let Some(chunk) = reader.next_chunk() {
        let chunk = chunk.map_err(|e| format!("stream read failed: {e}"))?;
        fnv = codec::fnv1a_update(fnv, &chunk);
        if !chunk.len().is_multiple_of(RECORD_BYTES) {
            return Err(format!(
                "stream ends mid-record ({} bytes over)",
                chunk.len() % RECORD_BYTES
            ));
        }
        for rec in chunk.chunks_exact(RECORD_BYTES) {
            let e = PackedEvent::from_bytes(rec.try_into().expect("16-byte record"))
                .unpack()
                .map_err(|e| format!("record {index}: {e}"))?;
            if observing {
                observe_event(&obs, &e);
            }
            if batched {
                buf.push(e);
                if buf.len() == BATCH_EVENTS {
                    d.on_batch(base, &buf);
                    base += buf.len();
                    buf.clear();
                }
            } else {
                d.on_event(index, &e);
            }
            index += 1;
        }
    }
    if batched && !buf.is_empty() {
        d.on_batch(base, &buf);
    }
    let events = index as u64;
    crate::bench::account(events, d.cycles());
    Ok((d.finish(&[]), events, fnv))
}

/// [`execute_streamed`], inverted into a push-style feeder for the
/// async serve tier: the caller hands over packed-record bytes *as
/// they arrive off the wire* — any chunking, record-aligned or not —
/// and the detector consumes them incrementally, so a session's
/// memory footprint is one wire chunk plus detector state, never the
/// whole trace.
///
/// Equivalence contract: for the same byte sequence,
/// [`StreamFeeder::finish`] returns exactly what [`execute_streamed`]
/// returns — same reports, same event count, same payload FNV, same
/// error strings at the same record indices — regardless of how the
/// bytes were split across [`StreamFeeder::feed`] calls. The batched
/// kernel's 256-event windows are buffered across chunk boundaries
/// internally, which is what makes the result chunking-invariant.
pub struct StreamFeeder {
    d: AnyDetector,
    obs: ObsHandle,
    observing: bool,
    batched: bool,
    buf: Vec<TraceEvent>,
    /// Partial record carried across a feed boundary.
    carry: [u8; RECORD_BYTES],
    carry_len: usize,
    index: usize,
    base: usize,
    fnv: u64,
}

impl StreamFeeder {
    /// Builds the detector for `kind` and an empty feed state. Kernel
    /// mode is latched here, exactly as [`execute_streamed`] latches
    /// it at entry.
    #[must_use]
    pub fn new(kind: &DetectorKind, num_threads: usize) -> StreamFeeder {
        let obs = hard_obs::installed();
        let observing = obs.is_on();
        let batched = kernel::installed().is_batched() && !observing;
        StreamFeeder {
            d: AnyDetector::build(kind, num_threads, &obs),
            obs,
            observing,
            batched,
            buf: Vec::with_capacity(if batched { BATCH_EVENTS } else { 0 }),
            carry: [0u8; RECORD_BYTES],
            carry_len: 0,
            index: 0,
            base: 0,
            fnv: codec::FNV1A_INIT,
        }
    }

    /// Events dispatched so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.index as u64
    }

    fn dispatch(&mut self, rec: &[u8; RECORD_BYTES]) -> Result<(), String> {
        let e = PackedEvent::from_bytes(rec)
            .unpack()
            .map_err(|e| format!("record {}: {e}", self.index))?;
        if self.observing {
            observe_event(&self.obs, &e);
        }
        if self.batched {
            self.buf.push(e);
            if self.buf.len() == BATCH_EVENTS {
                self.d.on_batch(self.base, &self.buf);
                self.base += self.buf.len();
                self.buf.clear();
            }
        } else {
            self.d.on_event(self.index, &e);
        }
        self.index += 1;
        Ok(())
    }

    /// Consumes the next chunk of packed-record bytes.
    ///
    /// # Errors
    ///
    /// Returns `record {index}: {cause}` for an undecodable record,
    /// matching [`execute_streamed`]. After an error the feeder state
    /// is spent; callers drop it.
    pub fn feed(&mut self, mut bytes: &[u8]) -> Result<(), String> {
        self.fnv = codec::fnv1a_update(self.fnv, bytes);
        if self.carry_len > 0 {
            let need = RECORD_BYTES - self.carry_len;
            let take = need.min(bytes.len());
            self.carry[self.carry_len..self.carry_len + take].copy_from_slice(&bytes[..take]);
            self.carry_len += take;
            bytes = &bytes[take..];
            if self.carry_len < RECORD_BYTES {
                return Ok(());
            }
            let rec = self.carry;
            self.carry_len = 0;
            self.dispatch(&rec)?;
        }
        let whole = bytes.len() - bytes.len() % RECORD_BYTES;
        for rec in bytes[..whole].chunks_exact(RECORD_BYTES) {
            self.dispatch(rec.try_into().expect("16-byte record"))?;
        }
        let tail = &bytes[whole..];
        self.carry[..tail.len()].copy_from_slice(tail);
        self.carry_len = tail.len();
        Ok(())
    }

    /// Completes the stream: flushes the partial batch, accounts the
    /// run, and returns `(run, events, payload_fnv)` exactly as
    /// [`execute_streamed`] would.
    ///
    /// # Errors
    ///
    /// `stream ends mid-record (N bytes over)` when the byte total is
    /// not a whole number of records — the same message the pull path
    /// produces for a truncated stream.
    pub fn finish(mut self) -> Result<(DetectorRun, u64, u64), String> {
        if self.carry_len != 0 {
            return Err(format!(
                "stream ends mid-record ({} bytes over)",
                self.carry_len
            ));
        }
        if self.batched && !self.buf.is_empty() {
            self.d.on_batch(self.base, &self.buf);
        }
        let events = self.index as u64;
        crate::bench::account(events, self.d.cycles());
        Ok((self.d.finish(&[]), events, self.fnv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::execute;
    use hard::HardConfig;
    use hard_trace::{ProgramBuilder, SchedConfig, Scheduler};
    use hard_types::{FaultPlan, SiteId};

    fn racy_trace() -> Trace {
        let mut b = ProgramBuilder::new(2);
        for t in 0..2u32 {
            let tp = b.thread(t);
            for i in 0..400u64 {
                tp.write(Addr(0x1000 + (i % 4) * 32), 4, SiteId(t * 1000 + i as u32))
                    .compute(50);
            }
        }
        Scheduler::new(SchedConfig::default()).run(&b.build())
    }

    #[test]
    fn unlimited_hardened_run_matches_plain_execute() {
        let trace = racy_trace();
        for kind in [
            DetectorKind::hard_default(),
            DetectorKind::lockset_ideal(),
            DetectorKind::hb_default(),
            DetectorKind::hb_ideal(),
        ] {
            let plain = execute(&kind, &trace, &[Addr(0x1000)]);
            let hardened = execute_hardened(&kind, &trace, &[Addr(0x1000)], RunLimits::unlimited());
            let RunOutcome::Ok(run, _) = hardened else {
                panic!("{kind}: hardened run must complete");
            };
            assert_eq!(run.reports, plain.reports, "{kind}");
            assert_eq!(run.meta_lost, plain.meta_lost, "{kind}");
        }
    }

    #[test]
    fn cycle_deadline_times_out_long_runs() {
        let trace = racy_trace();
        let limits = RunLimits {
            max_cycles: Some(100),
            max_events: None,
        };
        let out = execute_hardened(&DetectorKind::hard_default(), &trace, &[], limits);
        let RunOutcome::TimedOut {
            events_done,
            cycles,
        } = out
        else {
            panic!("a 100-cycle budget cannot cover 80 timed accesses");
        };
        assert!(events_done < trace.len() as u64);
        assert!(cycles >= 100);
    }

    #[test]
    fn event_deadline_applies_to_untimed_detectors() {
        let trace = racy_trace();
        let limits = RunLimits {
            max_cycles: None,
            max_events: Some(DEADLINE_STRIDE),
        };
        let out = execute_hardened(&DetectorKind::lockset_ideal(), &trace, &[], limits);
        assert!(out.is_timed_out(), "got {out:?}");
    }

    #[test]
    fn faulted_machines_still_return_structured_outcomes() {
        // A heavy fault plan exercises the degradation paths; the
        // hardened runner must come back with Ok + populated stats,
        // never a propagated panic.
        let trace = racy_trace();
        let cfg = HardConfig::default().with_faults(FaultPlan::uniform(1, 300_000));
        let out = execute_hardened(
            &DetectorKind::Hard(cfg),
            &trace,
            &[Addr(0x1000)],
            RunLimits::unlimited(),
        );
        let RunOutcome::Ok(_, m) = out else {
            panic!("degradation must absorb faults: {out:?}");
        };
        assert!(m.faults.injected() > 0);
    }

    #[test]
    fn completed_runs_carry_resource_metrics() {
        let trace = racy_trace();
        let out = execute_hardened(
            &DetectorKind::hard_default(),
            &trace,
            &[],
            RunLimits::unlimited(),
        );
        let RunOutcome::Ok(_, m) = out else {
            panic!("must complete: {out:?}");
        };
        assert_eq!(m.events, trace.len() as u64);
        assert!(m.cycles > 0, "HARD is the timed detector");
        assert_eq!(m.faults, hard_types::FaultStats::default());
        // The untimed ideal detector reports zero cycles and traffic.
        let out = execute_hardened(
            &DetectorKind::lockset_ideal(),
            &trace,
            &[],
            RunLimits::unlimited(),
        );
        let RunOutcome::Ok(_, m) = out else {
            panic!("must complete")
        };
        assert_eq!((m.cycles, m.meta_broadcasts, m.l2_evictions), (0, 0, 0));
        assert_eq!(m.events, trace.len() as u64);
    }

    #[test]
    fn observed_run_matches_and_records_a_span() {
        use hard_obs::{CounterId, MemoryRecorder, ObsHandle};
        use std::sync::Arc;
        let trace = racy_trace();
        let kind = DetectorKind::hard_default();
        let plain = execute_hardened(&kind, &trace, &[Addr(0x1000)], RunLimits::unlimited());
        let rec = Arc::new(MemoryRecorder::new());
        let obs = ObsHandle::new(rec.clone());
        let observed =
            execute_hardened_observed(&kind, &trace, &[Addr(0x1000)], RunLimits::unlimited(), &obs);
        let (RunOutcome::Ok(a, ma), RunOutcome::Ok(b, mb)) = (&plain, &observed) else {
            panic!("both must complete");
        };
        assert_eq!(a.reports, b.reports, "observability must not perturb");
        assert_eq!(ma, mb);
        let snap = rec.snapshot();
        assert_eq!(snap.counter(CounterId::TraceEvents), trace.len() as u64);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "run:HARD");
        assert_eq!(snap.spans[0].cycles, ma.cycles);
        assert_eq!(snap.spans[0].events, ma.events);
        assert_eq!(snap.counter(CounterId::BroadcastsSent), ma.meta_broadcasts);
    }

    /// Runs `f` under `mode`, then restores whatever mode was
    /// installed. Safe under parallel tests precisely because every
    /// mode is bit-identical — a test racing this one cannot observe a
    /// different outcome, only a different (equally correct) speed.
    fn with_kernel_mode<T>(mode: crate::kernel::KernelMode, f: impl FnOnce() -> T) -> T {
        let before = crate::kernel::installed();
        crate::kernel::install(mode);
        let out = f();
        crate::kernel::install(before);
        out
    }

    #[test]
    fn batch_kernel_mode_is_bit_identical_to_scalar() {
        use crate::kernel::KernelMode;
        let trace = racy_trace();
        let packed = PackedTrace::from_trace(&trace).unwrap();
        let probes = [Addr(0x1000)];
        for kind in [
            DetectorKind::hard_default(),
            DetectorKind::lockset_ideal(),
            DetectorKind::hb_default(),
            DetectorKind::hb_ideal(),
        ] {
            let run = |mode| {
                with_kernel_mode(mode, || {
                    (
                        execute_hardened(&kind, &trace, &probes, RunLimits::unlimited()),
                        execute_hardened_packed(&kind, &packed, &probes, RunLimits::unlimited()),
                    )
                })
            };
            let (s, sp) = run(KernelMode::Scalar);
            for mode in [KernelMode::Batch, KernelMode::Auto] {
                let (b, bp) = run(mode);
                for (scalar, batch) in [(&s, &b), (&sp, &bp)] {
                    let (RunOutcome::Ok(sr, sm), RunOutcome::Ok(br, bm)) = (scalar, batch) else {
                        panic!("{kind}: both kernels must complete");
                    };
                    assert_eq!(sr.reports, br.reports, "{kind}/{mode:?}");
                    assert_eq!(sr.meta_lost, br.meta_lost, "{kind}/{mode:?}");
                    assert_eq!(sm, bm, "{kind}/{mode:?}: metrics must match");
                }
            }
        }
    }

    #[test]
    fn batch_kernel_times_out_at_the_same_event_counts() {
        use crate::kernel::KernelMode;
        let trace = racy_trace();
        for limits in [
            RunLimits {
                max_cycles: None,
                max_events: Some(300),
            },
            RunLimits {
                max_cycles: Some(5_000),
                max_events: None,
            },
        ] {
            let kind = DetectorKind::hard_default();
            let run =
                |mode| with_kernel_mode(mode, || execute_hardened(&kind, &trace, &[], limits));
            let (s, b) = (run(KernelMode::Scalar), run(KernelMode::Batch));
            let (
                RunOutcome::TimedOut {
                    events_done: se,
                    cycles: sc,
                },
                RunOutcome::TimedOut {
                    events_done: be,
                    cycles: bc,
                },
            ) = (&s, &b)
            else {
                panic!("both must time out: {s:?} / {b:?}");
            };
            assert_eq!((se, sc), (be, bc), "identical overshoot required");
        }
    }

    #[test]
    fn streamed_replay_is_kernel_mode_invariant() {
        use crate::kernel::KernelMode;
        use hard_trace::codec;
        let trace = racy_trace();
        let packed = PackedTrace::from_trace(&trace).unwrap();
        let kind = DetectorKind::hard_default();
        let run = |mode| {
            with_kernel_mode(mode, || {
                // Odd chunk size: batch boundaries and chunk boundaries
                // must not need to line up.
                let mut reader =
                    ChunkedReader::spawn(std::io::Cursor::new(packed.bytes().to_vec()), 97);
                execute_streamed(&kind, trace.num_threads, &mut reader).unwrap()
            })
        };
        let (sr, se, sf) = run(KernelMode::Scalar);
        let (br, be, bf) = run(KernelMode::Batch);
        assert_eq!(sr.reports, br.reports);
        assert_eq!((se, sf), (be, bf), "event count and FNV must match");
        assert_eq!(sf, codec::fnv1a_update(codec::FNV1A_INIT, packed.bytes()));
    }

    #[test]
    fn stream_feeder_matches_execute_streamed_for_any_chunking() {
        use crate::kernel::KernelMode;
        let trace = racy_trace();
        let packed = PackedTrace::from_trace(&trace).unwrap();
        for kind in [DetectorKind::hard_default(), DetectorKind::lockset_ideal()] {
            for mode in [KernelMode::Scalar, KernelMode::Batch] {
                let expected = with_kernel_mode(mode, || {
                    let mut reader =
                        ChunkedReader::spawn(std::io::Cursor::new(packed.bytes().to_vec()), 97);
                    execute_streamed(&kind, trace.num_threads, &mut reader).unwrap()
                });
                // Chunk sizes that split records mid-way (7, 13), align
                // (16), and straddle batch windows (4095) must all be
                // invisible to the result.
                for chunk in [7usize, 13, 16, 4095] {
                    let got = with_kernel_mode(mode, || {
                        let mut feeder = StreamFeeder::new(&kind, trace.num_threads);
                        for piece in packed.bytes().chunks(chunk) {
                            feeder.feed(piece).unwrap();
                        }
                        feeder.finish().unwrap()
                    });
                    assert_eq!(got.0.reports, expected.0.reports, "{kind} chunk={chunk}");
                    assert_eq!(
                        (got.1, got.2),
                        (expected.1, expected.2),
                        "{kind} chunk={chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn stream_feeder_reports_truncation_like_the_pull_path() {
        let trace = racy_trace();
        let packed = PackedTrace::from_trace(&trace).unwrap();
        let kind = DetectorKind::lockset_ideal();
        let truncated = &packed.bytes()[..packed.bytes().len() - 5];
        let mut feeder = StreamFeeder::new(&kind, trace.num_threads);
        feeder.feed(truncated).unwrap();
        let err = feeder.finish().expect_err("mid-record stream must fail");
        let mut reader = ChunkedReader::spawn(std::io::Cursor::new(truncated.to_vec()), 1 << 14);
        let pull_err = execute_streamed(&kind, trace.num_threads, &mut reader)
            .expect_err("mid-record stream must fail");
        assert_eq!(err, pull_err);
        assert!(err.contains("mid-record"), "{err}");
    }

    #[test]
    fn panics_are_contained_and_reported() {
        let caught = catch_unwind(|| panic!("boom")).is_err();
        assert!(caught);
        // Simulate a faulting detector through the public surface: the
        // closure-level containment is what execute_hardened wraps.
        let out: RunOutcome = match catch_unwind(AssertUnwindSafe(|| -> RunOutcome {
            panic!("injected crash")
        })) {
            Ok(o) => o,
            Err(p) => RunOutcome::Faulted {
                message: p
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .unwrap_or_default(),
            },
        };
        assert!(out.is_faulted());
    }
}
