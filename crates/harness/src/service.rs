//! The client side of the `hard-serve` protocol, plus the report-body
//! codec both sides share.
//!
//! This module lives in the harness (not `crates/serve`) because the
//! dependency arrow points the other way: `hard-serve` depends on the
//! harness for detection, and `hard-exp submit` — the load-test
//! client — is a harness binary that must not depend on the server.
//! The shared vocabulary between them is [`ReportBody`], encoded as a
//! single JSON object via [`hard_obs::jsonl`] (the workspace has no
//! serde; the hand-rolled codec is deliberately tiny and closed).
//!
//! Byte-identity contract: [`ReportBody::notes`] renders exactly the
//! lines `hard-exp replay` prints for the same trace, so CI can `cmp`
//! a served session against an offline replay.
//!
//! # Resilience
//!
//! [`submit_bytes`] is the one-shot client: any network hiccup is the
//! caller's problem. [`submit_bytes_retrying`] wraps it in the chaos
//! campaign's retry discipline — bounded attempts, exponential backoff
//! with seeded jitter, per-attempt connect/read deadlines, and honor
//! for the server's `Busy` retry-after hint. Re-submission is safe
//! because the server keys its report cache on the corpus content
//! hash: a retried upload of the same bytes is answered from cache,
//! not re-detected, so retries cannot change the answer (idempotence).

use hard_obs::jsonl::{self, Json};
use hard_obs::CounterId;
use hard_trace::wire::{
    decode_busy, encode_begin, read_frame, read_handshake, split_traced, write_frame,
    write_handshake, Frame, FrameKind, WireError, MAX_FRAME_BYTES,
};
use hard_trace::RaceReport;
use hard_types::{AccessKind, Addr, SiteId, ThreadId, Xoshiro256};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One detection session's result, as carried by a `Report` frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportBody {
    /// Detector label the session ran under (e.g. `HARD`).
    pub label: String,
    /// Events replayed.
    pub events: u64,
    /// The race reports, in detection order.
    pub reports: Vec<RaceReport>,
}

impl ReportBody {
    /// Encodes the body as one deterministic JSON object. Key order is
    /// fixed by construction, so equal bodies encode to equal bytes —
    /// the property the serve report cache and the byte-identity tests
    /// rely on.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64 + self.reports.len() * 96);
        out.push_str("{\"label\":\"");
        out.push_str(&jsonl::escape(&self.label));
        out.push_str("\",\"events\":");
        out.push_str(&self.events.to_string());
        out.push_str(",\"reports\":[");
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"addr\":{},\"size\":{},\"site\":{},\"thread\":{},\"kind\":\"{}\",\"event\":{}}}",
                r.addr.0,
                r.size,
                r.site.0,
                r.thread.0,
                match r.kind {
                    AccessKind::Read => "read",
                    AccessKind::Write => "write",
                },
                r.event_index
            ));
        }
        out.push_str("]}");
        out
    }

    /// Decodes a `Report` frame payload.
    ///
    /// # Errors
    ///
    /// Describes the first missing or ill-typed field.
    pub fn decode(body: &str) -> Result<ReportBody, String> {
        let v = jsonl::parse(body)?;
        let label = v
            .get("label")
            .and_then(Json::as_str)
            .ok_or("report body missing string `label`")?
            .to_string();
        let events = v
            .get("events")
            .and_then(Json::as_u64)
            .ok_or("report body missing u64 `events`")?;
        let Some(Json::Arr(raw)) = v.get("reports") else {
            return Err("report body missing array `reports`".into());
        };
        let field = |r: &Json, k: &str| -> Result<u64, String> {
            r.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("race entry missing u64 `{k}`"))
        };
        let mut reports = Vec::with_capacity(raw.len());
        for r in raw {
            let kind = match r.get("kind").and_then(Json::as_str) {
                Some("read") => AccessKind::Read,
                Some("write") => AccessKind::Write,
                other => return Err(format!("race entry has bad `kind`: {other:?}")),
            };
            reports.push(RaceReport {
                addr: Addr(field(r, "addr")?),
                size: u8::try_from(field(r, "size")?).map_err(|_| "race `size` exceeds u8")?,
                site: SiteId(
                    u32::try_from(field(r, "site")?).map_err(|_| "race `site` exceeds u32")?,
                ),
                thread: ThreadId(
                    u32::try_from(field(r, "thread")?).map_err(|_| "race `thread` exceeds u32")?,
                ),
                kind,
                event_index: usize::try_from(field(r, "event")?)
                    .map_err(|_| "race `event` exceeds usize")?,
            });
        }
        Ok(ReportBody {
            label,
            events,
            reports,
        })
    }

    /// Renders the body as the exact note lines `hard-exp replay`
    /// prints: the summary line, up to 20 report lines, and a `...`
    /// overflow line. Both the `replay` and `submit` subcommands print
    /// through this, which is what makes their outputs comparable
    /// byte for byte.
    #[must_use]
    pub fn notes(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(2 + self.reports.len().min(20));
        out.push(format!(
            "replayed {} events through {}: {} report(s)",
            self.events,
            self.label,
            self.reports.len()
        ));
        for r in self.reports.iter().take(20) {
            out.push(format!("  {r}"));
        }
        if self.reports.len() > 20 {
            out.push(format!("  ... and {} more", self.reports.len() - 20));
        }
        out
    }
}

/// What the server answered a submission with. Every variant carries
/// the session trace ID the server echoed (`None` when talking to a
/// pre-tracing server or when the response predates the session).
#[derive(Clone, Debug)]
pub enum Submission {
    /// A completed session.
    Report {
        /// The decoded report.
        body: ReportBody,
        /// The echoed session trace ID.
        trace: Option<u64>,
    },
    /// A client-visible error frame (the session failed server-side).
    ServerError {
        /// The server's error message.
        message: String,
        /// The echoed session trace ID.
        trace: Option<u64>,
    },
    /// The server shed the session under overload; retry after the
    /// hinted delay.
    Busy {
        /// The server's retry-after hint, when it sent one.
        retry_after: Option<Duration>,
        /// Human-readable shed reason.
        message: String,
        /// The echoed session trace ID.
        trace: Option<u64>,
    },
}

impl Submission {
    /// The session trace ID the server echoed, whatever the verdict.
    #[must_use]
    pub fn trace(&self) -> Option<u64> {
        match self {
            Submission::Report { trace, .. }
            | Submission::ServerError { trace, .. }
            | Submission::Busy { trace, .. } => *trace,
        }
    }
}

/// Submits the `HARDCRP1` corpus file at `path` to a `hard-serve`
/// instance at `addr` and returns its answer. `detector` is a name
/// accepted by [`crate::DetectorKind::parse`]; `chunk` bounds the Data
/// frame size (the server reassembles, so any chunking is valid — the
/// load tester uses small chunks to exercise reassembly).
///
/// # Errors
///
/// Connection, wire, and malformed-response errors, each naming the
/// failing stage.
pub fn submit_file(
    addr: &str,
    path: &std::path::Path,
    detector: &str,
    chunk: usize,
) -> Result<Submission, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    submit_bytes(addr, &bytes, detector, chunk)
}

/// [`submit_file`] over in-memory corpus bytes, with no deadlines and
/// no retries — any failure is returned to the caller on the first
/// occurrence. See [`submit_bytes_retrying`] for the resilient client.
///
/// # Errors
///
/// Connection, wire, and malformed-response errors.
pub fn submit_bytes(
    addr: &str,
    corpus: &[u8],
    detector: &str,
    chunk: usize,
) -> Result<Submission, String> {
    let stream = connect(addr, None)?;
    submit_on(stream, corpus, detector, chunk, None)
}

/// [`submit_bytes`] carrying a client-generated session trace ID in
/// the `Begin` frame. The server adopts it, tags every span and log
/// line for the session with it, and echoes it on the response — the
/// handle a campaign uses to join client-side and server-side views of
/// one session.
///
/// # Errors
///
/// Connection, wire, and malformed-response errors.
pub fn submit_bytes_traced(
    addr: &str,
    corpus: &[u8],
    detector: &str,
    chunk: usize,
    trace: u64,
) -> Result<Submission, String> {
    let stream = connect(addr, None)?;
    submit_on(stream, corpus, detector, chunk, Some(trace))
}

/// One submission attempt over an already-connected stream.
fn submit_on(
    stream: TcpStream,
    corpus: &[u8],
    detector: &str,
    chunk: usize,
    trace: Option<u64>,
) -> Result<Submission, String> {
    let mut w = BufWriter::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?,
    );
    let mut r = BufReader::new(stream);
    write_handshake(&mut w).map_err(|e| format!("handshake send: {e}"))?;
    w.flush().map_err(|e| format!("handshake send: {e}"))?;
    read_handshake(&mut r).map_err(|e| format!("handshake recv: {e}"))?;
    let upload = (|| {
        write_frame(&mut w, FrameKind::Begin, &encode_begin(detector, trace))
            .map_err(|e| format!("Begin send: {e}"))?;
        for piece in corpus.chunks(chunk.max(1)) {
            write_frame(&mut w, FrameKind::Data, piece).map_err(|e| format!("Data send: {e}"))?;
        }
        write_frame(&mut w, FrameKind::End, &[]).map_err(|e| format!("End send: {e}"))?;
        // The upload sits in the BufWriter until flushed; without this
        // the client deadlocks against the server waiting for the End
        // frame.
        w.flush().map_err(|e| format!("End send: {e}"))
    })();
    if let Err(send_err) = upload {
        // A shedding server answers (Busy/Error) and closes without
        // reading the upload, so the write side can fail before the
        // answer is seen. Prefer the server's explicit verdict over
        // the raw reset when one is on the socket.
        match read_response(&mut r) {
            Ok(frame) => return decode_response(&frame),
            Err(_) => return Err(send_err),
        }
    }
    let frame = read_response(&mut r).map_err(|e| format!("response recv: {e}"))?;
    decode_response(&frame)
}

/// Maps a response frame to a [`Submission`], splitting the server's
/// `trace=<16hex>;` echo prefix off the payload first. The remaining
/// body is byte-identical to what a pre-tracing server sent, which is
/// what keeps served reports comparable to offline replays.
pub(crate) fn decode_response(frame: &Frame) -> Result<Submission, String> {
    let (trace, body) = split_traced(&frame.payload);
    match frame.kind {
        FrameKind::Report => ReportBody::decode(&String::from_utf8_lossy(body))
            .map(|b| Submission::Report { body: b, trace }),
        FrameKind::Error => Ok(Submission::ServerError {
            message: String::from_utf8_lossy(body).into_owned(),
            trace,
        }),
        FrameKind::Busy => {
            let (hint_ms, message) = decode_busy(body);
            Ok(Submission::Busy {
                retry_after: hint_ms.map(Duration::from_millis),
                message,
                trace,
            })
        }
        other => Err(format!("unexpected response frame {other:?}")),
    }
}

/// Connects to `addr`, optionally bounding the connect and every
/// subsequent read/write by the policy's deadlines.
fn connect(addr: &str, deadlines: Option<(Duration, Duration)>) -> Result<TcpStream, String> {
    let stream = match deadlines {
        None => TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?,
        Some((connect_timeout, io_timeout)) => {
            let sock = addr
                .to_socket_addrs()
                .map_err(|e| format!("cannot resolve {addr}: {e}"))?
                .next()
                .ok_or_else(|| format!("{addr} resolves to no address"))?;
            let stream = TcpStream::connect_timeout(&sock, connect_timeout)
                .map_err(|e| format!("cannot connect {addr}: {e}"))?;
            stream
                .set_read_timeout(Some(io_timeout))
                .map_err(|e| format!("cannot set read deadline: {e}"))?;
            stream
                .set_write_timeout(Some(io_timeout))
                .map_err(|e| format!("cannot set write deadline: {e}"))?;
            stream
        }
    };
    Ok(stream)
}

/// Retry discipline for [`submit_bytes_retrying`]: bounded attempts,
/// exponential backoff with seeded jitter, per-attempt deadlines.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts before giving up (at least one).
    pub max_attempts: u32,
    /// Backoff before attempt `n + 1` is `base_delay * 2^(n-1)`
    /// (capped at [`max_delay`](RetryPolicy::max_delay)), plus jitter.
    pub base_delay: Duration,
    /// Upper bound on a single backoff sleep (pre-jitter).
    pub max_delay: Duration,
    /// Seeds the jitter stream so a campaign's sleep schedule is
    /// reproducible. Jitter is uniform in `[0, base_delay)`.
    pub jitter_seed: u64,
    /// Per-attempt TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-attempt read/write deadline (covers the whole upload and
    /// the wait for the server's answer, one operation at a time).
    pub io_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0,
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// What a retrying submission went through on the way to its answer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Attempts answered with a `Busy` shed.
    pub busy: u32,
    /// Attempts that died on connect, I/O, or wire errors.
    pub io_errors: u32,
    /// Attempts answered with a server `Error` frame (under fault
    /// injection these are usually transit corruption the corpus
    /// checksums caught, so they are retried like I/O errors).
    pub server_errors: u32,
}

/// Submits `corpus` with retries per `policy` and returns the final
/// answer plus the attempt log.
///
/// Every failure class is retried — `Busy` sheds (honoring the
/// server's retry-after hint when it exceeds the backoff), I/O and
/// wire errors, and server `Error` frames, which under network fault
/// injection are usually the server correctly refusing a corrupted
/// upload. Re-submission is idempotent: the server's report cache is
/// keyed on the corpus content hash, so a duplicate of an
/// already-answered upload returns the cached bytes.
///
/// Each attempt after the first bumps the
/// `hard_serve_retry_attempts_total` counter; exhausting the budget
/// bumps `hard_serve_retry_exhausted_total`.
///
/// # Errors
///
/// The final attempt's error, annotated with the attempt count, when
/// the budget is exhausted without a `Report` or terminal answer.
pub fn submit_bytes_retrying(
    addr: &str,
    corpus: &[u8],
    detector: &str,
    chunk: usize,
    policy: &RetryPolicy,
) -> (Result<Submission, String>, RetryStats) {
    submit_retrying_inner(addr, corpus, detector, chunk, policy, None)
}

/// [`submit_bytes_retrying`] carrying a client-generated session trace
/// ID on every attempt (see [`submit_bytes_traced`]). All attempts of
/// one logical submission share the ID, so the server-side timeline
/// shows the retries as one session told several times.
pub fn submit_bytes_retrying_traced(
    addr: &str,
    corpus: &[u8],
    detector: &str,
    chunk: usize,
    policy: &RetryPolicy,
    trace: u64,
) -> (Result<Submission, String>, RetryStats) {
    submit_retrying_inner(addr, corpus, detector, chunk, policy, Some(trace))
}

fn submit_retrying_inner(
    addr: &str,
    corpus: &[u8],
    detector: &str,
    chunk: usize,
    policy: &RetryPolicy,
    trace: Option<u64>,
) -> (Result<Submission, String>, RetryStats) {
    let obs = hard_obs::installed();
    let mut jitter = Xoshiro256::seed_from_u64(policy.jitter_seed);
    let mut stats = RetryStats::default();
    let max_attempts = policy.max_attempts.max(1);
    let mut last: Result<Submission, String> = Err("no attempt made".into());
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            obs.counter(CounterId::ServeRetryAttempts, 1);
        }
        stats.attempts = attempt;
        let outcome = connect(addr, Some((policy.connect_timeout, policy.io_timeout)))
            .and_then(|stream| submit_on(stream, corpus, detector, chunk, trace));
        let retry_hint = match &outcome {
            Ok(Submission::Report { .. }) => return (outcome, stats),
            Ok(Submission::Busy { retry_after, .. }) => {
                stats.busy += 1;
                *retry_after
            }
            Ok(Submission::ServerError { .. }) => {
                stats.server_errors += 1;
                None
            }
            Err(_) => {
                stats.io_errors += 1;
                None
            }
        };
        last = outcome;
        if attempt < max_attempts {
            std::thread::sleep(backoff(policy, attempt, retry_hint, &mut jitter));
        }
    }
    obs.counter(CounterId::ServeRetryExhausted, 1);
    (
        last.map_err(|e| format!("{e} (after {} attempts)", stats.attempts)),
        stats,
    )
}

/// The sleep before attempt `attempt + 1`: exponential backoff with
/// seeded jitter, never shorter than the server's retry-after hint.
fn backoff(
    policy: &RetryPolicy,
    attempt: u32,
    hint: Option<Duration>,
    jitter: &mut Xoshiro256,
) -> Duration {
    let exp = policy
        .base_delay
        .saturating_mul(1u32 << (attempt - 1).min(16))
        .min(policy.max_delay);
    let jitter_ns = policy.base_delay.as_nanos().min(u128::from(u64::MAX)) as u64;
    let extra = if jitter_ns == 0 {
        Duration::ZERO
    } else {
        Duration::from_nanos(jitter.gen_range(jitter_ns))
    };
    exp.max(hint.unwrap_or(Duration::ZERO)) + extra
}

/// A point-in-time view of the server's admission state, as carried by
/// a `Healthy` frame. Doubles as the chaos campaign's leak detector:
/// after drain, `active_sessions` and `inflight_bytes` must be zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Sessions currently holding a slot.
    pub active_sessions: u64,
    /// The slot limit.
    pub max_sessions: u64,
    /// Upload bytes currently buffered across all sessions.
    pub inflight_bytes: u64,
    /// The in-flight byte budget.
    pub max_inflight_bytes: u64,
    /// Detection jobs queued or running in the worker pool.
    pub pool_load: u64,
    /// The pool's job capacity (workers + queue depth).
    pub pool_capacity: u64,
    /// False when the server would currently shed a new session.
    pub ready: bool,
}

impl HealthSnapshot {
    /// Decodes a `Healthy` frame payload.
    ///
    /// # Errors
    ///
    /// Describes the first missing or ill-typed field.
    pub fn decode(body: &str) -> Result<HealthSnapshot, String> {
        let v = jsonl::parse(body)?;
        let field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("health snapshot missing u64 `{k}`"))
        };
        let ready = match v.get("ready") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("health snapshot missing bool `ready`".into()),
        };
        Ok(HealthSnapshot {
            active_sessions: field("active_sessions")?,
            max_sessions: field("max_sessions")?,
            inflight_bytes: field("inflight_bytes")?,
            max_inflight_bytes: field("max_inflight_bytes")?,
            pool_load: field("pool_load")?,
            pool_capacity: field("pool_capacity")?,
            ready,
        })
    }
}

/// Asks the `hard-serve` instance at `addr` for its readiness
/// snapshot via a `Health` probe frame.
///
/// # Errors
///
/// Connection, wire, and malformed-response errors.
pub fn probe_health(addr: &str, io_timeout: Duration) -> Result<HealthSnapshot, String> {
    let stream = connect(addr, Some((io_timeout, io_timeout)))?;
    let mut w = BufWriter::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?,
    );
    let mut r = BufReader::new(stream);
    write_handshake(&mut w).map_err(|e| format!("handshake send: {e}"))?;
    w.flush().map_err(|e| format!("handshake send: {e}"))?;
    read_handshake(&mut r).map_err(|e| format!("handshake recv: {e}"))?;
    write_frame(&mut w, FrameKind::Health, &[]).map_err(|e| format!("Health send: {e}"))?;
    w.flush().map_err(|e| format!("Health send: {e}"))?;
    let frame = read_response(&mut r).map_err(|e| format!("health recv: {e}"))?;
    match frame.kind {
        FrameKind::Healthy => HealthSnapshot::decode(&frame.text()),
        FrameKind::Error => Err(format!("server refused probe: {}", frame.text())),
        other => Err(format!("unexpected health response {other:?}")),
    }
}

/// Asks the `hard-serve` instance at `addr` to drain and exit.
///
/// # Errors
///
/// Connection and wire errors; a server that closes the connection
/// without a `Bye` (already shutting down) is not an error.
pub fn request_shutdown(addr: &str) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let mut w = BufWriter::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?,
    );
    let mut r = BufReader::new(stream);
    write_handshake(&mut w).map_err(|e| format!("handshake send: {e}"))?;
    w.flush().map_err(|e| format!("handshake send: {e}"))?;
    read_handshake(&mut r).map_err(|e| format!("handshake recv: {e}"))?;
    write_frame(&mut w, FrameKind::Shutdown, &[]).map_err(|e| format!("Shutdown send: {e}"))?;
    w.flush().map_err(|e| format!("Shutdown send: {e}"))?;
    match read_frame(&mut r, MAX_FRAME_BYTES) {
        Ok(f) if f.kind == FrameKind::Bye => Ok(()),
        Ok(f) => Err(format!("unexpected shutdown response {:?}", f.kind)),
        Err(WireError::Io(_)) => Ok(()), // connection already torn down
        Err(e) => Err(format!("shutdown recv: {e}")),
    }
}

fn read_response(r: &mut impl Read) -> Result<Frame, WireError> {
    read_frame(r, MAX_FRAME_BYTES)
}

/// Writes one frame to any sink — re-exported for the server, which
/// shares this module's framing discipline.
///
/// # Errors
///
/// Propagates wire errors.
pub fn send_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    write_frame(w, kind, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> ReportBody {
        ReportBody {
            label: "HARD".into(),
            events: 1234,
            reports: vec![
                RaceReport {
                    addr: Addr(0x1000),
                    size: 4,
                    site: SiteId(9),
                    thread: ThreadId(1),
                    kind: AccessKind::Write,
                    event_index: 77,
                },
                RaceReport {
                    addr: Addr(0x2000),
                    size: 8,
                    site: SiteId(12),
                    thread: ThreadId(3),
                    kind: AccessKind::Read,
                    event_index: 901,
                },
            ],
        }
    }

    #[test]
    fn report_body_round_trips() {
        let b = body();
        let enc = b.encode();
        assert_eq!(ReportBody::decode(&enc).unwrap(), b);
        // Determinism: encoding is a pure function of the body.
        assert_eq!(enc, body().encode());
    }

    #[test]
    fn notes_match_the_replay_format() {
        let b = body();
        let notes = b.notes();
        assert_eq!(notes[0], "replayed 1234 events through HARD: 2 report(s)");
        assert_eq!(notes[1], format!("  {}", b.reports[0]));
        assert_eq!(notes.len(), 3);
    }

    #[test]
    fn notes_overflow_past_twenty_reports() {
        let mut b = body();
        let template = b.reports[0];
        b.reports = (0..25)
            .map(|i| RaceReport {
                event_index: i,
                ..template
            })
            .collect();
        let notes = b.notes();
        assert_eq!(notes.len(), 1 + 20 + 1);
        assert_eq!(notes.last().unwrap(), "  ... and 5 more");
    }

    #[test]
    fn decode_rejects_malformed_bodies() {
        assert!(ReportBody::decode("not json").is_err());
        assert!(ReportBody::decode("{}").is_err());
        assert!(ReportBody::decode("{\"label\":\"x\",\"events\":1}").is_err());
        assert!(
            ReportBody::decode("{\"label\":\"x\",\"events\":1,\"reports\":[{\"addr\":1}]}")
                .is_err()
        );
        assert!(ReportBody::decode(
            "{\"label\":\"x\",\"events\":1,\"reports\":[{\"addr\":1,\"size\":4,\"site\":2,\
             \"thread\":0,\"kind\":\"neither\",\"event\":0}]}"
        )
        .is_err());
    }

    #[test]
    fn health_snapshot_decode_round_trips() {
        let body = "{\"active_sessions\":3,\"max_sessions\":64,\"inflight_bytes\":1024,\
                    \"max_inflight_bytes\":268435456,\"pool_load\":2,\"pool_capacity\":12,\
                    \"ready\":true}";
        let snap = HealthSnapshot::decode(body).unwrap();
        assert_eq!(snap.active_sessions, 3);
        assert_eq!(snap.max_sessions, 64);
        assert_eq!(snap.pool_capacity, 12);
        assert!(snap.ready);
        assert!(HealthSnapshot::decode("{}").is_err());
        assert!(HealthSnapshot::decode("{\"active_sessions\":1}").is_err());
    }

    #[test]
    fn backoff_grows_caps_and_honors_the_hint() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        let mut j = Xoshiro256::seed_from_u64(1);
        let jitter_bound = policy.base_delay;
        let b1 = backoff(&policy, 1, None, &mut j);
        let b4 = backoff(&policy, 4, None, &mut j);
        let b9 = backoff(&policy, 9, None, &mut j);
        assert!(b1 >= Duration::from_millis(10) && b1 < Duration::from_millis(10) + jitter_bound);
        assert!(b4 >= Duration::from_millis(80) && b4 < Duration::from_millis(80) + jitter_bound);
        // Capped at max_delay (pre-jitter) even for huge exponents.
        assert!(b9 >= Duration::from_millis(100) && b9 < Duration::from_millis(100) + jitter_bound);
        // A server hint longer than the backoff wins.
        let hinted = backoff(&policy, 1, Some(Duration::from_millis(500)), &mut j);
        assert!(hinted >= Duration::from_millis(500));
    }

    #[test]
    fn backoff_jitter_is_seeded() {
        let policy = RetryPolicy::default();
        let run = |seed| {
            let mut j = Xoshiro256::seed_from_u64(seed);
            (1..6)
                .map(|a| backoff(&policy, a, None, &mut j))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn retrying_submit_gives_up_with_attempt_count() {
        // Nothing listens on this address (port 1 is never bound in the
        // test environment); every attempt must fail fast on connect.
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            connect_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        let (result, stats) = submit_bytes_retrying("127.0.0.1:1", b"x", "hard", 64, &policy);
        let err = result.unwrap_err();
        assert!(err.contains("after 3 attempts"), "{err}");
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.io_errors, 3);
        assert_eq!(stats.busy, 0);
    }

    #[test]
    fn empty_report_list_encodes_cleanly() {
        let b = ReportBody {
            label: "HB".into(),
            events: 0,
            reports: Vec::new(),
        };
        assert_eq!(b.encode(), "{\"label\":\"HB\",\"events\":0,\"reports\":[]}");
        assert_eq!(ReportBody::decode(&b.encode()).unwrap(), b);
    }
}
