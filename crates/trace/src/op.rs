//! Program-level operations.

use hard_types::{AccessKind, Addr, BarrierId, LockId, SiteId, ThreadId};
use std::fmt;

/// One operation of a simulated thread.
///
/// Memory accesses carry a byte size (1–8; SPLASH-2 data are word/
/// double-word accesses) and every operation that corresponds to a
/// program statement carries the static [`SiteId`] of that statement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// A load of `size` bytes at `addr`.
    Read {
        /// First byte of the accessed range.
        addr: Addr,
        /// Access width in bytes (1–8).
        size: u8,
        /// Static site of the load statement.
        site: SiteId,
    },
    /// A store of `size` bytes at `addr`.
    Write {
        /// First byte of the accessed range.
        addr: Addr,
        /// Access width in bytes (1–8).
        size: u8,
        /// Static site of the store statement.
        site: SiteId,
    },
    /// Acquire `lock` (blocks while another thread holds it).
    Lock {
        /// The lock being acquired.
        lock: LockId,
        /// Static site of the acquire statement.
        site: SiteId,
    },
    /// Release `lock`.
    Unlock {
        /// The lock being released.
        lock: LockId,
        /// Static site of the release statement.
        site: SiteId,
    },
    /// Arrive at `barrier` and wait for all threads.
    Barrier {
        /// The barrier being arrived at.
        barrier: BarrierId,
        /// Static site of the barrier statement.
        site: SiteId,
    },
    /// Spawn `child`, which must not have started yet. The child's
    /// program begins executing after this event.
    Fork {
        /// The spawned thread.
        child: ThreadId,
        /// Static site of the fork statement.
        site: SiteId,
    },
    /// Wait for `child` to finish its program.
    Join {
        /// The thread being joined.
        child: ThreadId,
        /// Static site of the join statement.
        site: SiteId,
    },
    /// `cycles` of private computation (no memory traffic); consumed by
    /// the timing model only.
    Compute {
        /// Simulated cycle count.
        cycles: u32,
    },
}

impl Op {
    /// The static site, if the operation has one.
    #[must_use]
    pub fn site(&self) -> Option<SiteId> {
        match *self {
            Op::Read { site, .. }
            | Op::Write { site, .. }
            | Op::Lock { site, .. }
            | Op::Unlock { site, .. }
            | Op::Barrier { site, .. }
            | Op::Fork { site, .. }
            | Op::Join { site, .. } => Some(site),
            Op::Compute { .. } => None,
        }
    }

    /// For memory accesses, the `(addr, size, kind, site)` tuple.
    #[must_use]
    pub fn as_access(&self) -> Option<(Addr, u8, AccessKind, SiteId)> {
        match *self {
            Op::Read { addr, size, site } => Some((addr, size, AccessKind::Read, site)),
            Op::Write { addr, size, site } => Some((addr, size, AccessKind::Write, site)),
            _ => None,
        }
    }

    /// True for [`Op::Lock`] and [`Op::Unlock`].
    #[must_use]
    pub fn is_lock_op(&self) -> bool {
        matches!(self, Op::Lock { .. } | Op::Unlock { .. })
    }

    /// True for memory accesses.
    #[must_use]
    pub fn is_access(&self) -> bool {
        matches!(self, Op::Read { .. } | Op::Write { .. })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Read { addr, size, site } => write!(f, "rd {addr}+{size} @{site}"),
            Op::Write { addr, size, site } => write!(f, "wr {addr}+{size} @{site}"),
            Op::Lock { lock, site } => write!(f, "lock {lock} @{site}"),
            Op::Unlock { lock, site } => write!(f, "unlock {lock} @{site}"),
            Op::Barrier { barrier, site } => write!(f, "barrier {barrier} @{site}"),
            Op::Fork { child, site } => write!(f, "fork {child} @{site}"),
            Op::Join { child, site } => write!(f, "join {child} @{site}"),
            Op::Compute { cycles } => write!(f, "compute {cycles}cy"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_extraction() {
        assert_eq!(
            Op::Read {
                addr: Addr(4),
                size: 4,
                site: SiteId(9)
            }
            .site(),
            Some(SiteId(9))
        );
        assert_eq!(Op::Compute { cycles: 10 }.site(), None);
    }

    #[test]
    fn access_extraction() {
        let w = Op::Write {
            addr: Addr(8),
            size: 2,
            site: SiteId(1),
        };
        assert_eq!(
            w.as_access(),
            Some((Addr(8), 2, AccessKind::Write, SiteId(1)))
        );
        assert!(w.is_access());
        let l = Op::Lock {
            lock: LockId(4),
            site: SiteId(2),
        };
        assert_eq!(l.as_access(), None);
        assert!(l.is_lock_op());
        assert!(!l.is_access());
    }

    #[test]
    fn display_is_informative() {
        let op = Op::Barrier {
            barrier: BarrierId(2),
            site: SiteId(3),
        };
        assert_eq!(format!("{op}"), "barrier barrier2 @site3");
    }
}
