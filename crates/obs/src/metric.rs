//! The closed metric taxonomy.
//!
//! Metric identity is a dense enum rather than string keys so the hot
//! path is an array index, never a hash lookup, and so the exposition
//! endpoint can enumerate every metric even when its value is zero.
//! Names follow Prometheus conventions (`_total` suffix on counters)
//! and are part of the repo's documented surface (`DESIGN.md` §6).

/// Monotonic counters incremented by the machines and the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum CounterId {
    /// Per-granule candidate-set evaluations (`lockset_access` calls).
    CandidateChecks,
    /// Evaluations whose candidate intersection emptied — the raw
    /// race signal before site-level deduplication.
    CandidateEmpties,
    /// Deduplicated race reports pushed by a machine.
    RacesReported,
    /// Lock Register acquire operations.
    LockAcquires,
    /// Lock Register release operations.
    LockReleases,
    /// Barrier flash-reset sweeps (§3.5 pruning), one per barrier.
    BarrierResets,
    /// Granules conservatively reset to all-ones after a parity
    /// detection (fault degradation path).
    ConservativeResets,
    /// Lock registers rebuilt from the software shadow.
    RegisterRebuilds,
    /// Piggybacked metadata broadcasts delivered on the bus (§3.4).
    BroadcastsSent,
    /// Broadcasts silently lost to an injected fault.
    BroadcastsDropped,
    /// Broadcasts deferred by an injected fault.
    BroadcastsDelayed,
    /// L1 miss fills (from L2 or memory).
    CacheFills,
    /// L2 evictions (capacity or spurious displacement).
    L2Displacements,
    /// Valid metadata sectors lost to those evictions (§3.6).
    MetaLossLines,
    /// Line refetches that found their metadata previously lost.
    RefetchesAfterLoss,
    /// Trace events dispatched to an observed detector.
    TraceEvents,
    /// Read accesses in the observed trace.
    OpsRead,
    /// Write accesses in the observed trace.
    OpsWrite,
    /// Synchronization events (lock/unlock/fork/join/barrier).
    OpsSync,
    /// Compute delay events.
    OpsCompute,
    /// Races reported by the happens-before assist machine.
    HbRaces,
    /// TCP connections accepted by `hard-serve`.
    ServeConnections,
    /// Detection sessions completed successfully (a `Report` frame was
    /// written).
    ServeSessions,
    /// Sessions that ended in a client-visible `Error` frame (bad
    /// frame, corrupt stream, limit violation, timeout).
    ServeErrors,
    /// Connections refused because the server was at its session or
    /// in-flight byte limit.
    ServeRejected,
    /// Sessions answered from the report cache without running
    /// detection.
    ServeCacheHits,
    /// Payload bytes accepted into sessions (post-framing).
    ServeBytesIn,
    /// Sessions shed with a `Busy` frame instead of being admitted
    /// (queue saturation, session-slot exhaustion, or in-flight byte
    /// budget exhaustion).
    ServeShed,
    /// Health/readiness probe frames answered.
    ServeHealthProbes,
    /// Client-side submit re-attempts (every attempt after the first,
    /// whether provoked by a `Busy` shed, an I/O failure, or a
    /// server-reported session error).
    ServeRetryAttempts,
    /// Client-side submissions that exhausted their retry budget
    /// without a `Report` frame.
    ServeRetryExhausted,
    /// Sheds caused by session-slot exhaustion (a reason breakdown of
    /// [`CounterId::ServeShed`], which stays the total).
    ServeShedSlots,
    /// Sheds caused by in-flight byte-budget exhaustion.
    ServeShedBytes,
    /// Sheds caused by worker-pool saturation or a full submit queue.
    ServeShedQueue,
    /// Sessions whose end-to-end duration crossed the configured
    /// slow-session threshold (`--slow-session-ms`).
    ServeSlowSessions,
}

impl CounterId {
    /// Every counter, in declaration (= index) order.
    pub const ALL: [CounterId; 35] = [
        CounterId::CandidateChecks,
        CounterId::CandidateEmpties,
        CounterId::RacesReported,
        CounterId::LockAcquires,
        CounterId::LockReleases,
        CounterId::BarrierResets,
        CounterId::ConservativeResets,
        CounterId::RegisterRebuilds,
        CounterId::BroadcastsSent,
        CounterId::BroadcastsDropped,
        CounterId::BroadcastsDelayed,
        CounterId::CacheFills,
        CounterId::L2Displacements,
        CounterId::MetaLossLines,
        CounterId::RefetchesAfterLoss,
        CounterId::TraceEvents,
        CounterId::OpsRead,
        CounterId::OpsWrite,
        CounterId::OpsSync,
        CounterId::OpsCompute,
        CounterId::HbRaces,
        CounterId::ServeConnections,
        CounterId::ServeSessions,
        CounterId::ServeErrors,
        CounterId::ServeRejected,
        CounterId::ServeCacheHits,
        CounterId::ServeBytesIn,
        CounterId::ServeShed,
        CounterId::ServeHealthProbes,
        CounterId::ServeRetryAttempts,
        CounterId::ServeRetryExhausted,
        CounterId::ServeShedSlots,
        CounterId::ServeShedBytes,
        CounterId::ServeShedQueue,
        CounterId::ServeSlowSessions,
    ];

    /// Number of counters; sizes the recorder's atomic array.
    pub const COUNT: usize = CounterId::ALL.len();

    /// Dense index for array storage.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable Prometheus-style metric name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::CandidateChecks => "hard_candidate_checks_total",
            CounterId::CandidateEmpties => "hard_candidate_empties_total",
            CounterId::RacesReported => "hard_races_reported_total",
            CounterId::LockAcquires => "hard_lock_acquires_total",
            CounterId::LockReleases => "hard_lock_releases_total",
            CounterId::BarrierResets => "hard_barrier_resets_total",
            CounterId::ConservativeResets => "hard_conservative_resets_total",
            CounterId::RegisterRebuilds => "hard_register_rebuilds_total",
            CounterId::BroadcastsSent => "hard_meta_broadcasts_total",
            CounterId::BroadcastsDropped => "hard_broadcasts_dropped_total",
            CounterId::BroadcastsDelayed => "hard_broadcasts_delayed_total",
            CounterId::CacheFills => "hard_cache_fills_total",
            CounterId::L2Displacements => "hard_l2_displacements_total",
            CounterId::MetaLossLines => "hard_meta_loss_lines_total",
            CounterId::RefetchesAfterLoss => "hard_refetches_after_loss_total",
            CounterId::TraceEvents => "hard_trace_events_total",
            CounterId::OpsRead => "hard_ops_read_total",
            CounterId::OpsWrite => "hard_ops_write_total",
            CounterId::OpsSync => "hard_ops_sync_total",
            CounterId::OpsCompute => "hard_ops_compute_total",
            CounterId::HbRaces => "hard_hb_races_total",
            CounterId::ServeConnections => "hard_serve_connections_total",
            CounterId::ServeSessions => "hard_serve_sessions_total",
            CounterId::ServeErrors => "hard_serve_errors_total",
            CounterId::ServeRejected => "hard_serve_rejected_total",
            CounterId::ServeCacheHits => "hard_serve_cache_hits_total",
            CounterId::ServeBytesIn => "hard_serve_bytes_in_total",
            CounterId::ServeShed => "hard_serve_shed_total",
            CounterId::ServeHealthProbes => "hard_serve_health_probes_total",
            CounterId::ServeRetryAttempts => "hard_serve_retry_attempts_total",
            CounterId::ServeRetryExhausted => "hard_serve_retry_exhausted_total",
            CounterId::ServeShedSlots => "hard_serve_shed_slots_total",
            CounterId::ServeShedBytes => "hard_serve_shed_bytes_total",
            CounterId::ServeShedQueue => "hard_serve_shed_queue_total",
            CounterId::ServeSlowSessions => "hard_serve_slow_sessions_total",
        }
    }

    /// One-line description rendered as the `# HELP` comment.
    #[must_use]
    pub const fn help(self) -> &'static str {
        match self {
            CounterId::CandidateChecks => "Per-granule candidate-set evaluations.",
            CounterId::CandidateEmpties => "Candidate intersections that emptied.",
            CounterId::RacesReported => "Deduplicated race reports.",
            CounterId::LockAcquires => "Lock Register acquire operations.",
            CounterId::LockReleases => "Lock Register release operations.",
            CounterId::BarrierResets => "Barrier flash-reset sweeps.",
            CounterId::ConservativeResets => "Granules conservatively reset after parity faults.",
            CounterId::RegisterRebuilds => "Lock registers rebuilt from the software shadow.",
            CounterId::BroadcastsSent => "Piggybacked metadata broadcasts delivered.",
            CounterId::BroadcastsDropped => "Broadcasts lost to injected faults.",
            CounterId::BroadcastsDelayed => "Broadcasts deferred by injected faults.",
            CounterId::CacheFills => "L1 miss fills.",
            CounterId::L2Displacements => "L2 evictions.",
            CounterId::MetaLossLines => "Valid metadata sectors lost to evictions.",
            CounterId::RefetchesAfterLoss => "Refetches that found metadata previously lost.",
            CounterId::TraceEvents => "Trace events dispatched to an observed detector.",
            CounterId::OpsRead => "Read accesses in the observed trace.",
            CounterId::OpsWrite => "Write accesses in the observed trace.",
            CounterId::OpsSync => "Synchronization events in the observed trace.",
            CounterId::OpsCompute => "Compute delay events in the observed trace.",
            CounterId::HbRaces => "Races reported by the happens-before assist.",
            CounterId::ServeConnections => "TCP connections accepted by hard-serve.",
            CounterId::ServeSessions => "Detection sessions completed with a Report frame.",
            CounterId::ServeErrors => "Sessions ended by a client-visible Error frame.",
            CounterId::ServeRejected => "Connections refused at a hard limit.",
            CounterId::ServeCacheHits => "Sessions answered from the report cache.",
            CounterId::ServeBytesIn => "Payload bytes accepted into sessions.",
            CounterId::ServeShed => "Sessions shed with a Busy frame (all reasons).",
            CounterId::ServeHealthProbes => "Health/readiness probes answered.",
            CounterId::ServeRetryAttempts => "Client submit re-attempts after the first.",
            CounterId::ServeRetryExhausted => "Client submissions that exhausted retries.",
            CounterId::ServeShedSlots => "Sheds due to session-slot exhaustion.",
            CounterId::ServeShedBytes => "Sheds due to the in-flight byte budget.",
            CounterId::ServeShedQueue => "Sheds due to pool saturation or a full queue.",
            CounterId::ServeSlowSessions => "Sessions over the slow-session threshold.",
        }
    }
}

/// Instantaneous-value gauges (can go up and down, unlike counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum GaugeId {
    /// Sessions currently admitted and not yet closed.
    ServeActiveSessions,
    /// Payload bytes currently buffered across open sessions.
    ServeInflightBytes,
    /// Jobs currently queued or running in the detection worker pool.
    ServeQueueDepth,
    /// Worker-pool slots currently occupied.
    ServeBusyWorkers,
}

impl GaugeId {
    /// Every gauge, in declaration (= index) order.
    pub const ALL: [GaugeId; 4] = [
        GaugeId::ServeActiveSessions,
        GaugeId::ServeInflightBytes,
        GaugeId::ServeQueueDepth,
        GaugeId::ServeBusyWorkers,
    ];

    /// Number of gauges; sizes the recorder's atomic array.
    pub const COUNT: usize = GaugeId::ALL.len();

    /// Dense index for array storage.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable Prometheus-style metric name (no `_total` suffix —
    /// gauges are not monotonic).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            GaugeId::ServeActiveSessions => "hard_serve_active_sessions",
            GaugeId::ServeInflightBytes => "hard_serve_inflight_bytes",
            GaugeId::ServeQueueDepth => "hard_serve_queue_depth",
            GaugeId::ServeBusyWorkers => "hard_serve_busy_workers",
        }
    }

    /// One-line description rendered as the `# HELP` comment.
    #[must_use]
    pub const fn help(self) -> &'static str {
        match self {
            GaugeId::ServeActiveSessions => "Sessions currently open.",
            GaugeId::ServeInflightBytes => "Payload bytes currently buffered.",
            GaugeId::ServeQueueDepth => "Jobs queued or running in the worker pool.",
            GaugeId::ServeBusyWorkers => "Worker slots currently occupied.",
        }
    }
}

/// Value-distribution histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum HistId {
    /// Bloom candidate-vector population (set bits) observed at each
    /// candidate check — the paper's filter-saturation signal.
    BloomPopulation,
    /// Lock Register nesting depth after each lock operation.
    LockDepth,
    /// Events per completed `hard-serve` detection session.
    ServeSessionEvents,
    /// Handshake stage latency (µs): accept to magic exchange done.
    ServeStageHandshakeUs,
    /// Upload stage latency (µs): `Begin` to the final `End` frame.
    ServeStageUploadUs,
    /// Queue-wait stage latency (µs): pool submit to job start.
    ServeStageQueueWaitUs,
    /// Detect stage latency (µs): streamed detection proper.
    ServeStageDetectUs,
    /// Render stage latency (µs): report encoding.
    ServeStageRenderUs,
    /// Flush stage latency (µs): `Report` frame write + flush.
    ServeStageFlushUs,
}

/// Shared bucket bounds for the per-stage latency histograms, in
/// microseconds: 50µs to 5s, roughly logarithmic.
const STAGE_US_BOUNDS: &[u64] = &[
    0, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

impl HistId {
    /// Every histogram, in declaration (= index) order.
    pub const ALL: [HistId; 9] = [
        HistId::BloomPopulation,
        HistId::LockDepth,
        HistId::ServeSessionEvents,
        HistId::ServeStageHandshakeUs,
        HistId::ServeStageUploadUs,
        HistId::ServeStageQueueWaitUs,
        HistId::ServeStageDetectUs,
        HistId::ServeStageRenderUs,
        HistId::ServeStageFlushUs,
    ];

    /// Number of histograms; sizes the recorder's cell array.
    pub const COUNT: usize = HistId::ALL.len();

    /// Dense index for array storage.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable Prometheus-style metric name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            HistId::BloomPopulation => "hard_bloom_population_bits",
            HistId::LockDepth => "hard_lock_depth",
            HistId::ServeSessionEvents => "hard_serve_session_events",
            HistId::ServeStageHandshakeUs => "hard_serve_stage_handshake_us",
            HistId::ServeStageUploadUs => "hard_serve_stage_upload_us",
            HistId::ServeStageQueueWaitUs => "hard_serve_stage_queue_wait_us",
            HistId::ServeStageDetectUs => "hard_serve_stage_detect_us",
            HistId::ServeStageRenderUs => "hard_serve_stage_render_us",
            HistId::ServeStageFlushUs => "hard_serve_stage_flush_us",
        }
    }

    /// One-line description rendered as the `# HELP` comment.
    #[must_use]
    pub const fn help(self) -> &'static str {
        match self {
            HistId::BloomPopulation => "Bloom candidate-vector population at each check.",
            HistId::LockDepth => "Lock Register nesting depth after each lock op.",
            HistId::ServeSessionEvents => "Events per completed detection session.",
            HistId::ServeStageHandshakeUs => "Handshake stage latency in microseconds.",
            HistId::ServeStageUploadUs => "Upload stage latency in microseconds.",
            HistId::ServeStageQueueWaitUs => "Queue-wait stage latency in microseconds.",
            HistId::ServeStageDetectUs => "Detect stage latency in microseconds.",
            HistId::ServeStageRenderUs => "Render stage latency in microseconds.",
            HistId::ServeStageFlushUs => "Flush stage latency in microseconds.",
        }
    }

    /// The serve-path stage histograms, in pipeline order — the rows
    /// of the `obs-serve` latency table.
    pub const STAGES: [HistId; 6] = [
        HistId::ServeStageHandshakeUs,
        HistId::ServeStageUploadUs,
        HistId::ServeStageQueueWaitUs,
        HistId::ServeStageDetectUs,
        HistId::ServeStageRenderUs,
        HistId::ServeStageFlushUs,
    ];

    /// Short stage label (`handshake`, `upload`, ...) for table rows
    /// and span names; `None` for non-stage histograms.
    #[must_use]
    pub const fn stage_label(self) -> Option<&'static str> {
        match self {
            HistId::ServeStageHandshakeUs => Some("handshake"),
            HistId::ServeStageUploadUs => Some("upload"),
            HistId::ServeStageQueueWaitUs => Some("queue-wait"),
            HistId::ServeStageDetectUs => Some("detect"),
            HistId::ServeStageRenderUs => Some("render"),
            HistId::ServeStageFlushUs => Some("flush"),
            _ => None,
        }
    }

    /// Upper bucket bounds (inclusive, `le`); an implicit `+Inf`
    /// bucket follows the last bound.
    #[must_use]
    pub const fn bounds(self) -> &'static [u64] {
        match self {
            HistId::BloomPopulation => &[0, 1, 2, 4, 8, 16, 32, 64],
            HistId::LockDepth => &[0, 1, 2, 3, 4, 8],
            HistId::ServeSessionEvents => {
                &[0, 1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 23, 1 << 26]
            }
            HistId::ServeStageHandshakeUs
            | HistId::ServeStageUploadUs
            | HistId::ServeStageQueueWaitUs
            | HistId::ServeStageDetectUs
            | HistId::ServeStageRenderUs
            | HistId::ServeStageFlushUs => STAGE_US_BOUNDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_are_dense_and_ordered() {
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(CounterId::COUNT, CounterId::ALL.len());
    }

    #[test]
    fn names_are_unique_and_prometheus_shaped() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate counter name");
        for c in CounterId::ALL {
            assert!(c.name().starts_with("hard_"));
            assert!(c.name().ends_with("_total"));
        }
        for h in HistId::ALL {
            assert_eq!(h.index(), h as usize);
            assert!(h.name().starts_with("hard_"));
            assert!(!h.bounds().is_empty());
            assert!(h.bounds().windows(2).all(|w| w[0] < w[1]));
            assert!(!h.help().is_empty());
        }
        for c in CounterId::ALL {
            assert!(!c.help().is_empty());
        }
    }

    #[test]
    fn gauge_indices_and_names_are_well_formed() {
        let mut names: Vec<&str> = GaugeId::ALL.iter().map(|g| g.name()).collect();
        for (i, g) in GaugeId::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
            assert!(g.name().starts_with("hard_"));
            assert!(
                !g.name().ends_with("_total"),
                "gauges are not monotonic: {}",
                g.name()
            );
            assert!(!g.help().is_empty());
        }
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate gauge name");
        assert_eq!(GaugeId::COUNT, GaugeId::ALL.len());
    }

    #[test]
    fn stage_histograms_carry_labels_in_pipeline_order() {
        let labels: Vec<&str> = HistId::STAGES
            .iter()
            .map(|h| h.stage_label().expect("stage histograms are labelled"))
            .collect();
        assert_eq!(
            labels,
            [
                "handshake",
                "upload",
                "queue-wait",
                "detect",
                "render",
                "flush"
            ]
        );
        assert_eq!(HistId::BloomPopulation.stage_label(), None);
    }
}
