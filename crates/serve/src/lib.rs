//! `hard-serve`: a long-running TCP race-detection service.
//!
//! The batch harness answers "what does HARD do on this corpus?";
//! this crate answers the production question the ROADMAP and the
//! HardRace line of work pose — race detection *as a service*. A
//! [`Server`] accepts framed `HARDCRP1` corpus streams (the exact
//! format `hard-exp record --packed` writes and `hard-exp replay`
//! consumes) from concurrent clients, runs each session through
//! [`hard_harness::execute_streamed`] on a bounded
//! [`hard_harness::WorkerPool`], and answers with a structured JSON
//! [`hard_harness::ReportBody`]. Because the server and the offline
//! replay share one detection entry point, a served report is byte-
//! identical to `hard-exp replay` on the same file — CI diffs the
//! two outputs directly.
//!
//! Production concerns handled end to end:
//!
//! * **Framing** — the [`hard_trace::wire`] protocol: version-bearing
//!   handshake, length-prefixed frames, hostile length prefixes
//!   rejected before allocation.
//! * **Ingest verification** — the `HARDCRP1` header checksum is
//!   validated before detection and the payload FNV after it; a
//!   corrupt upload gets a client-visible `Error` frame, never a
//!   panic.
//! * **Limits** — [`ServeConfig`] bounds concurrent sessions, bytes
//!   per session, events per session, and global in-flight bytes.
//! * **Overload shedding** — admission control: a session arriving
//!   while the detection queue is saturated, the session slots are
//!   exhausted, or the in-flight byte budget is spent is answered
//!   with an explicit `Busy` frame carrying a retry-after hint, never
//!   left blocking. Uploads already admitted still exert TCP
//!   backpressure through the bounded queue at completion time.
//! * **Health probes** — a `Health` frame is answered with a JSON
//!   `Healthy` snapshot of the admission state (sessions, in-flight
//!   bytes, pool load, readiness) without starting a session.
//! * **Timeouts** — an idle client is cut off with an `Error` frame
//!   after [`ServeConfig::idle_timeout`].
//! * **Graceful shutdown** — a `Shutdown` frame (or `max_conns`)
//!   stops the accept loop, drains in-flight sessions, and joins the
//!   pool.
//! * **Observability** — `hard_serve_*` counters, the session-size
//!   histogram, and `serve:detect:*` spans flow into the installed
//!   [`hard_obs`] recorder; the binary exposes them via
//!   `--serve-metrics`.
//!
//! # Example
//!
//! ```no_run
//! use hard_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServeConfig::default()
//! })
//! .expect("bind");
//! println!("listening on {}", server.local_addr().expect("addr"));
//! server.run().expect("serve");
//! ```

#![warn(missing_docs)]

use hard_harness::corpus::{parse_header, CORPUS_MAGIC};
use hard_harness::service::send_frame;
use hard_harness::{DetectorKind, ReportBody, TrySubmit, WorkerPool};
use hard_obs::{CounterId, HistId, ObsHandle};
use hard_trace::codec::{fnv1a_update, FNV1A_INIT};
use hard_trace::wire::{
    encode_busy, read_frame, read_handshake, write_handshake, FrameKind, WireError, MAX_FRAME_BYTES,
};
use hard_trace::ChunkedReader;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs and limits for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7140` (`:0` for an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub addr: String,
    /// Detection worker threads behind the bounded queue.
    pub workers: usize,
    /// Detection jobs that may wait in the queue before new sessions
    /// are shed with a `Busy` frame (the overload bound).
    pub queue_depth: usize,
    /// Concurrent client sessions; further connections are answered
    /// with a `Busy` frame and closed.
    pub max_sessions: usize,
    /// Upload bytes one session may buffer.
    pub max_session_bytes: u64,
    /// Events one session's trace may contain.
    pub max_session_events: u64,
    /// Upload bytes buffered across *all* sessions; connections that
    /// would exceed it are shed with a `Busy` frame.
    pub max_inflight_bytes: u64,
    /// How long a connection may sit idle between frames before it is
    /// cut off with an `Error` frame.
    pub idle_timeout: Duration,
    /// Answer a repeated upload (same detector, same bytes) from an
    /// in-memory report cache instead of re-running detection. Hit
    /// and miss responses are byte-identical; hits show up only in
    /// the `hard_serve_cache_hits_total` counter.
    pub report_cache: bool,
    /// Exit the accept loop after this many accepted connections
    /// (used by CI and tests; `None` serves until a `Shutdown`
    /// frame).
    pub max_conns: Option<usize>,
    /// The retry-after hint carried by `Busy` shed frames.
    pub busy_retry_after: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7140".into(),
            workers: 2,
            queue_depth: 8,
            max_sessions: 32,
            max_session_bytes: 256 << 20,
            max_session_events: 1 << 26,
            max_inflight_bytes: 1 << 30,
            idle_timeout: Duration::from_secs(30),
            report_cache: true,
            max_conns: None,
            busy_retry_after: Duration::from_millis(250),
        }
    }
}

/// Report-cache entries kept before the cache is flushed wholesale
/// (bounding memory without LRU bookkeeping — uploads are large and
/// repeats are bursty, so a flush is cheap relative to one session).
const REPORT_CACHE_CAP: usize = 256;

struct Shared {
    cfg: ServeConfig,
    obs: ObsHandle,
    shutdown: AtomicBool,
    active_sessions: AtomicUsize,
    inflight_bytes: AtomicU64,
    pool: WorkerPool,
    report_cache: Mutex<HashMap<u64, String>>,
}

/// Releases a session's global in-flight byte reservation on drop, so
/// every exit path — clean report, error frame, client disconnect,
/// panic unwind — returns its budget.
struct InflightGuard {
    shared: Arc<Shared>,
    held: u64,
}

impl InflightGuard {
    fn new(shared: Arc<Shared>) -> InflightGuard {
        InflightGuard { shared, held: 0 }
    }

    /// Reserves `n` more bytes against the global budget.
    fn grow(&mut self, n: u64) -> Result<(), String> {
        let prev = self.shared.inflight_bytes.fetch_add(n, Ordering::Relaxed);
        if prev + n > self.shared.cfg.max_inflight_bytes {
            self.shared.inflight_bytes.fetch_sub(n, Ordering::Relaxed);
            return Err(format!(
                "server in-flight budget exhausted ({} bytes)",
                self.shared.cfg.max_inflight_bytes
            ));
        }
        self.held += n;
        Ok(())
    }

    /// Returns the whole reservation (used between sessions on one
    /// connection).
    fn release(&mut self) {
        self.shared
            .inflight_bytes
            .fetch_sub(self.held, Ordering::Relaxed);
        self.held = 0;
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.release();
    }
}

/// The `hard-serve` TCP server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cloneable view of a server's admission accounting, usable while
/// (and after) [`Server::run`] consumes the server. Tests use it to
/// assert that session slots and the in-flight byte budget drain back
/// to zero — the no-leak half of the chaos invariant.
#[derive(Clone)]
pub struct ServeStats {
    shared: Arc<Shared>,
}

impl ServeStats {
    /// Sessions currently holding a slot.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.shared.active_sessions.load(Ordering::Relaxed)
    }

    /// Upload bytes currently reserved against the global budget.
    #[must_use]
    pub fn inflight_bytes(&self) -> u64 {
        self.shared.inflight_bytes.load(Ordering::Relaxed)
    }

    /// Detection jobs queued or running.
    #[must_use]
    pub fn pool_load(&self) -> usize {
        self.shared.pool.load()
    }
}

impl Server {
    /// Binds the listener and spawns the detection pool.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        // Non-blocking accept so the loop can observe the shutdown
        // flag a connection thread sets; connection sockets are
        // switched back to blocking.
        listener.set_nonblocking(true)?;
        let pool = WorkerPool::new(cfg.workers.max(1), cfg.queue_depth.max(1));
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                obs: hard_obs::installed(),
                shutdown: AtomicBool::new(false),
                active_sessions: AtomicUsize::new(0),
                inflight_bytes: AtomicU64::new(0),
                pool,
                report_cache: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The bound address (reports the kernel-chosen port after an
    /// `:0` bind).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Concurrent sessions currently open (for tests asserting that
    /// none leak).
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.shared.active_sessions.load(Ordering::Relaxed)
    }

    /// A cloneable accounting view that outlives [`Server::run`].
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until a client sends `Shutdown` or
    /// `max_conns` connections have been accepted, then drains:
    /// in-flight sessions finish, their threads are joined, and the
    /// detection pool is torn down.
    ///
    /// # Errors
    ///
    /// Returns fatal accept-loop errors; per-connection failures are
    /// answered on that connection and never take the server down.
    pub fn run(self) -> Result<(), String> {
        let Server { listener, shared } = self;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut accepted = 0usize;
        while !shared.shutdown.load(Ordering::Relaxed) {
            if shared.cfg.max_conns.is_some_and(|m| accepted >= m) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    accepted += 1;
                    shared.obs.counter(CounterId::ServeConnections, 1);
                    let shared = Arc::clone(&shared);
                    conns.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared);
                    }));
                    // Opportunistically reap finished threads so a
                    // long-lived server does not accumulate handles.
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }
        // Drain: no new connections; in-flight sessions complete.
        for h in conns {
            let _ = h.join();
        }
        // `shared` holds the pool; dropping the last Arc joins the
        // workers after they finish the accepted backlog.
        drop(shared);
        Ok(())
    }
}

/// Decrements the active-session gauge on every exit path.
struct SessionSlot<'a>(&'a Shared);

impl Drop for SessionSlot<'_> {
    fn drop(&mut self) {
        self.0.active_sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let obs = shared.obs.clone();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(shared.cfg.idle_timeout));
    let Ok(write_half) = stream.try_clone() else {
        obs.counter(CounterId::ServeErrors, 1);
        return;
    };
    let mut w = BufWriter::new(write_half);
    let mut r = BufReader::new(stream);

    // Capacity gate before any protocol work: a connection beyond the
    // session limit gets the handshake echo (so the client's reader is
    // in a defined state) and a Busy shed with a retry-after hint.
    let prev = shared.active_sessions.fetch_add(1, Ordering::Relaxed);
    let slot = SessionSlot(shared);
    if prev >= shared.cfg.max_sessions {
        obs.counter(CounterId::ServeRejected, 1);
        let _ = write_handshake(&mut w);
        send_busy(
            &mut w,
            shared,
            &obs,
            &format!("server at capacity ({} sessions)", shared.cfg.max_sessions),
        );
        return;
    }

    if let Err(e) = read_handshake(&mut r) {
        // Bad magic still gets a spec-shaped reply; a raw disconnect
        // gets nothing (there is no one to talk to).
        if !matches!(e, WireError::Io(_)) {
            let _ = write_handshake(&mut w);
            send_error(&mut w, &obs, &format!("handshake rejected: {e}"));
        } else {
            obs.counter(CounterId::ServeErrors, 1);
        }
        return;
    }
    if write_handshake(&mut w).is_err() || w.flush().is_err() {
        obs.counter(CounterId::ServeErrors, 1);
        return;
    }

    run_session_loop(&mut r, &mut w, shared, &obs);
    drop(slot); // the session slot frees only after the loop exits
}

fn run_session_loop(
    r: &mut BufReader<TcpStream>,
    w: &mut BufWriter<TcpStream>,
    shared: &Arc<Shared>,
    obs: &ObsHandle,
) {
    let mut kind: Option<DetectorKind> = None;
    let mut buf: Vec<u8> = Vec::new();
    let mut guard = InflightGuard::new(Arc::clone(shared));
    let frame_cap = u32::try_from(shared.cfg.max_session_bytes.min(u64::from(MAX_FRAME_BYTES)))
        .unwrap_or(MAX_FRAME_BYTES);
    loop {
        let frame = match read_frame(r, frame_cap) {
            Ok(f) => f,
            Err(e) if e.is_timeout() => {
                send_error(w, obs, "idle timeout: no frame received in time");
                return;
            }
            Err(WireError::Io(_)) => {
                // Disconnect. Mid-session (after Begin) it is an
                // abandoned upload; between sessions it is a normal
                // close.
                if kind.is_some() || !buf.is_empty() {
                    obs.counter(CounterId::ServeErrors, 1);
                }
                return;
            }
            Err(e) => {
                send_error(w, obs, &format!("protocol error: {e}"));
                return;
            }
        };
        match frame.kind {
            FrameKind::Begin => {
                if kind.is_some() {
                    send_error(w, obs, "protocol error: Begin inside an open session");
                    return;
                }
                // Admission control: shed *before* accepting the
                // upload when the detection queue could not take the
                // finished session anyway. Cheaper for both sides than
                // buffering megabytes only to shed at End.
                if shared.pool.is_saturated() {
                    send_busy(w, shared, obs, "detection queue saturated");
                    return;
                }
                match DetectorKind::parse(&frame.text()) {
                    Ok(k) => kind = Some(k),
                    Err(e) => {
                        send_error(w, obs, &e);
                        return;
                    }
                }
            }
            FrameKind::Data => {
                if kind.is_none() {
                    send_error(w, obs, "protocol error: Data before Begin");
                    return;
                }
                let n = frame.payload.len() as u64;
                if buf.len() as u64 + n > shared.cfg.max_session_bytes {
                    send_error(
                        w,
                        obs,
                        &format!(
                            "session exceeds {} upload bytes",
                            shared.cfg.max_session_bytes
                        ),
                    );
                    return;
                }
                if let Err(e) = guard.grow(n) {
                    // A spent global budget is load, not client error:
                    // shed so the client retries after the drain.
                    send_busy(w, shared, obs, &e);
                    return;
                }
                obs.counter(CounterId::ServeBytesIn, n);
                buf.extend_from_slice(&frame.payload);
            }
            FrameKind::End => {
                let Some(k) = kind.take() else {
                    send_error(w, obs, "protocol error: End before Begin");
                    return;
                };
                match finish_session(shared, obs, &k, &buf) {
                    Ok(body) => {
                        obs.counter(CounterId::ServeSessions, 1);
                        if send_frame(w, FrameKind::Report, body.as_bytes()).is_err()
                            || w.flush().is_err()
                        {
                            obs.counter(CounterId::ServeErrors, 1);
                            return;
                        }
                    }
                    Err(SessionFail::Busy(e)) => {
                        send_busy(w, shared, obs, &e);
                        return;
                    }
                    Err(SessionFail::Error(e)) => {
                        send_error(w, obs, &e);
                        return;
                    }
                }
                buf = Vec::new();
                guard.release();
            }
            FrameKind::Health => {
                obs.counter(CounterId::ServeHealthProbes, 1);
                let snapshot = health_snapshot(shared);
                if send_frame(w, FrameKind::Healthy, snapshot.as_bytes()).is_err()
                    || w.flush().is_err()
                {
                    obs.counter(CounterId::ServeErrors, 1);
                    return;
                }
            }
            FrameKind::Shutdown => {
                shared.shutdown.store(true, Ordering::Relaxed);
                if send_frame(w, FrameKind::Bye, &[]).is_ok() {
                    let _ = w.flush();
                }
                return;
            }
            FrameKind::Report
            | FrameKind::Error
            | FrameKind::Bye
            | FrameKind::Busy
            | FrameKind::Healthy => {
                send_error(
                    w,
                    obs,
                    &format!("protocol error: client sent server frame {:?}", frame.kind),
                );
                return;
            }
        }
    }
}

/// Why a session could not be answered with a report.
enum SessionFail {
    /// Transient overload: the client should retry after a delay.
    Busy(String),
    /// A real session failure: bad upload, limits, worker death.
    Error(String),
}

impl From<String> for SessionFail {
    fn from(e: String) -> SessionFail {
        SessionFail::Error(e)
    }
}

/// Validates the uploaded corpus bytes and runs (or cache-answers)
/// detection, returning the encoded report body.
fn finish_session(
    shared: &Arc<Shared>,
    obs: &ObsHandle,
    kind: &DetectorKind,
    corpus: &[u8],
) -> Result<String, SessionFail> {
    if corpus.len() < CORPUS_MAGIC.len() || &corpus[..CORPUS_MAGIC.len()] != CORPUS_MAGIC {
        return Err(SessionFail::Error(
            "upload is not a HARDCRP1 corpus stream".into(),
        ));
    }
    let (header, payload_at) = parse_header(corpus)?;
    if header.events > shared.cfg.max_session_events {
        return Err(SessionFail::Error(format!(
            "trace has {} events, over the {}-event session cap",
            header.events, shared.cfg.max_session_events
        )));
    }
    let cache_key = if shared.cfg.report_cache {
        let fnv = fnv1a_update(FNV1A_INIT, kind.label().as_bytes());
        let fnv = fnv1a_update(fnv, &[0]);
        let fnv = fnv1a_update(fnv, corpus);
        if let Some(body) = shared
            .report_cache
            .lock()
            .map_err(|_| "report cache poisoned".to_string())?
            .get(&fnv)
        {
            obs.counter(CounterId::ServeCacheHits, 1);
            return Ok(body.clone());
        }
        Some(fnv)
    } else {
        None
    };

    // Hand the payload to the bounded pool and rendezvous on the
    // result. A full queue is answered with a `Busy` shed instead of
    // blocking the session thread — the client's retry (idempotent
    // thanks to the content-keyed report cache) replaces the old
    // block-forever backpressure at this stage.
    let payload = corpus[payload_at..].to_vec();
    let (tx, rx) = sync_channel::<Result<ReportBody, String>>(1);
    let kind = *kind;
    let job_obs = obs.clone();
    shared
        .pool
        .try_submit(move || {
            let span = job_obs.span(|| format!("serve:detect:{}", kind.label()));
            let mut reader = ChunkedReader::spawn(
                std::io::Cursor::new(payload),
                hard_trace::packed_event::DEFAULT_CHUNK_RECORDS,
            );
            let result =
                hard_harness::execute_streamed(&kind, header.num_threads as usize, &mut reader)
                    .and_then(|(run, events, fnv)| {
                        if events != header.events {
                            return Err(format!(
                                "stream ended after {events} of {} events",
                                header.events
                            ));
                        }
                        if fnv != header.payload_fnv {
                            return Err("payload checksum mismatch after replay".into());
                        }
                        Ok(ReportBody {
                            label: kind.label().to_string(),
                            events,
                            reports: run.reports,
                        })
                    });
            let events = result.as_ref().map_or(0, |b| b.events);
            job_obs.span_end(span, 0, events);
            let _ = tx.send(result);
        })
        .map_err(|e| match e {
            TrySubmit::Full => SessionFail::Busy("detection queue full".into()),
            TrySubmit::Closed => SessionFail::Error("detection pool unavailable".into()),
        })?;
    let body = rx
        .recv()
        .map_err(|_| "detection worker died mid-session".to_string())?
        .map_err(SessionFail::Error)?;
    obs.histogram(HistId::ServeSessionEvents, body.events);
    let encoded = body.encode();
    if let Some(key) = cache_key {
        if let Ok(mut cache) = shared.report_cache.lock() {
            if cache.len() >= REPORT_CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, encoded.clone());
        }
    }
    Ok(encoded)
}

fn send_error(w: &mut impl Write, obs: &ObsHandle, msg: &str) {
    obs.counter(CounterId::ServeErrors, 1);
    if send_frame(w, FrameKind::Error, msg.as_bytes()).is_ok() {
        let _ = w.flush();
    }
}

/// Sheds the session with a `Busy` frame carrying the configured
/// retry-after hint. Counted under `hard_serve_shed_total`, not the
/// error counter: a shed is correct behavior under load, not failure.
fn send_busy(w: &mut impl Write, shared: &Shared, obs: &ObsHandle, reason: &str) {
    obs.counter(CounterId::ServeShed, 1);
    let payload = encode_busy(shared.cfg.busy_retry_after.as_millis() as u64, reason);
    if send_frame(w, FrameKind::Busy, &payload).is_ok() {
        let _ = w.flush();
    }
}

/// Renders the `Healthy` JSON snapshot of the admission state. The
/// probing connection's own session slot is excluded, so a probe on an
/// otherwise idle server reports zero active sessions — which is what
/// makes the snapshot usable as a leak detector after a drain.
fn health_snapshot(shared: &Shared) -> String {
    let active = shared
        .active_sessions
        .load(Ordering::Relaxed)
        .saturating_sub(1);
    let inflight = shared.inflight_bytes.load(Ordering::Relaxed);
    let load = shared.pool.load();
    let ready = !shared.shutdown.load(Ordering::Relaxed)
        && active < shared.cfg.max_sessions
        && inflight < shared.cfg.max_inflight_bytes
        && !shared.pool.is_saturated();
    format!(
        "{{\"active_sessions\":{active},\"max_sessions\":{},\"inflight_bytes\":{inflight},\
         \"max_inflight_bytes\":{},\"pool_load\":{load},\"pool_capacity\":{},\"ready\":{ready}}}",
        shared.cfg.max_sessions,
        shared.cfg.max_inflight_bytes,
        shared.pool.capacity(),
    )
}
