//! Zero-cost observability for the HARD reproduction.
//!
//! The paper reasons about internal hardware events — bloom-filter
//! saturation, metadata broadcasts on Shared-state reads, barrier
//! flash-resets, conservative fault recovery — that coarse end-of-run
//! structs like `MemStats` cannot show at runtime. This crate provides
//! the event/counter/histogram/span primitives the machines and the
//! harness emit into, behind a [`Recorder`] trait whose disabled form
//! is bit- and perf-inert, mirroring the zero-rate fault plans of the
//! fault layer: a machine holding [`ObsHandle::off`] pays one branch
//! per instrumentation site and produces output identical to a machine
//! built before this crate existed.
//!
//! Layering: `hard-obs` has **zero dependencies** so every crate in
//! the workspace (including `hard-cache`, which otherwise depends only
//! on `hard-types`) can emit into it. Events therefore carry raw
//! `u64`/`u32` payloads; emit sites convert their `Addr`/`SiteId`
//! newtypes at the boundary.
//!
//! The pieces:
//!
//! - [`CounterId`] / [`HistId`]: the closed metric taxonomy, each with
//!   a stable Prometheus-style name (see `DESIGN.md` §6).
//! - [`Event`]: discrete detection-pipeline occurrences, streamable as
//!   JSON Lines.
//! - [`Recorder`]: the sink trait. [`NoopRecorder`] discards
//!   everything; [`MemoryRecorder`] keeps lock-free counters and
//!   histograms, span records, and an optional JSONL writer.
//! - [`ObsHandle`]: the cheap clonable handle instrumentation sites
//!   call through. `off()` is the default everywhere.
//! - [`install`] / [`installed`]: a process-global handle (like the
//!   `log` crate's global logger) so `--trace-out` style flags reach
//!   every sweep without threading handles through `Copy` configs.
//! - [`jsonl`]: a minimal JSON encoder/parser used for the event
//!   stream and its validation.
//! - [`Exposition`]: Prometheus text-format rendering for the metrics
//!   endpoint.

#![warn(missing_docs)]

mod event;
mod exposition;
mod handle;
pub mod jsonl;
mod metric;
mod recorder;

pub use event::Event;
pub use exposition::Exposition;
pub use handle::{ObsHandle, SpanTimer};
pub use metric::{CounterId, GaugeId, HistId};
pub use recorder::{
    GaugeOp, HistogramSnapshot, MemoryRecorder, NoopRecorder, Recorder, Snapshot, SpanRecord,
};

use std::sync::OnceLock;

/// Renders a trace ID in its canonical textual form: exactly 16
/// lowercase hex digits. This form appears in the wire protocol's
/// `Begin`/`Report` frames, JSONL span records, Prometheus labels,
/// and log lines.
#[must_use]
pub fn fmt_trace(trace: u64) -> String {
    format!("{trace:016x}")
}

/// Parses a trace ID rendered by [`fmt_trace`]: exactly 16 hex digits
/// (case-insensitive). Returns `None` for anything else.
#[must_use]
pub fn parse_trace(text: &str) -> Option<u64> {
    if text.len() != 16 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

static GLOBAL: OnceLock<ObsHandle> = OnceLock::new();

/// Installs the process-global handle. Returns `false` if one was
/// already installed (the first install wins, like a global logger).
pub fn install(handle: ObsHandle) -> bool {
    GLOBAL.set(handle).is_ok()
}

/// The process-global handle, or [`ObsHandle::off`] if none was
/// installed. Cheap: one `OnceLock` load plus an `Option<Arc>` clone.
#[must_use]
pub fn installed() -> ObsHandle {
    GLOBAL.get().cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstalled_global_is_off() {
        // The global is process-wide, so this test only asserts the
        // read path; `install` is exercised by the harness binary.
        let h = installed();
        // Either off (no other test installed one) or on; both are
        // valid ObsHandle states and must not panic when used.
        h.counter(CounterId::TraceEvents, 1);
        h.emit(|| Event::RegisterRebuild { thread: 0 });
    }

    #[test]
    fn trace_ids_round_trip_through_their_text_form() {
        for id in [0u64, 1, 0x2a, u64::MAX, 0xdead_beef_cafe_f00d] {
            let text = fmt_trace(id);
            assert_eq!(text.len(), 16);
            assert_eq!(parse_trace(&text), Some(id));
        }
        assert_eq!(parse_trace("2a"), None, "short forms are rejected");
        assert_eq!(parse_trace("00000000000000zz"), None);
        assert_eq!(parse_trace("0000000000000000ff"), None);
        assert_eq!(parse_trace("DEADBEEFCAFEF00D"), Some(0xdead_beef_cafe_f00d));
    }
}
