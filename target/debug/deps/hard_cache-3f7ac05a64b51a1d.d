/root/repo/target/debug/deps/hard_cache-3f7ac05a64b51a1d.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/cstate.rs crates/cache/src/directory.rs crates/cache/src/geometry.rs crates/cache/src/hierarchy.rs crates/cache/src/policy.rs crates/cache/src/stats.rs crates/cache/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libhard_cache-3f7ac05a64b51a1d.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/cstate.rs crates/cache/src/directory.rs crates/cache/src/geometry.rs crates/cache/src/hierarchy.rs crates/cache/src/policy.rs crates/cache/src/stats.rs crates/cache/src/timing.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/cstate.rs:
crates/cache/src/directory.rs:
crates/cache/src/geometry.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/policy.rs:
crates/cache/src/stats.rs:
crates/cache/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
