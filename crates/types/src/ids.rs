//! Identifier newtypes shared across the workspace.
//!
//! These are deliberately thin (`pub` tuple fields, `Copy`): they are
//! compound, passive identifiers in the C spirit, and the simulator
//! manipulates millions of them per run.

use std::fmt;

/// A byte address in the simulated flat physical address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the address `bytes` bytes above `self`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// The address of a lock object.
///
/// Following Eraser and HARD, a lock is identified by the address of the
/// lock variable itself; HARD hashes this address into a bloom-filter
/// vector (paper §3.2, Figure 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u64);

impl LockId {
    /// The lock's address as a raw [`Addr`].
    #[must_use]
    pub fn addr(self) -> Addr {
        Addr(self.0)
    }
}

impl fmt::Debug for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LockId({:#x})", self.0)
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock@{:#x}", self.0)
    }
}

/// A simulated application thread.
///
/// The evaluation model pins thread *i* to core *i* (the paper runs one
/// SPLASH-2 worker per core on a 4-core CMP), so conversion to
/// [`CoreId`] is provided.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// Core the thread is pinned to (identity mapping).
    #[must_use]
    pub fn core(self) -> CoreId {
        CoreId(self.0)
    }

    /// The thread id as a usable index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A processor core of the simulated CMP.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(pub u32);

impl CoreId {
    /// The core id as a usable index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A barrier object, identified by a small integer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BarrierId(pub u32);

impl fmt::Display for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "barrier{}", self.0)
    }
}

/// A static source-code location.
///
/// The paper counts false positives "at source code level": every
/// reported race is mapped back to the static program point that issued
/// the access, and duplicates are collapsed. Workload generators tag
/// every operation with a `SiteId` to model this.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// A number of simulated processor cycles.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Saturating subtraction, useful for overhead computations.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cy", self.0)
    }
}

/// Whether a memory access reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "rd"),
            AccessKind::Write => write!(f, "wr"),
        }
    }
}

/// A power-of-two monitoring granularity in bytes.
///
/// HARD stores candidate sets per cache line (32 B by default); the
/// sensitivity study (Table 3) varies the metadata granularity from 4 B
/// to 32 B. A `Granularity` maps byte addresses to granule base
/// addresses.
///
/// # Examples
///
/// ```
/// use hard_types::{Addr, Granularity};
/// let g = Granularity::new(8);
/// assert_eq!(g.granule_of(Addr(0x17)), Addr(0x10));
/// assert_eq!(g.bytes(), 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Granularity {
    shift: u32,
}

impl Granularity {
    /// Creates a granularity of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a power of two or is zero.
    #[must_use]
    pub fn new(bytes: u64) -> Granularity {
        assert!(
            bytes.is_power_of_two(),
            "granularity must be a power of two, got {bytes}"
        );
        Granularity {
            shift: bytes.trailing_zeros(),
        }
    }

    /// The granularity in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        1 << self.shift
    }

    /// log2 of the granularity.
    #[must_use]
    pub fn shift(self) -> u32 {
        self.shift
    }

    /// Base address of the granule containing `addr`.
    #[must_use]
    pub fn granule_of(self, addr: Addr) -> Addr {
        Addr(addr.0 >> self.shift << self.shift)
    }

    /// Byte offset of `addr` within its granule.
    #[must_use]
    pub fn offset_of(self, addr: Addr) -> u64 {
        addr.0 & (self.bytes() - 1)
    }

    /// Iterates over the base addresses of all granules overlapped by
    /// the byte range `[addr, addr + len)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hard_types::{Addr, Granularity};
    /// let g = Granularity::new(4);
    /// let v: Vec<_> = g.granules_in(Addr(6), 4).collect();
    /// assert_eq!(v, vec![Addr(4), Addr(8)]);
    /// ```
    pub fn granules_in(self, addr: Addr, len: u64) -> impl Iterator<Item = Addr> {
        let bytes = self.bytes();
        let first = self.granule_of(addr).0;
        let last = if len == 0 {
            first
        } else {
            self.granule_of(Addr(addr.0 + len - 1)).0
        };
        (first..=last).step_by(bytes as usize).map(Addr)
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_offset_and_display() {
        let a = Addr(0x100);
        assert_eq!(a.offset(0x20), Addr(0x120));
        assert_eq!(format!("{a}"), "0x100");
        assert_eq!(format!("{a:?}"), "Addr(0x100)");
    }

    #[test]
    fn thread_pins_to_same_core() {
        assert_eq!(ThreadId(3).core(), CoreId(3));
        assert_eq!(ThreadId(3).index(), 3);
    }

    #[test]
    fn lock_id_addr_roundtrip() {
        assert_eq!(LockId(0xdead).addr(), Addr(0xdead));
        assert_eq!(format!("{}", LockId(0x10)), "lock@0x10");
    }

    #[test]
    fn cycles_arithmetic() {
        let mut c = Cycles(10);
        c += Cycles(5);
        assert_eq!(c, Cycles(15));
        assert_eq!(c - Cycles(5), Cycles(10));
        assert_eq!(Cycles(3).saturating_sub(Cycles(7)), Cycles::ZERO);
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert_eq!(format!("{}", AccessKind::Read), "rd");
    }

    #[test]
    fn granularity_mapping() {
        let g = Granularity::new(32);
        assert_eq!(g.bytes(), 32);
        assert_eq!(g.shift(), 5);
        assert_eq!(g.granule_of(Addr(0)), Addr(0));
        assert_eq!(g.granule_of(Addr(31)), Addr(0));
        assert_eq!(g.granule_of(Addr(32)), Addr(32));
        assert_eq!(g.offset_of(Addr(33)), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn granularity_rejects_non_power_of_two() {
        let _ = Granularity::new(24);
    }

    #[test]
    fn granules_in_spans_boundaries() {
        let g = Granularity::new(8);
        let v: Vec<_> = g.granules_in(Addr(7), 2).collect();
        assert_eq!(v, vec![Addr(0), Addr(8)]);
        let single: Vec<_> = g.granules_in(Addr(8), 8).collect();
        assert_eq!(single, vec![Addr(8)]);
        let empty_len: Vec<_> = g.granules_in(Addr(13), 0).collect();
        assert_eq!(empty_len, vec![Addr(8)]);
    }

    #[test]
    fn granules_in_large_access() {
        let g = Granularity::new(4);
        let v: Vec<_> = g.granules_in(Addr(0), 16).collect();
        assert_eq!(v, vec![Addr(0), Addr(4), Addr(8), Addr(12)]);
    }
}
