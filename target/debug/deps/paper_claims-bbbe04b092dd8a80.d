/root/repo/target/debug/deps/paper_claims-bbbe04b092dd8a80.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-bbbe04b092dd8a80.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
