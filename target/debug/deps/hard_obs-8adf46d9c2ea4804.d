/root/repo/target/debug/deps/hard_obs-8adf46d9c2ea4804.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/exposition.rs crates/obs/src/handle.rs crates/obs/src/jsonl.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs

/root/repo/target/debug/deps/hard_obs-8adf46d9c2ea4804: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/exposition.rs crates/obs/src/handle.rs crates/obs/src/jsonl.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/exposition.rs:
crates/obs/src/handle.rs:
crates/obs/src/jsonl.rs:
crates/obs/src/metric.rs:
crates/obs/src/recorder.rs:
