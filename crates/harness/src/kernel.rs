//! Process-global detection-kernel selection.
//!
//! The batched dispatch path ([`crate::runner`]) and the HARD
//! machine's vectorized span kernel are bit-identical to the scalar
//! per-event path by construction (and pinned so by tests), so which
//! one runs is a pure throughput choice. This module holds that choice
//! as a process-global, mirroring [`crate::corpus::install`]: the
//! `hard-exp --kernel` flag sets it once at startup and every campaign
//! run in the process picks it up.

use hard_bloom::LaneKernel;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which dispatch loop the hardened runner drives.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum KernelMode {
    /// Per-event dispatch with the scalar metadata kernel — the
    /// reference path.
    Scalar,
    /// Batched dispatch ([`hard_trace::BATCH_EVENTS`]-sized runs) with
    /// the widest lane kernel the host supports.
    Batch,
    /// Resolve at startup: batch, since it is bit-identical to scalar
    /// and never slower by more than noise.
    #[default]
    Auto,
}

impl KernelMode {
    /// Parses a `--kernel` argument value.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the accepted values.
    pub fn parse(s: &str) -> Result<KernelMode, String> {
        match s {
            "scalar" => Ok(KernelMode::Scalar),
            "batch" => Ok(KernelMode::Batch),
            "auto" => Ok(KernelMode::Auto),
            other => Err(format!(
                "unknown kernel '{other}' (expected scalar|batch|auto)"
            )),
        }
    }

    /// True if the batched dispatch loop should run.
    #[must_use]
    pub fn is_batched(self) -> bool {
        // Auto resolves to batch: the equivalence tests pin it
        // bit-identical, so there is no correctness reason to stay
        // scalar, and the lane kernel below degrades gracefully on
        // hosts without SIMD.
        !matches!(self, KernelMode::Scalar)
    }

    /// True if the batched MESI/timing model should run.
    ///
    /// The batched timing model lives inside the machines' `on_batch`
    /// (fused hierarchy probes, hot-slot memo, deferred stat flushes),
    /// so it engages exactly when batched dispatch does — there is no
    /// separate switch to keep coherent. Runs that must stay per-event
    /// (fault injection, an attached recorder, deadline observation)
    /// delegate wholesale inside `on_batch` itself, so they remain
    /// byte-identical regardless of this mode.
    #[must_use]
    pub fn batched_timing(self) -> bool {
        self.is_batched()
    }

    /// The metadata lane kernel this mode implies.
    #[must_use]
    pub fn lane_kernel(self) -> LaneKernel {
        match self {
            KernelMode::Scalar => LaneKernel::Scalar,
            KernelMode::Batch | KernelMode::Auto => LaneKernel::auto(),
        }
    }

    /// The CLI spelling of this mode.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KernelMode::Scalar => "scalar",
            KernelMode::Batch => "batch",
            KernelMode::Auto => "auto",
        }
    }
}

const MODE_SCALAR: u8 = 0;
const MODE_BATCH: u8 = 1;
const MODE_AUTO: u8 = 2;

static INSTALLED: AtomicU8 = AtomicU8::new(MODE_AUTO);

/// Installs the process-global kernel mode consulted by the hardened
/// runner.
pub fn install(mode: KernelMode) {
    let v = match mode {
        KernelMode::Scalar => MODE_SCALAR,
        KernelMode::Batch => MODE_BATCH,
        KernelMode::Auto => MODE_AUTO,
    };
    INSTALLED.store(v, Ordering::Relaxed);
}

/// The process-global kernel mode ([`KernelMode::Auto`] until
/// installed).
#[must_use]
pub fn installed() -> KernelMode {
    match INSTALLED.load(Ordering::Relaxed) {
        MODE_SCALAR => KernelMode::Scalar,
        MODE_BATCH => KernelMode::Batch,
        _ => KernelMode::Auto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_three_modes_and_rejects_others() {
        assert_eq!(KernelMode::parse("scalar"), Ok(KernelMode::Scalar));
        assert_eq!(KernelMode::parse("batch"), Ok(KernelMode::Batch));
        assert_eq!(KernelMode::parse("auto"), Ok(KernelMode::Auto));
        assert!(KernelMode::parse("simd").unwrap_err().contains("scalar"));
        for m in [KernelMode::Scalar, KernelMode::Batch, KernelMode::Auto] {
            assert_eq!(KernelMode::parse(m.label()), Ok(m));
        }
    }

    #[test]
    fn batching_and_lane_kernels_follow_the_mode() {
        assert!(!KernelMode::Scalar.is_batched());
        assert!(KernelMode::Batch.is_batched());
        assert!(KernelMode::Auto.is_batched());
        for m in [KernelMode::Scalar, KernelMode::Batch, KernelMode::Auto] {
            assert_eq!(
                m.batched_timing(),
                m.is_batched(),
                "the timing model must engage exactly with batched dispatch"
            );
        }
        assert_eq!(KernelMode::Scalar.lane_kernel(), LaneKernel::Scalar);
        assert_eq!(KernelMode::Batch.lane_kernel(), LaneKernel::auto());
        assert_eq!(KernelMode::Auto.lane_kernel(), LaneKernel::auto());
    }

    #[test]
    fn install_round_trips() {
        let before = installed();
        install(KernelMode::Scalar);
        assert_eq!(installed(), KernelMode::Scalar);
        install(KernelMode::Batch);
        assert_eq!(installed(), KernelMode::Batch);
        install(before);
    }
}
