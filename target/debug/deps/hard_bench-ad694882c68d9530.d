/root/repo/target/debug/deps/hard_bench-ad694882c68d9530.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhard_bench-ad694882c68d9530.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhard_bench-ad694882c68d9530.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
