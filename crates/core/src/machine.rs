//! The HARD machine: detection and timing on the simulated CMP.

use crate::config::HardConfig;
use crate::metadata::{HardLineMeta, HardMetaFactory};
use hard_bloom::{LaneKernel, LockRegister};
use hard_cache::{BusTimeline, Hierarchy, MemStats, ServedBy};
use hard_lockset::{dummy_lock, MAX_GRANULES};
use hard_obs::{CounterId, Event, HistId, ObsHandle};
use hard_trace::{Detector, Op, RaceReport, TraceEvent};
use hard_types::{
    AccessKind, Addr, CoreId, Cycles, FastHashSet, FaultInjector, FaultStats, HardError, LockId,
    SiteId, ThreadId,
};
use std::collections::BTreeSet;

/// HARD: a CMP whose caches carry bloom-filter candidate sets and
/// LStates, with per-core Lock/Counter Registers (paper §3).
///
/// The machine is a [`Detector`] (it reports races) and a timing model
/// (it tracks per-core cycles and shared-bus contention; see
/// [`HardMachine::total_cycles`]).
///
/// # Fault tolerance
///
/// When the configuration carries a non-trivial
/// [`FaultPlan`](hard_types::FaultPlan), the machine injects hardware
/// faults (metadata/register bit flips, lost or delayed metadata
/// broadcasts, spurious L2 displacements) and *degrades gracefully*:
/// every metadata word and lock register carries a parity bit, so a
/// strike is caught the next time the word is read and the state falls
/// back to the paper's safe value — an all-ones candidate set in the
/// Virgin state (the §3.1 fetch value), or a lock register rebuilt
/// from the OS's software lock shadow. Detection quality degrades
/// (evidence is discarded), correctness of the simulation does not:
/// the machine never panics and never diverges from the trace.
#[derive(Debug)]
pub struct HardMachine {
    cfg: HardConfig,
    hierarchy: Hierarchy<HardMetaFactory>,
    /// One Lock/Counter Register pair per *thread*: the hardware holds
    /// the running thread's pair; on a context switch the OS swaps it
    /// like any other register state (§3.3 stores "the lock set of the
    /// running thread").
    registers: Vec<LockRegister>,
    /// The OS's software shadow of each thread's held locks (in
    /// acquisition order, with multiplicity). Real lock implementations
    /// keep this anyway; HARD's recovery path rebuilds a corrupted lock
    /// register from it.
    shadow: Vec<Vec<LockId>>,
    /// The thread currently occupying each core, for context-switch
    /// accounting.
    running: Vec<Option<ThreadId>>,
    reports: Vec<RaceReport>,
    reported: FastHashSet<(Addr, SiteId)>,
    core_time: Vec<u64>,
    bus: BusTimeline,
    detection_enabled: bool,
    faults: FaultInjector,
    /// Granules whose stored metadata parity no longer matches —
    /// corruption that has landed but not yet been read. Only touched
    /// while the fault plan is active; the detection hot path never
    /// consults it on a fault-free machine.
    corrupt_meta: BTreeSet<(Addr, usize)>,
    /// Per-thread flag: the lock-register parity no longer matches
    /// (flat table indexed like `registers`).
    corrupt_registers: Vec<bool>,
    /// Delayed metadata broadcasts `(due_event, source core, line)`:
    /// a flat FIFO drained from `pending_head`, compacted when empty.
    pending_broadcasts: Vec<(u64, CoreId, Addr)>,
    pending_head: usize,
    /// Trace events consumed (drives broadcast-delay delivery).
    event_count: u64,
    /// Observability sink; [`ObsHandle::off`] (the default) is bit-
    /// and perf-inert.
    obs: ObsHandle,
    /// Lane kernel driving the batched access path
    /// ([`Detector::on_batch`]). Every kernel is bit-identical to the
    /// scalar path; this is a throughput and testing lever only.
    kernel: LaneKernel,
    /// Batch pre-pass scratch: the hoisted (line, set) pair of each
    /// single-line access in the batch being dispatched. Held on the
    /// machine so the buffer is allocated once, not per batch.
    batch_prep: Vec<Option<(Addr, usize)>>,
}

impl HardMachine {
    /// A fresh machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid; use
    /// [`HardMachine::try_new`] to handle that as an error.
    #[must_use]
    pub fn new(cfg: HardConfig) -> HardMachine {
        Self::try_new(cfg).expect("HardConfig must describe a valid machine")
    }

    /// A fresh machine, or the configuration error that prevents one.
    ///
    /// # Errors
    ///
    /// Returns [`HardError::InvalidConfig`] for structurally invalid
    /// cache shapes (zero cores, incompatible L1/L2 line sizes, ...).
    pub fn try_new(cfg: HardConfig) -> Result<HardMachine, HardError> {
        let factory = HardMetaFactory {
            shape: cfg.bloom,
            granules_per_line: cfg.granules_per_line(),
        };
        let n = cfg.hierarchy.num_cores;
        Ok(HardMachine {
            hierarchy: Hierarchy::new(cfg.hierarchy, factory)?,
            registers: (0..n).map(|_| LockRegister::new(cfg.bloom)).collect(),
            shadow: (0..n).map(|_| Vec::new()).collect(),
            running: vec![None; n],
            reports: Vec::new(),
            reported: FastHashSet::default(),
            core_time: vec![0; n],
            bus: BusTimeline::new(),
            detection_enabled: true,
            faults: FaultInjector::new(cfg.faults),
            corrupt_meta: BTreeSet::new(),
            corrupt_registers: vec![false; n],
            pending_broadcasts: Vec::new(),
            pending_head: 0,
            event_count: 0,
            obs: ObsHandle::off(),
            kernel: LaneKernel::auto(),
            batch_prep: Vec::new(),
            cfg,
        })
    }

    /// Selects the lane kernel used by the batched access path. Every
    /// kernel produces bit-identical results; the default is
    /// [`LaneKernel::auto`] (the widest one the host supports).
    pub fn set_lane_kernel(&mut self, kernel: LaneKernel) {
        self.kernel = kernel;
    }

    /// The lane kernel the batched access path runs with.
    #[must_use]
    pub fn lane_kernel(&self) -> LaneKernel {
        self.kernel
    }

    /// Attaches an observability recorder to the machine and its
    /// memory hierarchy. Detection-pipeline counters, histograms and
    /// events flow to it from now on; attaching [`ObsHandle::off`]
    /// restores the inert default.
    pub fn attach_recorder(&mut self, obs: ObsHandle) {
        self.hierarchy.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &HardConfig {
        &self.cfg
    }

    /// Memory-system statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        self.hierarchy.stats()
    }

    /// The shared-bus timeline (for utilization reporting).
    #[must_use]
    pub fn bus(&self) -> &BusTimeline {
        &self.bus
    }

    /// Fault-injection and degradation statistics (all zero on a
    /// fault-free machine).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats
    }

    /// Execution time so far: the maximum core clock.
    #[must_use]
    pub fn total_cycles(&self) -> Cycles {
        Cycles(self.core_time.iter().copied().max().unwrap_or(0))
    }

    /// True if the line containing `addr` ever lost its metadata to an
    /// L2 displacement — the paper's only cause of missed races in the
    /// default configuration (§5.1).
    #[must_use]
    pub fn was_meta_lost(&self, addr: Addr) -> bool {
        self.hierarchy.was_meta_lost(addr)
    }

    /// The lock register of `thread` (inspection/debugging). The
    /// hardware register physically lives in the core the thread runs
    /// on; the OS swaps it on context switches.
    ///
    /// # Panics
    ///
    /// Panics if `thread` was never seen by the machine.
    #[must_use]
    pub fn lock_register(&self, thread: ThreadId) -> &LockRegister {
        &self.registers[thread.index()]
    }

    /// Maps a thread to its core. With at most `num_cores` threads this
    /// is the paper's one-thread-per-core pinning; beyond that, threads
    /// share cores round-robin and pay a context switch whenever the
    /// core's occupant changes.
    fn core_of(&mut self, thread: ThreadId) -> CoreId {
        let core = CoreId(thread.0 % self.cfg.hierarchy.num_cores as u32);
        let slot = &mut self.running[core.index()];
        if *slot != Some(thread) {
            if slot.is_some() {
                self.core_time[core.index()] += self.cfg.latency.context_switch;
            }
            *slot = Some(thread);
        }
        self.ensure_thread(thread);
        core
    }

    /// Grows the per-thread register file and its software lock shadow
    /// to cover `thread`.
    fn ensure_thread(&mut self, thread: ThreadId) {
        while self.registers.len() <= thread.index() {
            self.registers.push(LockRegister::new(self.cfg.bloom));
            self.shadow.push(Vec::new());
            self.corrupt_registers.push(false);
        }
    }

    /// Parity check on `thread`'s lock register: if a strike landed
    /// since the last read, rebuild the register from the software
    /// lock shadow (the recovery path of the fault model).
    fn repair_register_if_corrupt(&mut self, thread: ThreadId) {
        let t = thread.index();
        if std::mem::take(&mut self.corrupt_registers[t]) {
            self.registers[t].rebuild_from(&self.shadow[t]);
            self.faults.stats.parity_detections += 1;
            self.faults.stats.register_rebuilds += 1;
            self.obs.counter(CounterId::RegisterRebuilds, 1);
            self.obs
                .emit(|| Event::RegisterRebuild { thread: thread.0 });
        }
    }

    /// Performs the cache access and advances the core clock; returns
    /// `None` (after absorbing the error into the fault statistics) if
    /// a coherence invariant was broken — reachable only under injected
    /// corruption, never on a fault-free machine.
    fn timed_ensure(&mut self, core: CoreId, addr: Addr, kind: AccessKind) -> Option<ServedBy> {
        let r = match self.hierarchy.ensure(core, addr, kind) {
            Ok(r) => r,
            Err(_) => {
                self.faults.stats.internal_errors += 1;
                return None;
            }
        };
        let lat = &self.cfg.latency;
        let c = core.index();
        // Every data transfer also carries the 18 metadata bits (§3.4).
        let piggyback = if self.detection_enabled && r.bus_data > 0 {
            lat.meta_piggyback_occupancy
        } else {
            0
        };
        let occ = lat.bus_occupancy(&r) + piggyback;
        let start = if occ > 0 {
            self.bus.acquire(self.core_time[c], occ)
        } else {
            self.core_time[c]
        };
        let mut t = start + lat.service_latency(&r) + piggyback;
        // The candidate check overlaps an L1 hit entirely; on misses the
        // metadata arrives with the line and the AND+test tacks on.
        if self.detection_enabled && r.served_by != ServedBy::L1 {
            t += lat.candidate_check;
        }
        self.core_time[c] = t;
        Some(r.served_by)
    }

    fn on_access(
        &mut self,
        index: usize,
        thread: ThreadId,
        addr: Addr,
        size: u8,
        kind: AccessKind,
        site: SiteId,
    ) {
        let core = self.core_of(thread);
        let faults_active = self.faults.is_active();
        if faults_active {
            self.repair_register_if_corrupt(thread);
        }
        let line_bytes = self.hierarchy.line_bytes();
        let gran = self.cfg.granularity;
        // Hoisted so the off path pays one branch per access, not one
        // per granule.
        let obs_on = self.obs.is_on();
        let mut candidate_checks = 0u64;
        let mut candidate_empties = 0u64;
        // The L1 geometry is `Copy`: iterating a local copy's line
        // walk avoids collecting the (almost always singleton) line
        // list into a heap vector on every access.
        let geom = self.cfg.hierarchy.l1;
        for line_addr in geom.lines_in(addr, u64::from(size)) {
            if self.timed_ensure(core, line_addr, kind).is_none() {
                continue;
            }
            // Clip the access to this line and update each overlapped
            // granule's candidate set and LState.
            let lo = addr.0.max(line_addr.0);
            let hi = (addr.0 + u64::from(size)).min(line_addr.0 + line_bytes);
            let held = self.registers[thread.index()].vector();
            let mut changed = false;
            // Inline scratch: a line has at most MAX_GRANULES granules,
            // so the racy set never needs a heap allocation.
            let mut racy_granules = [Addr(0); MAX_GRANULES];
            let mut racy_count = 0usize;
            {
                let Some(meta): Option<&mut HardLineMeta> =
                    self.hierarchy.meta_mut(core, line_addr)
                else {
                    // Only reachable under injected faults (the ensure
                    // above would otherwise have made the line
                    // resident): skip the metadata update, keep going.
                    self.faults.stats.internal_errors += 1;
                    continue;
                };
                for g in gran.granules_in(Addr(lo), hi - lo) {
                    let gi = ((g.0 - line_addr.0) / gran.bytes()) as usize;
                    // Reading the metadata word checks its parity. A
                    // mismatch means a strike landed since the last
                    // read: fall back to the safe state the hardware
                    // fetches lines with (§3.1) — all-ones candidate
                    // set, no sharing history — rather than trust
                    // corrupt evidence. The side table is only ever
                    // populated while faults are active, so the
                    // fault-free hot path skips the lookup entirely.
                    if faults_active && self.corrupt_meta.remove(&(line_addr, gi)) {
                        meta.degrade(gi);
                        self.faults.stats.parity_detections += 1;
                        self.faults.stats.conservative_resets += 1;
                        self.obs.counter(CounterId::ConservativeResets, 1);
                        self.obs.emit(|| Event::ConservativeReset {
                            line: line_addr.0,
                            granule: gi as u32,
                        });
                        // The safe state must reach the other copies.
                        changed = true;
                    }
                    // §3.4 keeps candidate sets AND LStates consistent
                    // across copies, so any metadata change on a shared
                    // line is broadcast — including pure state
                    // transitions (e.g. Virgin→Exclusive on a read).
                    // On the packed words, change detection is a single
                    // XOR instead of a clone-and-compare.
                    let (granule_changed, out) = meta.access(gi, thread, kind, &held);
                    changed |= granule_changed;
                    if obs_on {
                        candidate_checks += 1;
                        self.obs
                            .histogram(HistId::BloomPopulation, u64::from(meta.population(gi)));
                        if out.race {
                            candidate_empties += 1;
                            self.obs.emit(|| Event::CandidateEmpty {
                                line: line_addr.0,
                                granule: gi as u32,
                                thread: thread.0,
                            });
                        }
                    }
                    if out.race {
                        racy_granules[racy_count] = g;
                        racy_count += 1;
                    }
                }
            }
            // §3.4: a changed candidate set on a line with other valid
            // copies is broadcast so all L1s and the L2 stay current.
            if self.cfg.metadata_broadcast
                && changed
                && self.hierarchy.shared_beyond(core, line_addr)
            {
                let mut deliver = true;
                if self.faults.is_active() {
                    if self.faults.roll_broadcast_drop() {
                        self.faults.stats.broadcasts_dropped += 1;
                        self.obs.counter(CounterId::BroadcastsDropped, 1);
                        self.obs
                            .emit(|| Event::BroadcastDropped { line: line_addr.0 });
                        deliver = false;
                    } else if self.faults.roll_broadcast_delay() {
                        self.faults.stats.broadcasts_delayed += 1;
                        let wait = u64::from(self.cfg.faults.broadcast_delay_events).max(1);
                        self.obs.counter(CounterId::BroadcastsDelayed, 1);
                        self.obs.emit(|| Event::BroadcastDelayed {
                            line: line_addr.0,
                            wait_events: wait,
                        });
                        self.pending_broadcasts
                            .push((self.event_count + wait, core, line_addr));
                        deliver = false;
                    }
                }
                if deliver {
                    if self.hierarchy.broadcast_meta(core, line_addr).is_ok() {
                        // The broadcast is posted: it occupies the bus
                        // (delaying later transactions) without
                        // stalling this core.
                        let occ = self.cfg.latency.meta_broadcast_occupancy;
                        self.bus.acquire(self.core_time[core.index()], occ);
                    } else {
                        self.faults.stats.internal_errors += 1;
                    }
                }
            }
            for &g in &racy_granules[..racy_count] {
                if self.reported.insert((g, site)) {
                    self.reports.push(RaceReport {
                        addr,
                        size,
                        site,
                        thread,
                        kind,
                        event_index: index,
                    });
                    self.obs.counter(CounterId::RacesReported, 1);
                    self.obs.emit(|| Event::Race {
                        addr: addr.0,
                        site: site.0,
                        thread: thread.0,
                    });
                }
            }
        }
        if obs_on {
            self.obs
                .counter(CounterId::CandidateChecks, candidate_checks);
            if candidate_empties > 0 {
                self.obs
                    .counter(CounterId::CandidateEmpties, candidate_empties);
            }
        }
    }

    /// The batch kernel's access path: [`HardMachine::on_access`] for
    /// an access contained in one cache line, with the line/set
    /// arithmetic pre-computed by the batch pre-pass, the metadata
    /// reached through the prepared probe, and the per-granule Figure 2
    /// transition + §3.3 intersect + emptiness test run as one
    /// [`PackedLineMeta`](hard_lockset::PackedLineMeta) span access
    /// through the lane kernel.
    ///
    /// Only entered with faults inactive and no recorder attached; on
    /// that domain it is bit-identical to the scalar path (pinned by
    /// the machine tests and the harness determinism tests).
    #[allow(clippy::too_many_arguments)]
    fn on_access_prepared(
        &mut self,
        index: usize,
        thread: ThreadId,
        addr: Addr,
        size: u8,
        kind: AccessKind,
        site: SiteId,
        line_addr: Addr,
        set: usize,
    ) {
        let core = self.core_of(thread);
        let gshift = self.cfg.granularity.shift();
        let g0 = ((addr.0 - line_addr.0) >> gshift) as usize;
        let g1 = if size == 0 {
            // `granules_in` treats an empty range as its base granule.
            g0 + 1
        } else {
            ((addr.0 + u64::from(size) - 1 - line_addr.0) >> gshift) as usize + 1
        };
        // Hoisted before the hierarchy call (neither touches registers
        // or the kernel selection, so the reorder is pure).
        let held = self.registers[thread.index()].vector();
        let kernel = self.kernel;
        // One fused hierarchy walk replaces the scalar ensure-probe +
        // metadata-probe pair; same coherence actions, same LRU
        // charges, L1 hits deferred to the per-window flush.
        let (r, span) = match self.hierarchy.access_prepared(core, line_addr, set, kind) {
            Ok((r, meta)) => (r, meta.access_span(g0, g1, thread, kind, &held, kernel)),
            Err(_) => {
                // Only reachable under injected faults in the scalar
                // path; kept for structural parity.
                self.faults.stats.internal_errors += 1;
                return;
            }
        };
        // The timing charge of `timed_ensure`, verbatim. Computing the
        // span first is unobservable: the span kernel never reads the
        // clocks and the bus never reads the metadata, and the
        // broadcast below still sees the updated core time.
        let lat = &self.cfg.latency;
        let c = core.index();
        let piggyback = if self.detection_enabled && r.bus_data > 0 {
            lat.meta_piggyback_occupancy
        } else {
            0
        };
        let occ = lat.bus_occupancy(&r) + piggyback;
        let start = if occ > 0 {
            self.bus.acquire(self.core_time[c], occ)
        } else {
            self.core_time[c]
        };
        let mut t = start + lat.service_latency(&r) + piggyback;
        if self.detection_enabled && r.served_by != ServedBy::L1 {
            t += lat.candidate_check;
        }
        self.core_time[c] = t;
        if self.cfg.metadata_broadcast
            && span.changed
            && self.hierarchy.shared_beyond(core, line_addr)
        {
            // Faults are inactive on this path: the broadcast always
            // attempts delivery (no drop/delay rolls).
            if self.hierarchy.broadcast_meta(core, line_addr).is_ok() {
                let occ = self.cfg.latency.meta_broadcast_occupancy;
                self.bus.acquire(self.core_time[core.index()], occ);
            } else {
                self.faults.stats.internal_errors += 1;
            }
        }
        let mut mask = span.race_mask;
        while mask != 0 {
            let k = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let g = Addr(line_addr.0 + (((g0 + k) as u64) << gshift));
            if self.reported.insert((g, site)) {
                self.reports.push(RaceReport {
                    addr,
                    size,
                    site,
                    thread,
                    kind,
                    event_index: index,
                });
            }
        }
    }

    fn on_lock_op(&mut self, thread: ThreadId, lock: LockId, acquire: bool) {
        let core = self.core_of(thread);
        if self.faults.is_active() {
            self.repair_register_if_corrupt(thread);
        }
        // The lock variable itself is memory traffic (test-and-set),
        // but lock/unlock instructions are recognized by HARD and do
        // not run the lockset update on their own line.
        let was_enabled = self.detection_enabled;
        self.detection_enabled = false;
        let _ = self.timed_ensure(core, lock.addr(), AccessKind::Write);
        self.detection_enabled = was_enabled;
        let lat = &self.cfg.latency;
        self.core_time[core.index()] += lat.sync_op + lat.lock_register_update;
        let t = thread.index();
        if acquire {
            self.registers[t].acquire(lock);
            self.shadow[t].push(lock);
            self.obs.counter(CounterId::LockAcquires, 1);
        } else {
            self.registers[t].release(lock);
            // Mirror the register's tolerance of unbalanced releases.
            if let Some(p) = self.shadow[t].iter().rposition(|&l| l == lock) {
                self.shadow[t].remove(p);
            }
            self.obs.counter(CounterId::LockReleases, 1);
        }
        self.obs
            .histogram(HistId::LockDepth, u64::from(self.registers[t].depth()));
    }

    fn on_barrier_complete(&mut self) {
        // All cores leave the barrier together.
        let max = self.core_time.iter().copied().max().unwrap_or(0);
        for t in &mut self.core_time {
            *t = max;
        }
        if self.cfg.barrier_pruning {
            let mut granules = 0u64;
            self.hierarchy.flash_meta(|meta| {
                granules += meta.len() as u64;
                meta.barrier_reset_all();
            });
            // The flash rewrite regenerates every metadata word's
            // parity, clearing any corruption still in flight.
            self.corrupt_meta.clear();
            self.obs.counter(CounterId::BarrierResets, 1);
            self.obs.emit(|| Event::BarrierReset { granules });
        }
    }

    /// One fault-model step per trace event: delivers due delayed
    /// broadcasts and samples the plan for new strikes. Only called
    /// when the plan is active, so a fault-free machine never reaches
    /// this code (or the injector's RNG).
    fn fault_tick(&mut self) {
        self.event_count += 1;
        while self.pending_head < self.pending_broadcasts.len() {
            let (due, core, line) = self.pending_broadcasts[self.pending_head];
            if due > self.event_count {
                break;
            }
            self.pending_head += 1;
            if self.hierarchy.sharers(line) > 0 && self.hierarchy.broadcast_meta(core, line).is_ok()
            {
                let occ = self.cfg.latency.meta_broadcast_occupancy;
                self.bus.acquire(self.core_time[core.index()], occ);
            } else {
                // The source copy is gone (evicted or displaced while
                // the message waited): the deferred broadcast is lost
                // exactly like a dropped one.
                self.faults.stats.broadcasts_dropped += 1;
            }
        }
        // Compact the FIFO once fully drained so the backing vector
        // never grows beyond the peak number of in-flight delays.
        if self.pending_head == self.pending_broadcasts.len() && self.pending_head > 0 {
            self.pending_broadcasts.clear();
            self.pending_head = 0;
        }
        if self.faults.roll_meta_flip() {
            self.inject_meta_flip();
        }
        if self.faults.roll_register_flip() {
            self.inject_register_flip();
        }
        if self.faults.roll_displacement() {
            let n = self.hierarchy.l2_occupancy();
            if n > 0 {
                let victim = self.faults.pick(n);
                if self.hierarchy.force_displace(victim).is_some() {
                    self.faults.stats.spurious_displacements += 1;
                }
            }
        }
    }

    /// Flips one bit in a randomly chosen resident granule's metadata
    /// word (candidate vector or 2-bit LState) and marks its parity
    /// stale.
    fn inject_meta_flip(&mut self) {
        let core = CoreId(self.faults.pick(self.cfg.hierarchy.num_cores) as u32);
        let lines = self.hierarchy.resident_lines(core);
        if lines.is_empty() {
            return;
        }
        let line = lines[self.faults.pick(lines.len())];
        let vector_bits = self.cfg.bloom.total_bits();
        // The word under strike: all vector bits plus the 2 state bits.
        let bit = self.faults.pick(vector_bits as usize + 2) as u32;
        let Some(meta) = self.hierarchy.meta_mut(core, line) else {
            return;
        };
        let gi = self.faults.pick(meta.len());
        // Bits [0, V) are the candidate vector, [V, V+2) the LState —
        // the packed word makes both the same XOR. Parity is left
        // stale: that is the strike being modeled.
        meta.flip_bit(gi, bit);
        self.corrupt_meta.insert((line, gi));
        self.faults.stats.meta_bits_flipped += 1;
    }

    /// Flips one vector bit in a randomly chosen thread's Lock
    /// Register and marks its parity stale.
    fn inject_register_flip(&mut self) {
        if self.registers.is_empty() {
            return;
        }
        let t = self.faults.pick(self.registers.len());
        let bit = self.faults.pick(self.cfg.bloom.total_bits() as usize) as u32;
        self.registers[t].flip_vector_bit(bit);
        self.corrupt_registers[t] = true;
        self.faults.stats.register_bits_flipped += 1;
    }
}

impl Detector for HardMachine {
    fn name(&self) -> &str {
        "hard"
    }

    fn on_event(&mut self, index: usize, event: &TraceEvent) {
        if self.faults.is_active() {
            self.fault_tick();
        }
        match *event {
            TraceEvent::Op { thread, op } => match op {
                Op::Read { addr, size, site } => {
                    self.on_access(index, thread, addr, size, AccessKind::Read, site);
                }
                Op::Write { addr, size, site } => {
                    self.on_access(index, thread, addr, size, AccessKind::Write, site);
                }
                Op::Lock { lock, .. } => self.on_lock_op(thread, lock, true),
                Op::Unlock { lock, .. } => self.on_lock_op(thread, lock, false),
                Op::Fork { child, .. } => {
                    // §3.1 ownership model: the parent's exclusively
                    // owned granules go back to Virgin so the child can
                    // adopt them without a false foreign transition.
                    self.hierarchy
                        .flash_meta(|meta| meta.fork_transfer_all(thread));
                    let c = self.core_of(thread).index();
                    // §3.1 dummy lock: the child holds it for life.
                    self.ensure_thread(child);
                    self.registers[child.index()].acquire(dummy_lock(child));
                    self.shadow[child.index()].push(dummy_lock(child));
                    self.core_time[c] += self.cfg.latency.sync_op;
                }
                Op::Join { child, .. } => {
                    // The parent inherits the child's dummy lock.
                    let c = self.core_of(thread).index();
                    self.registers[thread.index()].acquire(dummy_lock(child));
                    self.shadow[thread.index()].push(dummy_lock(child));
                    self.core_time[c] += self.cfg.latency.sync_op;
                }
                Op::Barrier { .. } => {
                    let c = self.core_of(thread).index();
                    self.core_time[c] += self.cfg.latency.sync_op;
                }
                Op::Compute { cycles } => {
                    let c = self.core_of(thread).index();
                    self.core_time[c] += u64::from(cycles);
                }
            },
            TraceEvent::BarrierComplete { .. } => self.on_barrier_complete(),
        }
    }

    fn on_batch(&mut self, index: usize, events: &[TraceEvent]) {
        // The batch kernel only specializes the fault-free, unobserved
        // hot path; under fault injection or an attached recorder every
        // per-event side effect (fault ticks, histograms, emits) must
        // interleave exactly as in the scalar path, so delegate to it
        // wholesale.
        if self.faults.is_active() || self.obs.is_on() {
            for (i, e) in events.iter().enumerate() {
                self.on_event(index + i, e);
            }
            return;
        }
        // Pre-pass: hoist the L1 shift/mask line+set arithmetic of
        // every single-line access in the batch (the overwhelmingly
        // common case) out of the dispatch loop.
        let geom = self.cfg.hierarchy.l1;
        let line_bytes = geom.line_bytes();
        self.batch_prep.clear();
        self.batch_prep.extend(events.iter().map(|e| match *e {
            TraceEvent::Op {
                op: Op::Read { addr, size, .. } | Op::Write { addr, size, .. },
                ..
            } => {
                let (line, set) = geom.line_and_set(addr);
                (addr.0 + u64::from(size) <= line.0 + line_bytes).then_some((line, set))
            }
            _ => None,
        }));
        for (i, e) in events.iter().enumerate() {
            match *e {
                TraceEvent::Op { thread, op } => match op {
                    Op::Read { addr, size, site } => match self.batch_prep[i] {
                        Some((line, set)) => self.on_access_prepared(
                            index + i,
                            thread,
                            addr,
                            size,
                            AccessKind::Read,
                            site,
                            line,
                            set,
                        ),
                        // Line-straddling access: the scalar multi-line
                        // walk is the reference behavior.
                        None => {
                            self.on_access(index + i, thread, addr, size, AccessKind::Read, site);
                        }
                    },
                    Op::Write { addr, size, site } => match self.batch_prep[i] {
                        Some((line, set)) => self.on_access_prepared(
                            index + i,
                            thread,
                            addr,
                            size,
                            AccessKind::Write,
                            site,
                            line,
                            set,
                        ),
                        None => {
                            self.on_access(index + i, thread, addr, size, AccessKind::Write, site);
                        }
                    },
                    _ => self.on_event(index + i, e),
                },
                TraceEvent::BarrierComplete { .. } => self.on_barrier_complete(),
            }
        }
        // Fold the window's deferred L1-hit count into the stats; the
        // sums are identical to per-access increments by construction.
        self.hierarchy.flush_deferred_stats();
    }

    fn reports(&self) -> &[RaceReport] {
        &self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hard_trace::{run_detector, ProgramBuilder, SchedConfig, Scheduler, Trace};
    use hard_types::{BarrierId, FaultPlan};

    fn sched(seed: u64) -> Scheduler {
        Scheduler::new(SchedConfig {
            seed,
            max_quantum: 4,
        })
    }

    fn detect(trace: &Trace, cfg: HardConfig) -> (Vec<RaceReport>, HardMachine) {
        let mut m = HardMachine::new(cfg);
        let r = run_detector(&mut m, trace);
        (r, m)
    }

    #[test]
    fn unprotected_sharing_is_flagged() {
        let x = Addr(0x2000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0).write(x, 4, SiteId(1));
        b.thread(1).write(x, 4, SiteId(2));
        let trace = sched(0).run(&b.build());
        let (r, _) = detect(&trace, HardConfig::default());
        assert!(r.iter().any(|r| r.overlaps(x, Addr(x.0 + 4))));
    }

    #[test]
    fn figure1_race_caught_in_every_interleaving() {
        let lock = LockId(0x40);
        let x = Addr(0x2000);
        let y = Addr(0x3000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0)
            .write(x, 4, SiteId(1))
            .lock(lock, SiteId(2))
            .write(y, 4, SiteId(3))
            .unlock(lock, SiteId(4));
        b.thread(1)
            .lock(lock, SiteId(5))
            .write(y, 4, SiteId(6))
            .unlock(lock, SiteId(7))
            .write(x, 4, SiteId(8));
        let p = b.build();
        for seed in 0..16 {
            let trace = sched(seed).run(&p);
            let (r, _) = detect(&trace, HardConfig::default());
            assert!(
                r.iter().any(|r| r.overlaps(x, Addr(x.0 + 4))),
                "seed {seed}: HARD is interleaving-insensitive"
            );
        }
    }

    #[test]
    fn consistent_locking_is_clean() {
        let mut b = ProgramBuilder::new(4);
        for t in 0..4u32 {
            let tp = b.thread(t);
            for i in 0..20u32 {
                tp.lock(LockId(0x40), SiteId(t * 1000 + i))
                    .write(Addr(0x1000), 4, SiteId(5))
                    .read(Addr(0x1000), 4, SiteId(6))
                    .unlock(LockId(0x40), SiteId(t * 1000 + 500 + i));
            }
        }
        let trace = sched(1).run(&b.build());
        let (r, m) = detect(&trace, HardConfig::default());
        assert!(r.is_empty(), "{r:?}");
        assert!(m.total_cycles().0 > 0);
    }

    #[test]
    fn barrier_pruning_suppresses_phase_alarms() {
        let a = Addr(0x500);
        let mut b = ProgramBuilder::new(2);
        b.thread(0)
            .write(a, 4, SiteId(1))
            .barrier(BarrierId(0), SiteId(2));
        b.thread(1)
            .barrier(BarrierId(0), SiteId(3))
            .write(a, 4, SiteId(4));
        let p = b.build();
        let trace = sched(2).run(&p);
        let (with, _) = detect(&trace, HardConfig::default());
        assert!(with.is_empty());
        let raw_cfg = HardConfig {
            barrier_pruning: false,
            ..HardConfig::default()
        };
        let (without, _) = detect(&trace, raw_cfg);
        assert!(!without.is_empty(), "pruning disabled: alarm expected");
    }

    #[test]
    fn l2_displacement_causes_missed_race() {
        // Tiny caches: thrash the L2 between the two racy accesses so
        // the candidate-set evidence is displaced and the race missed.
        let mut cfg = HardConfig::default();
        cfg.hierarchy.l1 = hard_cache::CacheGeometry::new(128, 2, 32);
        cfg.hierarchy.l2 = hard_cache::CacheGeometry::new(256, 2, 32);
        let x = Addr(0x0);
        let mut b = ProgramBuilder::new(2);
        b.thread(0).write(x, 4, SiteId(1));
        // Thrash: walk far more lines than the 256-byte L2 holds.
        let tp = b.thread(0);
        for i in 1..64u64 {
            tp.write(Addr(i * 32), 4, SiteId(100 + i as u32));
        }
        b.thread(1).barrier(BarrierId(9), SiteId(200));
        b.thread(0).barrier(BarrierId(9), SiteId(201));
        b.thread(1).write(x, 4, SiteId(2));
        let p = b.build();
        let trace = sched(0).run(&p);
        // Disable pruning so the barrier (used here only for ordering)
        // does not also reset metadata — we want to isolate eviction.
        let mut cfg_raw = cfg;
        cfg_raw.barrier_pruning = false;
        let (r, m) = detect(&trace, cfg_raw);
        assert!(
            !r.iter().any(|r| r.overlaps(x, Addr(x.0 + 4))),
            "evidence was evicted: race missed"
        );
        assert!(
            m.was_meta_lost(x),
            "the miss is attributable to L2 displacement"
        );
        assert!(m.stats().l2_evictions > 0);
    }

    #[test]
    fn metadata_broadcasts_happen_on_shared_lines() {
        // Two threads read-share a line, then take turns updating the
        // candidate set under different locks: changes on the shared
        // line must broadcast.
        let x = Addr(0x1000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0).read(x, 4, SiteId(1));
        b.thread(1).read(x, 4, SiteId(2));
        for t in 0..2u32 {
            b.thread(t)
                .lock(LockId(0x40), SiteId(10 + t))
                .read(x, 4, SiteId(20 + t))
                .unlock(LockId(0x40), SiteId(30 + t));
        }
        let trace = sched(3).run(&b.build());
        let (_, m) = detect(&trace, HardConfig::default());
        assert!(
            m.stats().meta_broadcasts > 0,
            "candidate-set change on a shared line must broadcast"
        );
    }

    #[test]
    fn timing_advances_and_barrier_syncs_cores() {
        let mut b = ProgramBuilder::new(2);
        b.thread(0).compute(1000).barrier(BarrierId(0), SiteId(1));
        b.thread(1).compute(10).barrier(BarrierId(0), SiteId(2));
        let trace = sched(0).run(&b.build());
        let (_, m) = detect(&trace, HardConfig::default());
        // Both cores end at the barrier: total = slowest core.
        assert!(m.total_cycles().0 >= 1000);
    }

    #[test]
    fn more_threads_than_cores_multiplex() {
        // Six threads on the 4-core machine: threads 0 and 4 share
        // core 0 and pay context switches; detection is unaffected.
        let x = Addr(0x2000);
        let mut b = ProgramBuilder::new(6);
        for t in 0..6u32 {
            let tp = b.thread(t);
            for i in 0..3u32 {
                tp.write(x, 4, SiteId(t * 10 + i)).compute(5);
            }
        }
        let trace = sched(1).run(&b.build());
        let (r, m) = detect(&trace, HardConfig::default());
        assert!(
            r.iter().any(|rr| rr.addr == x),
            "the unprotected sharing is still flagged"
        );
        // Context switches register in the timing: rerun with a free
        // switch and compare.
        let mut free_cfg = HardConfig::default();
        free_cfg.latency.context_switch = 0;
        let (_, free) = detect(&trace, free_cfg);
        assert!(
            m.total_cycles().0 > free.total_cycles().0,
            "context switches must cost cycles ({} vs {})",
            m.total_cycles(),
            free.total_cycles()
        );
    }

    #[test]
    fn figure3_l2_detects_like_table1_when_nothing_evicts() {
        // With a footprint far below both L2 configurations, the L2
        // line organization cannot change detection.
        let mut b = ProgramBuilder::new(2);
        for t in 0..2u32 {
            let tp = b.thread(t);
            for i in 0..10u64 {
                tp.write(Addr(0x1000 + (i % 4) * 32), 4, SiteId(t * 100 + i as u32));
            }
        }
        let trace = sched(2).run(&b.build());
        let (table1, _) = detect(&trace, HardConfig::default());
        let (fig3, _) = detect(&trace, HardConfig::default().with_figure3_l2());
        assert_eq!(table1, fig3);
    }

    #[test]
    fn lock_register_tracks_held_locks() {
        let mut b = ProgramBuilder::new(1);
        b.thread(0).lock(LockId(0x40), SiteId(0));
        let trace = sched(0).run(&b.build());
        let mut m = HardMachine::new(HardConfig::default());
        run_detector(&mut m, &trace);
        assert!(m.lock_register(ThreadId(0)).vector().contains(LockId(0x40)));
        assert_eq!(m.lock_register(ThreadId(0)).depth(), 1);
    }

    /// A workload with enough sharing, locking and fork/join structure
    /// to exercise every fault path.
    fn fault_workload() -> Trace {
        let mut b = ProgramBuilder::new(4);
        for t in 0..4u32 {
            let tp = b.thread(t);
            for i in 0..30u64 {
                tp.lock(LockId(0x40), SiteId(t * 1000 + i as u32))
                    .write(Addr(0x1000 + (i % 6) * 32), 4, SiteId(10 + i as u32))
                    .read(Addr(0x1000 + ((i + 1) % 6) * 32), 4, SiteId(40 + i as u32))
                    .unlock(LockId(0x40), SiteId(t * 1000 + 500 + i as u32))
                    .write(Addr(0x8000 + u64::from(t) * 0x100 + i * 32), 4, SiteId(70))
                    .compute(3);
            }
            tp.barrier(BarrierId(0), SiteId(900 + t));
        }
        sched(5).run(&b.build())
    }

    #[test]
    fn explicit_none_plan_is_bit_identical_to_default() {
        // The fault layer must be invisible when inert: same reports,
        // same cycles, same memory statistics, no fault activity.
        let trace = fault_workload();
        let (r_def, m_def) = detect(&trace, HardConfig::default());
        let cfg = HardConfig::default().with_faults(FaultPlan {
            seed: 777,
            ..FaultPlan::none()
        });
        let (r_none, m_none) = detect(&trace, cfg);
        assert_eq!(r_def, r_none);
        assert_eq!(m_def.total_cycles(), m_none.total_cycles());
        assert_eq!(
            m_def.stats().meta_broadcasts,
            m_none.stats().meta_broadcasts
        );
        assert_eq!(m_none.fault_stats(), hard_types::FaultStats::default());
    }

    #[test]
    fn heavy_faults_never_panic_and_are_counted() {
        let trace = fault_workload();
        for seed in 0..4u64 {
            let cfg = HardConfig::default().with_faults(FaultPlan::uniform(seed, 200_000));
            let (_, m) = detect(&trace, cfg);
            let fs = m.fault_stats();
            assert!(
                fs.injected() > 0,
                "seed {seed}: a 20% uniform plan must fire"
            );
            assert!(
                fs.parity_detections <= fs.meta_bits_flipped + fs.register_bits_flipped,
                "seed {seed}: cannot detect more corruptions than were injected"
            );
            assert_eq!(
                fs.conservative_resets + fs.register_rebuilds,
                fs.parity_detections,
                "seed {seed}: every detection triggers exactly one recovery"
            );
        }
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let trace = fault_workload();
        let cfg = HardConfig::default().with_faults(FaultPlan::uniform(9, 50_000));
        let (r1, m1) = detect(&trace, cfg);
        let (r2, m2) = detect(&trace, cfg);
        assert_eq!(r1, r2);
        assert_eq!(m1.fault_stats(), m2.fault_stats());
        assert_eq!(m1.total_cycles(), m2.total_cycles());
    }

    #[test]
    fn register_corruption_is_repaired_from_the_shadow() {
        // Only register flips: the next event from the corrupted thread
        // rebuilds its Lock/Counter register from the software shadow,
        // so consistent locking still produces no false alarms from
        // register state (metadata is untouched by this fault class).
        let trace = fault_workload();
        let plan = FaultPlan {
            seed: 3,
            register_flip_ppm: 100_000,
            ..FaultPlan::none()
        };
        let (_, m) = detect(&trace, HardConfig::default().with_faults(plan));
        let fs = m.fault_stats();
        assert!(fs.register_bits_flipped > 0);
        assert_eq!(fs.register_rebuilds, fs.parity_detections);
        assert!(
            fs.register_rebuilds > 0,
            "corrupted registers must be rebuilt"
        );
        assert_eq!(fs.conservative_resets, 0, "no metadata was corrupted");
        // After the full run every register matches its shadow exactly.
        for t in 0..4u32 {
            assert_eq!(
                m.lock_register(ThreadId(t)).depth(),
                0,
                "thread {t}: balanced locking leaves an empty register"
            );
        }
    }

    #[test]
    fn meta_corruption_degrades_conservatively() {
        // Metadata flips alone: parity catches the corrupt granule on
        // its next access and resets it to the safe all-ones state. The
        // race-free workload stays panic-free and the machine keeps
        // producing deterministic output.
        let trace = fault_workload();
        let plan = FaultPlan {
            seed: 11,
            meta_bit_flip_ppm: 80_000,
            ..FaultPlan::none()
        };
        let (_, m) = detect(&trace, HardConfig::default().with_faults(plan));
        let fs = m.fault_stats();
        assert!(fs.meta_bits_flipped > 0);
        assert_eq!(fs.register_rebuilds, 0);
        assert!(
            fs.conservative_resets <= fs.meta_bits_flipped,
            "resets only happen for detected corruptions"
        );
    }

    #[test]
    fn broadcast_faults_and_displacements_inject() {
        let trace = fault_workload();
        let plan = FaultPlan {
            seed: 21,
            broadcast_drop_ppm: 500_000,
            broadcast_delay_ppm: 500_000,
            broadcast_delay_events: 8,
            displacement_ppm: 30_000,
            ..FaultPlan::none()
        };
        let (_, m) = detect(&trace, HardConfig::default().with_faults(plan));
        let fs = m.fault_stats();
        assert!(
            fs.broadcasts_dropped + fs.broadcasts_delayed > 0,
            "shared-line updates must hit the broadcast fault path"
        );
        assert!(fs.spurious_displacements > 0);
    }

    #[test]
    fn attached_recorder_observes_the_detection_pipeline() {
        use hard_obs::{CounterId, HistId, MemoryRecorder, ObsHandle};
        use std::sync::Arc;
        let trace = fault_workload();
        let rec = Arc::new(MemoryRecorder::new());
        let mut m = HardMachine::new(HardConfig::default());
        m.attach_recorder(ObsHandle::new(rec.clone()));
        let reports = run_detector(&mut m, &trace);
        let s = rec.snapshot();
        assert!(s.counter(CounterId::CandidateChecks) > 0);
        assert_eq!(s.counter(CounterId::RacesReported), reports.len() as u64);
        assert_eq!(
            s.counter(CounterId::BroadcastsSent),
            m.stats().meta_broadcasts
        );
        assert_eq!(s.counter(CounterId::CacheFills), m.stats().l1_misses);
        // 4 threads x 30 iterations of lock/unlock pairs.
        assert_eq!(s.counter(CounterId::LockAcquires), 120);
        assert_eq!(s.counter(CounterId::LockReleases), 120);
        assert_eq!(s.counter(CounterId::BarrierResets), 1);
        let pop = s.histogram(HistId::BloomPopulation).unwrap();
        assert_eq!(pop.count, s.counter(CounterId::CandidateChecks));
        let depth = s.histogram(HistId::LockDepth).unwrap();
        assert_eq!(depth.count, 240, "one observation per lock op");
    }

    #[test]
    fn noop_recorder_is_bit_identical_to_no_recorder() {
        use hard_obs::{NoopRecorder, ObsHandle};
        use std::sync::Arc;
        let trace = fault_workload();
        let (r_plain, m_plain) = detect(&trace, HardConfig::default());
        let mut m = HardMachine::new(HardConfig::default());
        m.attach_recorder(ObsHandle::new(Arc::new(NoopRecorder)));
        let r_noop = run_detector(&mut m, &trace);
        assert_eq!(r_plain, r_noop);
        assert_eq!(m_plain.total_cycles(), m.total_cycles());
        assert_eq!(m_plain.stats(), m.stats());
    }

    /// A workload whose accesses straddle granules and lines and whose
    /// length crosses several batch boundaries, so the batched run
    /// exercises the span kernel, the straddling fallback and the sync
    /// dispatch paths.
    fn batch_workload() -> Trace {
        let mut b = ProgramBuilder::new(4);
        for t in 0..4u32 {
            let tp = b.thread(t);
            for i in 0..200u64 {
                let a = 0x1000 + (i % 24) * 12 + u64::from(t % 2) * 8;
                let site = SiteId(t * 10_000 + i as u32);
                // Sizes 1..16: some accesses straddle granules, a few
                // straddle the 32-byte line.
                let size = (1 + (i % 16)) as u8;
                if i % 3 == 0 {
                    tp.lock(LockId(0x40), site).write(Addr(a), size, SiteId(7));
                    tp.unlock(LockId(0x40), SiteId(t * 10_000 + 5000 + i as u32));
                } else if i % 3 == 1 {
                    tp.write(Addr(a), size, SiteId(8 + (i % 5) as u32));
                } else {
                    tp.read(Addr(a), size, SiteId(20)).compute(2);
                }
            }
            tp.barrier(BarrierId(1), SiteId(99_000 + t));
        }
        sched(7).run(&b.build())
    }

    #[test]
    fn batched_run_is_bit_identical_to_scalar_for_every_kernel() {
        use hard_bloom::LaneKernel;
        use hard_trace::run_detector_batched;
        let trace = batch_workload();
        let mut scalar = HardMachine::new(HardConfig::default());
        let r_scalar = run_detector(&mut scalar, &trace);
        for kernel in [LaneKernel::Scalar, LaneKernel::Unroll4, LaneKernel::Simd] {
            let mut m = HardMachine::new(HardConfig::default());
            m.set_lane_kernel(kernel);
            let r = run_detector_batched(&mut m, &trace);
            assert_eq!(r_scalar, r, "{} kernel reports diverged", kernel.name());
            assert_eq!(scalar.total_cycles(), m.total_cycles(), "{}", kernel.name());
            assert_eq!(scalar.stats(), m.stats(), "{}", kernel.name());
        }
    }

    #[test]
    fn batched_run_with_faults_or_recorder_delegates_bit_identically() {
        use hard_obs::{MemoryRecorder, ObsHandle};
        use hard_trace::run_detector_batched;
        use std::sync::Arc;
        let trace = batch_workload();
        // Fault-injected runs take the scalar delegation path.
        let cfg = HardConfig::default().with_faults(FaultPlan::uniform(13, 60_000));
        let mut scalar = HardMachine::new(cfg);
        let r_scalar = run_detector(&mut scalar, &trace);
        let mut batched = HardMachine::new(cfg);
        let r_batched = run_detector_batched(&mut batched, &trace);
        assert_eq!(r_scalar, r_batched);
        assert_eq!(scalar.fault_stats(), batched.fault_stats());
        assert_eq!(scalar.total_cycles(), batched.total_cycles());
        // Observed runs do too, with identical counters.
        let rec_s = Arc::new(MemoryRecorder::new());
        let mut m_s = HardMachine::new(HardConfig::default());
        m_s.attach_recorder(ObsHandle::new(rec_s.clone()));
        let r_s = run_detector(&mut m_s, &trace);
        let rec_b = Arc::new(MemoryRecorder::new());
        let mut m_b = HardMachine::new(HardConfig::default());
        m_b.attach_recorder(ObsHandle::new(rec_b.clone()));
        let r_b = run_detector_batched(&mut m_b, &trace);
        assert_eq!(r_s, r_b);
        let (s, b) = (rec_s.snapshot(), rec_b.snapshot());
        for id in [
            CounterId::CandidateChecks,
            CounterId::CandidateEmpties,
            CounterId::RacesReported,
            CounterId::BroadcastsSent,
            CounterId::TraceEvents,
        ] {
            assert_eq!(s.counter(id), b.counter(id), "{id:?} diverged");
        }
    }

    #[test]
    fn injected_race_survives_zero_fault_plan() {
        // The acceptance property in miniature: at rate zero the fault
        // machinery cannot eat a real race.
        let x = Addr(0x2000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0).write(x, 4, SiteId(1));
        b.thread(1).write(x, 4, SiteId(2));
        let trace = sched(0).run(&b.build());
        let cfg = HardConfig::default().with_faults(FaultPlan {
            seed: 5,
            ..FaultPlan::none()
        });
        let (r, _) = detect(&trace, cfg);
        assert!(r.iter().any(|r| r.overlaps(x, Addr(x.0 + 4))));
    }
}
