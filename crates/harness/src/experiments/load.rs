//! `serve-load`: concurrent-session scaling of the async serve tier.
//!
//! The chaos campaign proves the serve tier is *correct* under abuse;
//! this one measures what the async rewrite bought: how many sessions
//! one server multiplexes **concurrently**, and what each costs in
//! resident memory. A small fleet of driver threads opens every
//! session up front (handshake + `Begin`), then interleaves `Data`
//! chunks round-robin across all of them — so at the peak every
//! session is mid-upload at once, the situation that used to pin one
//! pool thread per connection. The study records:
//!
//! * peak concurrent sessions, sampled from the server's `Health`
//!   probe (must reach the configured fleet size — otherwise the
//!   concurrency claim is vacuous);
//! * report correctness: every session's `Report` must be
//!   byte-identical to the offline replay of the same corpus;
//! * the server's peak RSS (`VmHWM` from the child's procfs entry)
//!   before and after the fleet — the per-session memory cost is
//!   `(peak - baseline) / sessions`, which the incremental feed design
//!   bounds at roughly one chunk plus one detector state instead of
//!   one whole trace;
//! * client-observed session latency percentiles.
//!
//! The detection work happens in the `hard-serve` child, so this
//! campaign credits it to the parent's bench accumulator explicitly
//! (one [`crate::bench::account`] per verified report) — a
//! `--bench-out` row from `serve-load` carries the throughput the
//! service actually sustained, and the row's own `peak_rss_bytes`
//! (the client process) stays comparable across PRs.
//!
//! Scale notes for this host: every session costs one client-side fd
//! here plus one accepted fd in the child, so each process's fd limit
//! caps the fleet; with the stock 20k limit the ceiling is just under
//! 20k concurrent sessions. `--repeat` runs additional waves over
//! fresh connections when total session count (not peak concurrency)
//! is the point.

use crate::bench;
use crate::campaign::{injected_trace, CampaignConfig};
use crate::corpus::encode_bytes;
use crate::detectors::DetectorKind;
use crate::experiments::chaos::{await_drain, ServeChild};
use crate::runner::execute_streamed;
use crate::service::{decode_response, probe_health, Submission};
use crate::table::TextTable;
use hard_trace::wire::{
    encode_begin, read_frame, read_handshake, write_frame, write_handshake, FrameKind,
    MAX_FRAME_BYTES,
};
use hard_trace::{ChunkedReader, PackedTrace};
use hard_workloads::App;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Parameters of the load study.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent sessions per wave (one TCP connection each).
    pub sessions: usize,
    /// Waves: each repeats the full fleet on fresh connections, so
    /// total sessions = `sessions * repeat` at peak concurrency
    /// `sessions`.
    pub repeat: usize,
    /// Client driver threads the fleet is split across.
    pub drivers: usize,
    /// `Data` frame payload size; also the unit of per-session server
    /// buffering the RSS claim is about.
    pub chunk: usize,
    /// Detector every session requests.
    pub detector: String,
    /// Fixture shape (scale, injection mode) for the shared corpus.
    pub campaign: CampaignConfig,
    /// Serve-side report cache. Off by default so *every* session pays
    /// for detection — the honest load; on, later sessions are cache
    /// hits and the study measures admission throughput instead.
    pub report_cache: bool,
    /// Path of the `hard-serve` binary to spawn (default: a sibling of
    /// the current executable).
    pub serve_cmd: Option<String>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            sessions: 256,
            repeat: 1,
            drivers: 8,
            chunk: 4 << 10,
            detector: "hard".into(),
            campaign: CampaignConfig::reduced(0.05, 2),
            report_cache: false,
            serve_cmd: None,
        }
    }
}

/// The study's tallies.
#[derive(Clone, Debug)]
pub struct LoadStudy {
    /// Configured concurrent sessions per wave.
    pub sessions: usize,
    /// Waves run.
    pub repeat: usize,
    /// Sessions that returned a report byte-identical to offline
    /// replay.
    pub ok: usize,
    /// Sessions whose report differed — must be zero.
    pub divergent: usize,
    /// Sessions that ended in an error or shed instead of a report.
    pub failed: usize,
    /// Peak concurrent sessions observed through the `Health` probe.
    pub peak_active: usize,
    /// Trace events in the shared corpus (per session).
    pub events_per_session: u64,
    /// Wall time of the whole fleet, all waves.
    pub wall: Duration,
    /// The server child's `VmHWM` right after spawn, if readable.
    pub server_baseline_rss: Option<u64>,
    /// The server child's `VmHWM` after the fleet drained.
    pub server_peak_rss: Option<u64>,
    /// Client-observed session latencies (Begin write → Report
    /// verified), microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Session slots still held after the drain deadline.
    pub leaked_sessions: u64,
    /// In-flight bytes still reserved after the drain deadline.
    pub leaked_bytes: u64,
}

impl LoadStudy {
    fn percentile(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_us.len() - 1) as f64 * p).round() as usize;
        self.latencies_us[idx.min(self.latencies_us.len() - 1)]
    }

    /// Server memory attributable to one concurrent session, in bytes.
    #[must_use]
    pub fn rss_per_session(&self) -> Option<u64> {
        match (self.server_baseline_rss, self.server_peak_rss) {
            (Some(b), Some(p)) if self.sessions > 0 => {
                Some(p.saturating_sub(b) / self.sessions as u64)
            }
            _ => None,
        }
    }

    /// Renders the study as an aligned table.
    #[must_use]
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "sessions",
            "waves",
            "ok",
            "divergent",
            "failed",
            "peak_active",
            "p50_ms",
            "p90_ms",
            "p99_ms",
            "max_ms",
            "sessions_per_s",
            "server_rss_kb",
            "rss_per_session_kb",
        ]);
        let total = self.ok + self.divergent + self.failed;
        let per_s = if self.wall.as_millis() > 0 {
            (total as u128 * 1000 / self.wall.as_millis()) as u64
        } else {
            0
        };
        t.row(vec![
            self.sessions.to_string(),
            self.repeat.to_string(),
            self.ok.to_string(),
            self.divergent.to_string(),
            self.failed.to_string(),
            self.peak_active.to_string(),
            format!("{:.1}", self.percentile(0.50) as f64 / 1000.0),
            format!("{:.1}", self.percentile(0.90) as f64 / 1000.0),
            format!("{:.1}", self.percentile(0.99) as f64 / 1000.0),
            format!("{:.1}", self.percentile(1.0) as f64 / 1000.0),
            per_s.to_string(),
            self.server_peak_rss
                .map_or_else(|| "n/a".into(), |b| (b / 1024).to_string()),
            self.rss_per_session()
                .map_or_else(|| "n/a".into(), |b| (b / 1024).to_string()),
        ]);
        t
    }

    /// Invariant check: every session reported, byte-identical, with
    /// the whole fleet genuinely concurrent and nothing leaked.
    ///
    /// # Errors
    ///
    /// Describes every violated invariant.
    pub fn check(&self) -> Result<(), String> {
        let mut violations = Vec::new();
        if self.divergent > 0 {
            violations.push(format!(
                "{} divergent report(s) — served output differs from offline replay",
                self.divergent
            ));
        }
        if self.failed > 0 {
            violations.push(format!(
                "{} session(s) failed to produce a report",
                self.failed
            ));
        }
        if self.peak_active < self.sessions {
            violations.push(format!(
                "peak concurrent sessions {} never reached the fleet size {} — \
                 the concurrency claim is vacuous",
                self.peak_active, self.sessions
            ));
        }
        if self.leaked_sessions > 0 || self.leaked_bytes > 0 {
            violations.push(format!(
                "leaked {} session slot(s) / {} in-flight byte(s) after drain",
                self.leaked_sessions, self.leaked_bytes
            ));
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("; "))
        }
    }
}

/// Builds the shared corpus fixture and its offline-replay report.
fn fixture(cfg: &LoadConfig) -> Result<(Vec<u8>, String, u64), String> {
    let (trace, injection) = injected_trace(App::WaterNsquared, &cfg.campaign, 0);
    let packed = PackedTrace::from_trace(&trace).map_err(|e| format!("pack failed: {e}"))?;
    let corpus = encode_bytes(&packed, Some(&injection));
    let kind = DetectorKind::parse(&cfg.detector)?;
    let (header, payload_at) = crate::corpus::parse_header(&corpus)?;
    let mut reader = ChunkedReader::spawn(
        std::io::Cursor::new(corpus[payload_at..].to_vec()),
        hard_trace::packed_event::DEFAULT_CHUNK_RECORDS,
    );
    let (run, events, fnv) = execute_streamed(&kind, header.num_threads as usize, &mut reader)?;
    if events != header.events || fnv != header.payload_fnv {
        return Err("fixture replay disagrees with its own header".into());
    }
    let expected = crate::ReportBody {
        label: kind.label().to_string(),
        events,
        reports: run.reports,
    }
    .encode();
    Ok((corpus, expected, events))
}

/// `VmHWM` of an arbitrary process, in bytes (the self-probe in
/// [`bench::peak_rss_bytes`] cannot see a child).
fn child_vm_hwm(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse::<u64>()
        .ok()
        .map(|kb| kb * 1024)
}

/// One driver's verdict tallies for its slice of a wave.
#[derive(Default)]
struct WaveOut {
    ok: usize,
    divergent: usize,
    failed: usize,
    latencies_us: Vec<u64>,
}

/// The upload every session replays, shared read-only by all
/// drivers: pre-encoded wire bytes plus the verdict oracle and the
/// fleet-scaled response deadline.
struct WaveScript<'a> {
    frames: &'a [Vec<u8>],
    begin: &'a [u8],
    end_frame: &'a [u8],
    expected: &'a str,
    read_timeout: Duration,
}

/// One driver's slice of a wave: open all sessions, barrier, upload
/// round-robin, then collect and verify every verdict.
fn drive_wave(
    addr: &str,
    count: usize,
    script: &WaveScript<'_>,
    gate: &Barrier,
) -> Result<WaveOut, String> {
    let mut out = WaveOut::default();
    let mut sessions: Vec<(TcpStream, Instant)> = Vec::with_capacity(count);
    for _ in 0..count {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(script.read_timeout))
            .map_err(|e| format!("timeout: {e}"))?;
        let mut w = &stream;
        let started = Instant::now();
        write_handshake(&mut w).map_err(|e| format!("handshake: {e}"))?;
        w.write_all(script.begin)
            .map_err(|e| format!("Begin: {e}"))?;
        sessions.push((stream, started));
    }
    // Every driver's whole slice is open before any payload flows:
    // peak concurrency is the full fleet by construction.
    gate.wait();
    for f in script.frames {
        for (s, _) in &mut sessions {
            s.write_all(f).map_err(|e| format!("Data: {e}"))?;
        }
    }
    for (s, _) in &mut sessions {
        s.write_all(script.end_frame)
            .map_err(|e| format!("End: {e}"))?;
    }
    for (s, started) in sessions {
        let mut r = std::io::BufReader::new(s);
        read_handshake(&mut r).map_err(|e| format!("handshake echo: {e}"))?;
        let frame = read_frame(&mut r, MAX_FRAME_BYTES).map_err(|e| format!("response: {e}"))?;
        match decode_response(&frame)? {
            Submission::Report { body, .. } => {
                if body.encode() == script.expected {
                    out.ok += 1;
                } else {
                    out.divergent += 1;
                }
            }
            Submission::ServerError { .. } | Submission::Busy { .. } => out.failed += 1,
        }
        out.latencies_us
            .push(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    Ok(out)
}

/// Runs the study.
///
/// # Errors
///
/// Fixture, spawn, connection, and wire errors. Invariant violations
/// are **not** errors here — call [`LoadStudy::check`] to enforce
/// them.
pub fn run(cfg: &LoadConfig) -> Result<LoadStudy, String> {
    let sessions = cfg.sessions.max(1);
    let repeat = cfg.repeat.max(1);
    let drivers = cfg.drivers.clamp(1, sessions);
    let (corpus, expected, events_per_session) = fixture(cfg)?;
    // Pre-encode every frame once; every session writes the same
    // bytes, so the client side adds no per-session buffering beyond
    // the sockets themselves.
    let frames: Vec<Vec<u8>> = corpus
        .chunks(cfg.chunk.max(1))
        .map(|piece| {
            let mut f = Vec::with_capacity(piece.len() + 5);
            write_frame(&mut f, FrameKind::Data, piece).expect("vec write");
            f
        })
        .collect();
    let begin = {
        let mut f = Vec::new();
        write_frame(&mut f, FrameKind::Begin, &encode_begin(&cfg.detector, None))
            .expect("vec write");
        f
    };
    let end_frame = {
        let mut f = Vec::new();
        write_frame(&mut f, FrameKind::End, &[]).expect("vec write");
        f
    };

    // The fleet must fit the admission caps with headroom for the
    // health-probe connections the monitor thread opens.
    let max_sessions = (sessions + 8).to_string();
    let queue_depth = sessions.to_string();
    let max_inflight = (((sessions + 8) as u64) * (corpus.len() as u64).max(1)).to_string();
    let mut extra: Vec<&str> = vec![
        "--max-sessions",
        &max_sessions,
        "--queue-depth",
        &queue_depth,
        "--max-inflight-bytes",
        &max_inflight,
        // Round-robin uploads across a large fleet mean long per-
        // session gaps between chunks; the idle cutoff must cover the
        // whole wave, not one read.
        "--idle-timeout-ms",
        "600000",
    ];
    if !cfg.report_cache {
        extra.push("--no-report-cache");
    }
    let child = ServeChild::spawn(cfg.serve_cmd.as_deref(), &extra)?;
    let addr = child.addr.clone();
    let server_baseline_rss = child_vm_hwm(child.pid());

    // Sample concurrency through the wire-level health probe — the
    // same vantage point an operator's dashboard has.
    let peak = Arc::new(AtomicU64::new(0));
    let sampling = Arc::new(AtomicBool::new(true));
    let monitor = {
        let addr = addr.clone();
        let peak = Arc::clone(&peak);
        let sampling = Arc::clone(&sampling);
        std::thread::spawn(move || {
            while sampling.load(Ordering::Relaxed) {
                if let Ok(h) = probe_health(&addr, Duration::from_secs(5)) {
                    peak.fetch_max(h.active_sessions, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };

    let started = Instant::now();
    let mut study = LoadStudy {
        sessions,
        repeat,
        ok: 0,
        divergent: 0,
        failed: 0,
        peak_active: 0,
        events_per_session,
        wall: Duration::ZERO,
        server_baseline_rss,
        server_peak_rss: None,
        latencies_us: Vec::with_capacity(sessions * repeat),
        leaked_sessions: 0,
        leaked_bytes: 0,
    };
    // The fleet drains through `workers` detection permits, so the
    // last session's verdict lands roughly a whole fleet-detection
    // wall after its `End` — the response-read deadline must scale
    // with the fleet, not sit at a per-read constant (a 10k run on
    // the single-core reference host takes ~13 minutes end to end).
    // The fleet drains through `workers` detection permits, so the
    // last session's verdict lands roughly a whole fleet-detection
    // wall after its `End` — the response-read deadline must scale
    // with the fleet, not sit at a per-read constant (a 10k run on
    // the single-core reference host takes ~28 minutes end to end).
    let script = WaveScript {
        frames: &frames,
        begin: &begin,
        end_frame: &end_frame,
        expected: &expected,
        read_timeout: Duration::from_secs(600).max(Duration::from_millis(250 * sessions as u64)),
    };
    for _ in 0..repeat {
        let gate = Barrier::new(drivers);
        let slices: Vec<usize> = (0..drivers)
            .map(|d| sessions / drivers + usize::from(d < sessions % drivers))
            .collect();
        let waves: Vec<Result<WaveOut, String>> = std::thread::scope(|s| {
            let handles: Vec<_> = slices
                .iter()
                .map(|&count| {
                    let (addr, script, gate) = (&addr, &script, &gate);
                    s.spawn(move || drive_wave(addr, count, script, gate))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("load driver panicked"))
                .collect()
        });
        for wave in waves {
            let wave = wave?;
            study.ok += wave.ok;
            study.divergent += wave.divergent;
            study.failed += wave.failed;
            study.latencies_us.extend(wave.latencies_us);
        }
    }
    study.wall = started.elapsed();
    // The detection ran in the child; credit each verified session's
    // events to this process's bench accumulator so a `--bench-out`
    // row reflects the throughput the service sustained.
    for _ in 0..study.ok {
        bench::account(events_per_session, 0);
    }

    let (leaked_sessions, leaked_bytes) = await_drain(&addr, Duration::from_secs(30));
    study.leaked_sessions = leaked_sessions;
    study.leaked_bytes = leaked_bytes;
    study.server_peak_rss = child_vm_hwm(child.pid());
    sampling.store(false, Ordering::Relaxed);
    monitor.join().expect("monitor");
    study.peak_active = usize::try_from(peak.load(Ordering::Relaxed)).unwrap_or(usize::MAX);
    study.latencies_us.sort_unstable();
    drop(child); // polite shutdown
    Ok(study)
}
