//! `hard-chaos`: seeded network fault injection for the serve tier.
//!
//! PR 1 taught the *machine* to survive seeded hardware faults
//! ([`hard_types::FaultPlan`]); this module extends the same
//! philosophy to the *network*. A [`NetFaultPlan`] describes, as
//! parts-per-million probabilities per I/O operation, four fault
//! classes a production detection service must survive:
//!
//! * **reset** — the connection dies with `ConnectionReset`; every
//!   later operation on the stream fails too (a torn TCP session);
//! * **flip** — one bit of the bytes in transit is inverted (payload
//!   corruption the `HARDCRP1` checksums must catch downstream);
//! * **stall** — the operation is delayed by the plan's stall
//!   duration (a congested or half-dead path);
//! * **short** — a read or write transfers fewer bytes than asked
//!   (legal under the `Read`/`Write` contracts, so correct code must
//!   already cope; chaos makes "already" testable).
//!
//! Faults are drawn from a private deterministic RNG seeded by the
//! plan, so a failing schedule replays exactly given the same
//! operation sequence. A zero-rate plan ([`NetFaultPlan::none`])
//! never touches the RNG and [`FaultyStream`] degenerates to a
//! transparent pass-through — the bit-inertness guarantee the
//! `hard-exp chaos` campaign pins at rate 0.
//!
//! Two consumers:
//!
//! * [`FaultyStream`] wraps any `Read + Write` transport for direct
//!   in-process injection (unit tests, the proxy's data path);
//! * [`ChaosProxy`] is a standalone TCP proxy: clients connect to it,
//!   it forwards to the real `hard-serve` upstream, and every byte of
//!   both directions flows through a per-connection [`FaultyStream`].
//!   The `hard-serve` binary exposes it as `--chaos-proxy`, so a real
//!   deployment can be chaos-tested without touching either endpoint.

use hard_types::Xoshiro256;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Seeded per-operation network fault probabilities, in parts per
/// million. The rates apply independently per fault class to every
/// read and write call on a [`FaultyStream`], mirroring the shape of
/// [`hard_types::FaultPlan`] (per-event ppm) one layer up the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Seed for the private fault RNG.
    pub seed: u64,
    /// Probability (ppm per operation) of a connection reset.
    pub reset_ppm: u32,
    /// Probability (ppm per operation) of a single bit flip in the
    /// bytes transferred by the operation.
    pub flip_ppm: u32,
    /// Probability (ppm per operation) of an artificial stall.
    pub stall_ppm: u32,
    /// Probability (ppm per operation) of a short (partial) transfer.
    pub short_ppm: u32,
    /// How long one injected stall lasts.
    pub stall: Duration,
}

impl NetFaultPlan {
    /// The inert plan: no class can fire and the RNG is never drawn.
    #[must_use]
    pub const fn none() -> NetFaultPlan {
        NetFaultPlan {
            seed: 0,
            reset_ppm: 0,
            flip_ppm: 0,
            stall_ppm: 0,
            short_ppm: 0,
            stall: Duration::from_millis(0),
        }
    }

    /// A plan applying `ppm` uniformly to every fault class, with a
    /// 5 ms stall — the shape the `hard-exp chaos` sweep uses.
    #[must_use]
    pub const fn uniform(seed: u64, ppm: u32) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            reset_ppm: ppm,
            flip_ppm: ppm,
            stall_ppm: ppm,
            short_ppm: ppm,
            stall: Duration::from_millis(5),
        }
    }

    /// True when no fault class can ever fire.
    #[must_use]
    pub const fn is_none(&self) -> bool {
        self.reset_ppm == 0 && self.flip_ppm == 0 && self.stall_ppm == 0 && self.short_ppm == 0
    }

    /// The plan re-seeded for one proxy connection, so each accepted
    /// connection draws an independent — but still reproducible —
    /// fault schedule. The mix constant keeps nearby connection
    /// indices from producing correlated SplitMix streams.
    #[must_use]
    pub const fn for_connection(&self, conn_idx: u64) -> NetFaultPlan {
        let mut p = *self;
        p.seed = self
            .seed
            .wrapping_add(conn_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(1);
        p
    }
}

/// Counts of injected faults, shared between a [`ChaosProxy`] (or any
/// number of [`FaultyStream`]s) and whoever is rendering the campaign
/// table. All counters are monotonic.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections the proxy accepted.
    pub connections: AtomicU64,
    /// Injected connection resets.
    pub resets: AtomicU64,
    /// Injected bit flips.
    pub flips: AtomicU64,
    /// Injected stalls.
    pub stalls: AtomicU64,
    /// Injected short transfers.
    pub shorts: AtomicU64,
    /// Bytes actually forwarded (both directions).
    pub bytes: AtomicU64,
}

/// A point-in-time copy of [`ChaosStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosSnapshot {
    /// Connections the proxy accepted.
    pub connections: u64,
    /// Injected connection resets.
    pub resets: u64,
    /// Injected bit flips.
    pub flips: u64,
    /// Injected stalls.
    pub stalls: u64,
    /// Injected short transfers.
    pub shorts: u64,
    /// Bytes actually forwarded.
    pub bytes: u64,
}

impl ChaosStats {
    /// Reads every counter.
    #[must_use]
    pub fn snapshot(&self) -> ChaosSnapshot {
        ChaosSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            flips: self.flips.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            shorts: self.shorts.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Total injected faults across all classes.
    #[must_use]
    pub fn injected(&self) -> u64 {
        let s = self.snapshot();
        s.resets + s.flips + s.stalls + s.shorts
    }
}

/// What the fault roll decided for one I/O operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Roll {
    Clean,
    Reset,
    Flip,
    Stall,
    Short,
}

/// Samples a [`NetFaultPlan`] through a private deterministic RNG.
struct NetFaultInjector {
    plan: NetFaultPlan,
    rng: Xoshiro256,
}

const PPM: u64 = 1_000_000;

impl NetFaultInjector {
    fn new(plan: NetFaultPlan) -> NetFaultInjector {
        NetFaultInjector {
            plan,
            rng: Xoshiro256::seed_from_u64(plan.seed),
        }
    }

    /// One draw per operation. Classes are checked in severity order
    /// (reset > flip > stall > short) on independent rolls, so a
    /// uniform plan injects each class at very nearly its nominal
    /// rate. The inert plan short-circuits before any RNG draw.
    fn roll(&mut self) -> Roll {
        if self.plan.is_none() {
            return Roll::Clean;
        }
        if self.hit(self.plan.reset_ppm) {
            return Roll::Reset;
        }
        if self.hit(self.plan.flip_ppm) {
            return Roll::Flip;
        }
        if self.hit(self.plan.stall_ppm) {
            return Roll::Stall;
        }
        if self.hit(self.plan.short_ppm) {
            return Roll::Short;
        }
        Roll::Clean
    }

    fn hit(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.rng.gen_range(PPM) < u64::from(ppm)
    }

    /// A uniform index for picking the flipped bit / short length.
    fn pick(&mut self, n: usize) -> usize {
        self.rng.gen_index(n.max(1))
    }
}

/// A `Read + Write` transport that injects the faults of a
/// [`NetFaultPlan`] into every operation.
///
/// After an injected reset, the stream is poisoned: every later read
/// or write fails with `ConnectionReset`, matching what a real torn
/// TCP session looks like to the application. All other fault classes
/// are survivable by a correct peer: flips are caught by the corpus
/// checksums, stalls by deadlines, shorts by ordinary `Read`/`Write`
/// looping.
pub struct FaultyStream<S> {
    inner: S,
    inj: NetFaultInjector,
    poisoned: bool,
    stats: Arc<ChaosStats>,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` under `plan`, reporting injections into `stats`.
    #[must_use]
    pub fn new(inner: S, plan: NetFaultPlan, stats: Arc<ChaosStats>) -> FaultyStream<S> {
        FaultyStream {
            inner,
            inj: NetFaultInjector::new(plan),
            poisoned: false,
            stats,
        }
    }

    /// Unwraps the underlying transport.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn reset_err(&mut self) -> std::io::Error {
        self.poisoned = true;
        self.stats.resets.fetch_add(1, Ordering::Relaxed);
        std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "injected connection reset",
        )
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.poisoned {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "stream previously reset by injected fault",
            ));
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        let mut limit = buf.len();
        match self.inj.roll() {
            Roll::Clean => {}
            Roll::Reset => return Err(self.reset_err()),
            Roll::Stall => {
                self.stats.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.inj.plan.stall);
            }
            Roll::Short => {
                self.stats.shorts.fetch_add(1, Ordering::Relaxed);
                limit = 1 + self.inj.pick(buf.len());
            }
            Roll::Flip => {
                // Deferred until we know how many bytes arrived.
                let n = self.inner.read(&mut buf[..limit])?;
                if n > 0 {
                    let at = self.inj.pick(n);
                    buf[at] ^= 1 << self.inj.pick(8);
                    self.stats.flips.fetch_add(1, Ordering::Relaxed);
                }
                self.stats.bytes.fetch_add(n as u64, Ordering::Relaxed);
                return Ok(n);
            }
        }
        let n = self.inner.read(&mut buf[..limit])?;
        self.stats.bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.poisoned {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "stream previously reset by injected fault",
            ));
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let mut limit = buf.len();
        match self.inj.roll() {
            Roll::Clean => {}
            Roll::Reset => return Err(self.reset_err()),
            Roll::Stall => {
                self.stats.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.inj.plan.stall);
            }
            Roll::Short => {
                self.stats.shorts.fetch_add(1, Ordering::Relaxed);
                limit = 1 + self.inj.pick(buf.len());
            }
            Roll::Flip => {
                let mut corrupted = buf[..limit].to_vec();
                let at = self.inj.pick(corrupted.len());
                corrupted[at] ^= 1 << self.inj.pick(8);
                self.stats.flips.fetch_add(1, Ordering::Relaxed);
                // Report the full length written: from the sender's
                // point of view a flip is invisible.
                self.inner.write_all(&corrupted)?;
                self.stats
                    .bytes
                    .fetch_add(corrupted.len() as u64, Ordering::Relaxed);
                return Ok(limit);
            }
        }
        let n = self.inner.write(&buf[..limit])?;
        self.stats.bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A running chaos TCP proxy.
///
/// Accepts on its own listener, connects each client to `upstream`,
/// and pumps bytes in both directions through per-connection
/// [`FaultyStream`]s derived from the plan via
/// [`NetFaultPlan::for_connection`]. Faults are injected on the
/// *client-facing* side of the pump, so both requests and responses
/// suffer; the upstream socket is left honest, which keeps the proxy's
/// own teardown clean.
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen` (use port 0 for ephemeral), forwarding to
    /// `upstream` under `plan`, and starts the accept loop on a
    /// background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn spawn(listen: &str, upstream: &str, plan: NetFaultPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let upstream = upstream.to_string();
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                accept_loop(&listener, &upstream, plan, &stop, &stats);
            })
        };
        Ok(ChaosProxy {
            addr,
            stop,
            stats,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address (clients connect here).
    #[must_use]
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Live injection counters.
    #[must_use]
    pub fn stats(&self) -> ChaosSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting and joins the accept loop. Connections already
    /// being pumped finish on their own threads.
    pub fn shutdown(mut self) -> ChaosSnapshot {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &str,
    plan: NetFaultPlan,
    stop: &AtomicBool,
    stats: &Arc<ChaosStats>,
) {
    let mut conn_idx = 0u64;
    let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((client, _peer)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn_plan = plan.for_connection(conn_idx);
                conn_idx += 1;
                match TcpStream::connect(upstream) {
                    Ok(server) => {
                        pumps.push(pump_connection(client, server, conn_plan, stats));
                        pumps.retain(|h| !h.is_finished());
                    }
                    Err(_) => {
                        // Upstream refused: drop the client; from its
                        // point of view this is one more connection
                        // fault to retry through.
                        drop(client);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for h in pumps {
        let _ = h.join();
    }
}

/// Spawns the two copy threads of one proxied connection and returns a
/// handle joining both. The client-side socket is split (via
/// `try_clone`) into the two [`FaultyStream`] halves; per-direction
/// injectors come from forking the connection plan's seed so the two
/// directions draw independent schedules.
fn pump_connection(
    client: TcpStream,
    server: TcpStream,
    plan: NetFaultPlan,
    stats: &Arc<ChaosStats>,
) -> std::thread::JoinHandle<()> {
    let mut dir_seed = Xoshiro256::seed_from_u64(plan.seed);
    let mut c2s_plan = plan;
    c2s_plan.seed = dir_seed.next_u64();
    let mut s2c_plan = plan;
    s2c_plan.seed = dir_seed.next_u64();

    let stats_c2s = Arc::clone(stats);
    let stats_s2c = Arc::clone(stats);
    std::thread::spawn(move || {
        let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
            return;
        };
        let up = {
            let server_w = server;
            std::thread::spawn(move || {
                let faulty = FaultyStream::new(client_r, c2s_plan, stats_c2s);
                pump(faulty, server_w);
            })
        };
        let faulty = FaultyStream::new(client, s2c_plan, stats_s2c);
        pump_into_faulty(server_r, faulty);
        let _ = up.join();
    })
}

/// Copies `src` → `dst` until EOF or error, then shuts both ends down
/// so the opposite pump (and the peers) unblock promptly.
fn pump(mut src: FaultyStream<TcpStream>, mut dst: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = dst.shutdown(std::net::Shutdown::Both);
    let _ = src.into_inner().shutdown(std::net::Shutdown::Both);
}

/// Copies `src` → faulty `dst` until EOF or error (the response
/// direction: the fault is applied while *writing* to the client).
fn pump_into_faulty(mut src: TcpStream, mut dst: FaultyStream<TcpStream>) {
    let mut buf = [0u8; 4096];
    loop {
        match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = src.shutdown(std::net::Shutdown::Both);
    let _ = dst.into_inner().shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn stats() -> Arc<ChaosStats> {
        Arc::new(ChaosStats::default())
    }

    #[test]
    fn inert_plan_is_a_transparent_passthrough() {
        let data: Vec<u8> = (0..=255).collect();
        let mut s = FaultyStream::new(Cursor::new(data.clone()), NetFaultPlan::none(), stats());
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);

        let mut w = FaultyStream::new(Cursor::new(Vec::new()), NetFaultPlan::none(), stats());
        w.write_all(&data).unwrap();
        w.flush().unwrap();
        assert_eq!(w.into_inner().into_inner(), data);
    }

    #[test]
    fn same_seed_injects_the_same_schedule() {
        let plan = NetFaultPlan::uniform(42, 200_000);
        let data = vec![0xAAu8; 64];
        let run = |plan| {
            let st = stats();
            let mut w = FaultyStream::new(Cursor::new(Vec::new()), plan, Arc::clone(&st));
            let mut written = Vec::new();
            for _ in 0..200 {
                match w.write(&data) {
                    Ok(n) => written.push(n as i64),
                    Err(_) => written.push(-1),
                }
            }
            (written, w.into_inner().into_inner(), st.snapshot())
        };
        let (a_ops, a_bytes, a_stats) = run(plan);
        let (b_ops, b_bytes, b_stats) = run(plan);
        assert_eq!(a_ops, b_ops);
        assert_eq!(a_bytes, b_bytes);
        assert_eq!(a_stats, b_stats);
        assert!(
            a_stats.resets + a_stats.flips + a_stats.shorts > 0,
            "{a_stats:?}"
        );
    }

    #[test]
    fn different_connection_indices_draw_different_schedules() {
        let base = NetFaultPlan::uniform(7, 150_000);
        let run = |plan: NetFaultPlan| {
            let st = stats();
            let mut w = FaultyStream::new(Cursor::new(Vec::new()), plan, Arc::clone(&st));
            for _ in 0..100 {
                let _ = w.write(&[0u8; 16]);
            }
            st.snapshot()
        };
        let a = run(base.for_connection(0));
        let b = run(base.for_connection(1));
        assert_ne!(base.for_connection(0).seed, base.for_connection(1).seed);
        // Same rates, different schedule: byte counts almost surely
        // differ once shorts/resets land at different offsets.
        assert_ne!((a.bytes, a.resets, a.shorts), (b.bytes, b.resets, b.shorts));
    }

    #[test]
    fn reset_poisons_the_stream() {
        // Reset-only plan at an absurd rate: the very first operation
        // resets, and every subsequent one fails without drawing.
        let plan = NetFaultPlan {
            seed: 1,
            reset_ppm: 1_000_000,
            flip_ppm: 0,
            stall_ppm: 0,
            short_ppm: 0,
            stall: Duration::ZERO,
        };
        let st = stats();
        let mut s = FaultyStream::new(Cursor::new(vec![0u8; 32]), plan, Arc::clone(&st));
        let mut buf = [0u8; 8];
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            std::io::ErrorKind::ConnectionReset
        );
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            std::io::ErrorKind::ConnectionReset
        );
        assert_eq!(st.snapshot().resets, 1, "poisoned ops are not re-counted");
    }

    #[test]
    fn flips_change_exactly_one_bit() {
        let plan = NetFaultPlan {
            seed: 3,
            reset_ppm: 0,
            flip_ppm: 1_000_000,
            stall_ppm: 0,
            short_ppm: 0,
            stall: Duration::ZERO,
        };
        let st = stats();
        let data = vec![0u8; 256];
        let mut w = FaultyStream::new(Cursor::new(Vec::new()), plan, Arc::clone(&st));
        w.write_all(&data).unwrap();
        let out = w.into_inner().into_inner();
        assert_eq!(out.len(), data.len());
        let flipped_bits: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(
            u64::from(flipped_bits),
            st.snapshot().flips,
            "each injected flip inverts exactly one bit"
        );
        assert!(flipped_bits > 0);
    }

    #[test]
    fn proxy_at_rate_zero_is_byte_transparent() {
        // An echo upstream: whatever arrives is written straight back.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 1024];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });

        let proxy =
            ChaosProxy::spawn("127.0.0.1:0", &up_addr.to_string(), NetFaultPlan::none()).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let msg: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        c.write_all(&msg).unwrap();
        let mut back = vec![0u8; msg.len()];
        c.read_exact(&mut back).unwrap();
        assert_eq!(back, msg);
        drop(c);
        echo.join().unwrap();
        let snap = proxy.shutdown();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.resets + snap.flips + snap.stalls + snap.shorts, 0);
        assert!(snap.bytes >= 2 * msg.len() as u64);
    }
}
