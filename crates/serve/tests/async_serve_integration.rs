//! The async rewrite's headline behaviors, proven end to end:
//!
//! 1. **No head-of-line blocking** — with a *single* detection permit,
//!    a slow-loris uploader dribbling bytes must not delay concurrent
//!    fast sessions. Under the old thread-per-session pool this exact
//!    setup serialized everything behind the loris; incrementally fed
//!    sessions only hold a permit while a chunk is actually being
//!    detected, never while waiting for the network.
//! 2. **Mid-`Data` disconnect frees budgets** — a client that uploads
//!    real chunks and vanishes must release its session slot and its
//!    in-flight byte charge, observed through [`Server::stats`].
//! 3. **Shutdown-during-upload is explicit** — a `Shutdown` frame
//!    arriving while another session is mid-upload must hand that
//!    session a shutdown `Error` frame (never a silent close), then
//!    drain cleanly.
//! 4. **Serve-vs-replay byte-identity under `--kernel batch`** — the
//!    served report for a batched-kernel server matches an offline
//!    replay computed with the scalar reference kernel, byte for byte.
//!
//! Scenarios run sequentially inside one `#[test]` because the kernel
//! mode (scenario 4) is process-global state.

use hard_harness::corpus::{self, write_file};
use hard_harness::service::{probe_health, request_shutdown, submit_bytes};
use hard_harness::{
    execute_streamed, injected_trace, CampaignConfig, DetectorKind, KernelMode, ReportBody,
    Submission,
};
use hard_serve::{ServeConfig, Server};
use hard_trace::wire::{
    read_frame, read_handshake, write_frame, write_handshake, FrameKind, MAX_FRAME_BYTES,
};
use hard_trace::PackedTrace;
use hard_workloads::App;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A corpus plus the offline-replay report every served report must
/// match byte for byte. The replay runs under whatever kernel mode is
/// currently installed.
fn fixture(app: App, run_idx: usize, detector: &str, name: &str) -> (Vec<u8>, String) {
    let cfg = CampaignConfig::reduced(0.05, 2);
    let (trace, injection) = injected_trace(app, &cfg, run_idx);
    let packed = PackedTrace::from_trace(&trace).expect("packable");
    let mut path = std::env::temp_dir();
    path.push(format!("hard-async-it-{}-{name}", std::process::id()));
    write_file(&path, &packed, Some(&injection)).expect("write corpus");
    let bytes = std::fs::read(&path).expect("read corpus back");
    let kind = DetectorKind::parse(detector).expect("known detector");
    let (header, mut reader) = corpus::open_streamed(&path).expect("open streamed");
    let (run, events, fnv) =
        execute_streamed(&kind, header.num_threads as usize, &mut reader).expect("offline replay");
    assert_eq!(events, header.events);
    assert_eq!(fnv, header.payload_fnv);
    let _ = std::fs::remove_file(&path);
    let expected = ReportBody {
        label: kind.label().to_string(),
        events,
        reports: run.reports,
    }
    .encode();
    (bytes, expected)
}

fn raw_client(addr: &str) -> (std::io::BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    let w = stream.try_clone().expect("clone");
    (std::io::BufReader::new(stream), w)
}

/// Spins until `cond` holds or the deadline trips.
fn await_cond(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let started = Instant::now();
    while !cond() {
        assert!(
            started.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn async_serve_behaviors() {
    let (bytes, expected) = fixture(App::WaterNsquared, 0, "hard", "main");

    // --- 1. Slow-loris concurrent with fast sessions, ONE detection
    // permit. The loris dribbles a promised Data payload one byte at a
    // time; four fast clients submit complete corpora meanwhile. An
    // architecture that parks a worker per connection deadlocks-by-
    // -queueing here; the incremental design must finish every fast
    // session while the loris is still dribbling.
    {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 4,
            idle_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let stats = server.stats();
        let thread = std::thread::spawn(move || server.run());

        // The loris: handshake, Begin, then one byte of a 1 KiB Data
        // payload every 50 ms. Every byte resets the idle clock, so
        // the server must keep the session open without dedicating
        // any detection capacity to it.
        let loris_addr = addr.clone();
        let loris_started = Instant::now();
        let loris = std::thread::spawn(move || {
            let (_r, mut w) = raw_client(&loris_addr);
            write_handshake(&mut w).unwrap();
            write_frame(&mut w, FrameKind::Begin, b"hard").unwrap();
            w.write_all(&[FrameKind::Data as u8]).unwrap();
            w.write_all(&1024u32.to_le_bytes()).unwrap();
            for _ in 0..60 {
                if w.write_all(&[0x41]).and_then(|()| w.flush()).is_err() {
                    break; // server cut us off; the point is made
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            loris_started.elapsed()
        });
        // Let the loris establish its session before racing it.
        await_cond("loris session to open", Duration::from_secs(5), || {
            stats.active_sessions() >= 1
        });

        let fast: Vec<_> = (0..4)
            .map(|i| {
                let addr = addr.clone();
                let bytes = bytes.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let started = Instant::now();
                    match submit_bytes(&addr, &bytes, "hard", 32 << 10).expect("fast submit") {
                        Submission::Report { body, .. } => {
                            assert_eq!(body.encode(), expected, "fast client {i} diverged");
                        }
                        other => panic!("fast client {i} got {other:?}"),
                    }
                    started.elapsed()
                })
            })
            .collect();
        let slowest = fast
            .into_iter()
            .map(|h| h.join().expect("fast client"))
            .max()
            .expect("four clients");
        let loris_lived = loris.join().expect("loris");
        assert!(
            slowest < Duration::from_secs(2),
            "a fast session took {slowest:?} — it queued behind the loris"
        );
        assert!(
            loris_lived > slowest,
            "loris ended ({loris_lived:?}) before the slowest fast session \
             ({slowest:?}); the head-of-line claim was not exercised"
        );
        await_cond("sessions to drain", Duration::from_secs(10), || {
            stats.active_sessions() == 0 && stats.inflight_bytes() == 0
        });
        request_shutdown(&addr).expect("shutdown");
        thread.join().expect("join").expect("clean drain");
    }

    // --- 2. Mid-Data disconnect: upload real chunks, confirm the
    // byte budget is charged, vanish. Slot and budget must both free.
    {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let stats = server.stats();
        let thread = std::thread::spawn(move || server.run());
        {
            let (mut r, mut w) = raw_client(&addr);
            write_handshake(&mut w).unwrap();
            read_handshake(&mut r).unwrap();
            write_frame(&mut w, FrameKind::Begin, b"hard").unwrap();
            for chunk in bytes.chunks(8 << 10).take(3) {
                write_frame(&mut w, FrameKind::Data, chunk).unwrap();
            }
            w.flush().unwrap();
            await_cond("byte budget to charge", Duration::from_secs(5), || {
                stats.inflight_bytes() > 0
            });
        } // both halves drop: TCP FIN mid-session
        await_cond(
            "slot and budget to free after disconnect",
            Duration::from_secs(10),
            || stats.active_sessions() == 0 && stats.inflight_bytes() == 0,
        );
        let health = probe_health(&addr, Duration::from_secs(5)).expect("health");
        assert!(health.ready, "drained server must be ready again");
        request_shutdown(&addr).expect("shutdown");
        thread.join().expect("join").expect("clean drain");
    }

    // --- 3. Shutdown during an open upload: the mid-upload session
    // gets an explicit shutdown Error frame, never a silent close.
    {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let stats = server.stats();
        let thread = std::thread::spawn(move || server.run());

        let (mut r, mut w) = raw_client(&addr);
        write_handshake(&mut w).unwrap();
        read_handshake(&mut r).unwrap();
        write_frame(&mut w, FrameKind::Begin, b"hard").unwrap();
        write_frame(&mut w, FrameKind::Data, &bytes[..8 << 10]).unwrap();
        w.flush().unwrap();
        await_cond("upload session to open", Duration::from_secs(5), || {
            stats.active_sessions() >= 1 && stats.inflight_bytes() > 0
        });

        request_shutdown(&addr).expect("shutdown accepted");
        let f = read_frame(&mut r, MAX_FRAME_BYTES).expect("explicit shutdown verdict");
        assert_eq!(f.kind, FrameKind::Error, "got {:?}", f.kind);
        assert!(
            f.text().contains("shutting down"),
            "shutdown verdict must say so: {}",
            f.text()
        );
        thread
            .join()
            .expect("join")
            .expect("drain with open upload");
    }

    // --- 4. Byte-identity under the batched kernel: offline replay
    // with the scalar reference kernel, serve with the batched one.
    {
        let prior = hard_harness::kernel::installed();
        hard_harness::kernel::install(KernelMode::Scalar);
        let (bytes, scalar_expected) = fixture(App::WaterNsquared, 1, "hard", "batch");
        hard_harness::kernel::install(KernelMode::Batch);
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let thread = std::thread::spawn(move || server.run());
        match submit_bytes(&addr, &bytes, "hard", 16 << 10).expect("batched submit") {
            Submission::Report { body, .. } => assert_eq!(
                body.encode(),
                scalar_expected,
                "batched-kernel serve diverged from scalar offline replay"
            ),
            other => panic!("batched submit got {other:?}"),
        }
        request_shutdown(&addr).expect("shutdown");
        thread.join().expect("join").expect("clean drain");
        hard_harness::kernel::install(prior);
    }
}
