//! Fault-rate sweep: graceful degradation of the HARD machine under
//! injected hardware faults.
//!
//! The paper evaluates HARD on fault-free hardware; this experiment
//! asks what a deployed detector does when its own metadata hardware
//! misbehaves. For each uniform fault rate (ppm per event, applied to
//! every fault class of [`FaultPlan`]) it reruns the Table 2 campaign
//! pipeline on HARD-with-faults and tallies bugs detected, false
//! alarms, conservative resets and injected faults.
//!
//! Two properties anchor the sweep:
//!
//! * the **zero-rate row is bit-identical** to the Table 2 HARD
//!   column — the fault layer is free when inert;
//! * every run completes with a structured outcome — panics and
//!   divergence are campaign *results* (`faulted` / `timed out`
//!   columns, expected to stay zero), not crashes.

use crate::campaign::{
    alarm_sites, injected_cell, probes, race_free_cell, score, BugOutcome, CampaignConfig,
};
use crate::checkpoint::{Cell, Checkpoint};
use crate::detectors::DetectorKind;
use crate::runner::{execute_hardened_cell, RunLimits, RunOutcome};
use crate::table::TextTable;
use hard::HardConfig;
use hard_types::FaultPlan;
use hard_workloads::App;

/// Parameters of the fault sweep.
#[derive(Clone, Debug)]
pub struct FaultsConfig {
    /// The underlying campaign (scale, runs, quantum, inject mode).
    pub campaign: CampaignConfig,
    /// Uniform fault rates to sweep, in parts-per-million per event.
    pub rates_ppm: Vec<u32>,
    /// Per-run resource bounds.
    pub limits: RunLimits,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            campaign: CampaignConfig::default(),
            rates_ppm: vec![0, 10, 100, 1_000, 10_000, 100_000],
            limits: RunLimits::unlimited(),
        }
    }
}

impl FaultsConfig {
    /// The checkpoint key binding a file to this exact sweep.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "scale={:?} runs={} quantum={} mode={:?} rates={:?} max_cycles={:?} max_events={:?}",
            self.campaign.scale,
            self.campaign.runs,
            self.campaign.max_quantum,
            self.campaign.mode,
            self.rates_ppm,
            self.limits.max_cycles,
            self.limits.max_events,
        )
    }
}

/// One `(rate, app)` cell with its application attached.
#[derive(Clone, Debug)]
pub struct FaultsRow {
    /// The application.
    pub app: App,
    /// The tallies.
    pub cell: Cell,
}

/// The full sweep result.
#[derive(Clone, Debug)]
pub struct FaultsStudy {
    /// One row per `(rate, app)`, rates outermost, paper app order.
    pub rows: Vec<FaultsRow>,
    /// Injected runs per cell.
    pub runs: usize,
    /// Cells served from the checkpoint instead of recomputed.
    pub resumed: usize,
}

/// The deterministic fault seed of one campaign run. Distinct per
/// (rate, app, run) so repeated cells reproduce exactly.
fn fault_seed(rate_ppm: u32, app: App, run_idx: usize) -> u64 {
    u64::from(rate_ppm) * 1_000_003 + (app as u64) * 131 + run_idx as u64
}

/// The HARD configuration for one faulted run.
fn hard_with_faults(rate_ppm: u32, seed: u64) -> DetectorKind {
    let plan = if rate_ppm == 0 {
        FaultPlan::none()
    } else {
        FaultPlan::uniform(seed, rate_ppm)
    };
    DetectorKind::Hard(HardConfig::default().with_faults(plan))
}

fn compute_cell(app: App, rate_ppm: u32, cfg: &FaultsConfig) -> Cell {
    let mut cell = Cell {
        rate_ppm,
        detected: 0,
        faulted: 0,
        timed_out: 0,
        alarms: 0,
        resets: 0,
        injected: 0,
        cycles: 0,
        broadcasts: 0,
    };

    // False alarms on the race-free execution at this fault rate.
    let rf = race_free_cell(app, &cfg.campaign);
    let kind = hard_with_faults(rate_ppm, fault_seed(rate_ppm, app, usize::MAX >> 1));
    match execute_hardened_cell(&kind, &rf, &[], cfg.limits) {
        RunOutcome::Ok(run, m) => {
            cell.alarms = alarm_sites(&run).len();
            cell.resets += m.faults.conservative_resets;
            cell.injected += m.faults.injected();
            cell.cycles += m.cycles;
            cell.broadcasts += m.meta_broadcasts;
        }
        RunOutcome::Faulted { .. } => cell.faulted += 1,
        RunOutcome::TimedOut { .. } => cell.timed_out += 1,
    }

    // Bug detection over the injected runs.
    for run_idx in 0..cfg.campaign.runs {
        let (trace, injection) = injected_cell(app, &cfg.campaign, run_idx);
        let pr = probes(&injection);
        let kind = hard_with_faults(rate_ppm, fault_seed(rate_ppm, app, run_idx));
        match execute_hardened_cell(&kind, &trace, &pr, cfg.limits) {
            RunOutcome::Ok(run, m) => {
                if score(&run, &injection) == BugOutcome::Detected {
                    cell.detected += 1;
                }
                cell.resets += m.faults.conservative_resets;
                cell.injected += m.faults.injected();
                cell.cycles += m.cycles;
                cell.broadcasts += m.meta_broadcasts;
            }
            RunOutcome::Faulted { .. } => cell.faulted += 1,
            RunOutcome::TimedOut { .. } => cell.timed_out += 1,
        }
    }
    cell
}

/// Runs the sweep, optionally resuming from (and recording into) a
/// checkpoint. Within a rate the six applications fan out over the
/// campaign pool (`cfg.campaign.jobs` workers; `1` is truly serial);
/// cells are made durable on the calling thread as each rate
/// completes, preserving the checkpoint's rate-ordered layout.
#[must_use]
pub fn run(cfg: &FaultsConfig, mut checkpoint: Option<&mut Checkpoint>) -> FaultsStudy {
    let mut rows = Vec::new();
    let mut resumed = 0;
    for &rate in &cfg.rates_ppm {
        let apps = App::all();
        let cached: Vec<Option<Cell>> = apps
            .iter()
            .map(|a| checkpoint.as_deref().and_then(|cp| cp.get(rate, a.name())))
            .collect();
        let todo: Vec<App> = apps
            .iter()
            .zip(&cached)
            .filter(|(_, c)| c.is_none())
            .map(|(&app, _)| app)
            .collect();
        let fresh: Vec<(App, Cell)> =
            crate::parallel::map_cells(cfg.campaign.jobs, &todo, |_, &app| {
                (app, compute_cell(app, rate, cfg))
            });
        if let Some(cp) = checkpoint.as_deref_mut() {
            for (app, cell) in &fresh {
                // A failed append degrades to in-memory-only: the sweep
                // result is unaffected, only resumability is lost.
                let _ = cp.record(app.name(), *cell);
            }
        }
        let mut fresh_it = fresh.into_iter();
        for (&app, cached_cell) in apps.iter().zip(&cached) {
            let cell = match cached_cell {
                Some(c) => {
                    resumed += 1;
                    *c
                }
                None => {
                    let (fapp, cell) = fresh_it.next().expect("one fresh cell per uncached app");
                    debug_assert_eq!(fapp, app);
                    cell
                }
            };
            rows.push(FaultsRow { app, cell });
        }
    }
    FaultsStudy {
        rows,
        runs: cfg.campaign.runs,
        resumed,
    }
}

/// Aggregate tallies of one fault rate across all applications.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RateAgg {
    /// Uniform fault rate in parts-per-million.
    pub rate_ppm: u32,
    /// Bugs detected across all apps.
    pub detected: usize,
    /// Source-level false alarms across all apps.
    pub alarms: usize,
    /// Conservative metadata resets.
    pub resets: u64,
    /// Runs that panicked inside the detector.
    pub faulted: usize,
    /// Runs that exceeded a deadline.
    pub timed_out: usize,
    /// Faults injected.
    pub injected: u64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// §3.4 metadata broadcasts issued.
    pub broadcasts: u64,
}

impl FaultsStudy {
    /// Aggregate tallies per rate, in sweep order.
    #[must_use]
    pub fn per_rate(&self) -> Vec<RateAgg> {
        let mut out: Vec<RateAgg> = Vec::new();
        for r in &self.rows {
            if out.last().map(|o| o.rate_ppm) != Some(r.cell.rate_ppm) {
                out.push(RateAgg {
                    rate_ppm: r.cell.rate_ppm,
                    ..RateAgg::default()
                });
            }
            let o = out.last_mut().expect("just pushed");
            o.detected += r.cell.detected;
            o.alarms += r.cell.alarms;
            o.resets += r.cell.resets;
            o.faulted += r.cell.faulted;
            o.timed_out += r.cell.timed_out;
            o.injected += r.cell.injected;
            o.cycles += r.cell.cycles;
            o.broadcasts += r.cell.broadcasts;
        }
        out
    }

    /// Renders the per-application sweep.
    #[must_use]
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "fault rate",
            "application",
            "bugs detected",
            "false alarms",
            "conservative resets",
            "faults injected",
            "crashed",
            "timed out",
            "cycles",
            "meta broadcasts",
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{}ppm", r.cell.rate_ppm),
                r.app.name().into(),
                format!("{}/{}", r.cell.detected, self.runs),
                r.cell.alarms.to_string(),
                r.cell.resets.to_string(),
                r.cell.injected.to_string(),
                r.cell.faulted.to_string(),
                r.cell.timed_out.to_string(),
                r.cell.cycles.to_string(),
                r.cell.broadcasts.to_string(),
            ]);
        }
        t
    }

    /// Renders the per-rate aggregate (the headline degradation curve).
    #[must_use]
    pub fn render_aggregate(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "fault rate",
            "bugs detected",
            "false alarms",
            "conservative resets",
            "faults injected",
            "crashed",
            "timed out",
            "cycles",
            "meta broadcasts",
        ]);
        let apps = App::all().len();
        for a in self.per_rate() {
            t.row(vec![
                format!("{}ppm", a.rate_ppm),
                format!("{}/{}", a.detected, self.runs * apps),
                a.alarms.to_string(),
                a.resets.to_string(),
                a.injected.to_string(),
                a.faulted.to_string(),
                a.timed_out.to_string(),
                a.cycles.to_string(),
                a.broadcasts.to_string(),
            ]);
        }
        t
    }
}

impl std::fmt::Display for FaultsStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render_aggregate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table2;

    fn reduced(rates: Vec<u32>) -> FaultsConfig {
        FaultsConfig {
            campaign: CampaignConfig::reduced(0.08, 3),
            rates_ppm: rates,
            limits: RunLimits::unlimited(),
        }
    }

    #[test]
    fn zero_rate_reproduces_the_table2_hard_column() {
        let cfg = reduced(vec![0]);
        let study = run(&cfg, None);
        let t2 = table2::run(&cfg.campaign);
        assert_eq!(study.rows.len(), t2.rows.len());
        for (fr, tr) in study.rows.iter().zip(&t2.rows) {
            assert_eq!(fr.app, tr.app);
            assert_eq!(fr.cell.detected, tr.hard.detected, "{}", fr.app);
            assert_eq!(fr.cell.alarms, tr.hard.alarms, "{}", fr.app);
            assert_eq!(fr.cell.resets, 0, "{}", fr.app);
            assert_eq!(fr.cell.injected, 0, "{}", fr.app);
            assert!(fr.cell.cycles > 0, "{}: runs consume cycles", fr.app);
            assert!(fr.cell.broadcasts > 0, "{}: sharing broadcasts", fr.app);
        }
    }

    #[test]
    fn sweep_is_panic_free_and_counts_faults() {
        let cfg = reduced(vec![0, 50_000]);
        let study = run(&cfg, None);
        assert_eq!(study.rows.len(), 12);
        for r in &study.rows {
            assert_eq!(r.cell.faulted, 0, "{}@{}ppm", r.app, r.cell.rate_ppm);
            assert_eq!(r.cell.timed_out, 0, "{}@{}ppm", r.app, r.cell.rate_ppm);
        }
        let agg = study.per_rate();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].injected, 0, "zero rate injects nothing");
        assert!(agg[1].injected > 0, "5% rate injects faults");
        assert!(agg[1].resets > 0, "meta flips cause conservative resets");
        assert!(agg[0].cycles > 0 && agg[1].cycles > 0);
        let rendered = study.render_aggregate().to_string();
        assert!(rendered.contains("50000ppm"));
        assert!(rendered.contains("cycles"));
    }

    #[test]
    fn checkpoint_resume_reproduces_the_sweep() {
        let mut p = std::env::temp_dir();
        p.push(format!("hard-faults-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let cfg = reduced(vec![0, 20_000]);

        let mut cp = Checkpoint::load(&p, &cfg.key()).unwrap();
        let full = run(&cfg, Some(&mut cp));
        assert_eq!(full.resumed, 0);
        assert_eq!(cp.len(), 12);

        // "Interrupt" by reloading: every cell now comes from disk.
        let mut cp2 = Checkpoint::load(&p, &cfg.key()).unwrap();
        let resumed = run(&cfg, Some(&mut cp2));
        assert_eq!(resumed.resumed, 12);
        for (a, b) in full.rows.iter().zip(&resumed.rows) {
            assert_eq!(a.app, b.app);
            assert_eq!(a.cell, b.cell, "{}@{}ppm", a.app, a.cell.rate_ppm);
        }
        let _ = std::fs::remove_file(&p);
    }
}
