/root/repo/target/debug/deps/hard_bloom-7a07bc19b18a7233.d: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs crates/bloom/src/exact.rs crates/bloom/src/registers.rs crates/bloom/src/vector.rs

/root/repo/target/debug/deps/hard_bloom-7a07bc19b18a7233: crates/bloom/src/lib.rs crates/bloom/src/analysis.rs crates/bloom/src/exact.rs crates/bloom/src/registers.rs crates/bloom/src/vector.rs

crates/bloom/src/lib.rs:
crates/bloom/src/analysis.rs:
crates/bloom/src/exact.rs:
crates/bloom/src/registers.rs:
crates/bloom/src/vector.rs:
