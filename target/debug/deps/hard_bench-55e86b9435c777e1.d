/root/repo/target/debug/deps/hard_bench-55e86b9435c777e1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hard_bench-55e86b9435c777e1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
