//! The process-wide epoll reactor.
//!
//! One detached thread owns the epoll instance and a monotonic timer
//! heap. Futures park themselves by registering a [`Waker`] against a
//! file descriptor direction (read/write readiness) or a deadline;
//! the reactor wakes them and forgets them — re-arming is the
//! future's job on its next poll, which keeps the registration state
//! machine trivial (no edge-trigger bookkeeping, no oneshot rearm
//! races) at the cost of one `epoll_ctl` per park.
//!
//! Spurious wakes are deliberately legal everywhere: a stale timer or
//! a coalesced readiness event re-polls a future that then simply
//! parks again.

use crate::sys;
use std::collections::HashMap;
use std::os::fd::RawFd;
use std::sync::{Mutex, OnceLock};
use std::task::Waker;
use std::time::Instant;

/// Which readiness direction a future is waiting for.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Readable (also covers accept).
    Read,
    /// Writable (also covers connect completion).
    Write,
}

#[derive(Default)]
struct FdWakers {
    read: Option<Waker>,
    write: Option<Waker>,
    /// The event mask currently armed in the epoll set.
    armed: u32,
}

struct TimerEntry {
    when: Instant,
    seq: u64,
    waker: Waker,
}

// Min-heap ordering by deadline (ties broken by insertion sequence).
impl PartialEq for TimerEntry {
    fn eq(&self, other: &TimerEntry) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &TimerEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &TimerEntry) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // deadline on top.
        other
            .when
            .cmp(&self.when)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Timers {
    heap: std::collections::BinaryHeap<TimerEntry>,
    seq: u64,
}

pub(crate) struct Reactor {
    epfd: RawFd,
    wake_fd: RawFd,
    fds: Mutex<HashMap<RawFd, FdWakers>>,
    timers: Mutex<Timers>,
}

static REACTOR: OnceLock<&'static Reactor> = OnceLock::new();

/// The lazily started global reactor.
///
/// # Panics
///
/// Panics if the kernel refuses an epoll instance — without one, no
/// async I/O is possible at all, so there is nothing to degrade to.
pub(crate) fn reactor() -> &'static Reactor {
    REACTOR.get_or_init(|| {
        let r: &'static Reactor =
            Box::leak(Box::new(Reactor::new().expect("create epoll reactor")));
        std::thread::Builder::new()
            .name("hard-aio-reactor".into())
            .spawn(move || r.run())
            .expect("spawn reactor thread");
        r
    })
}

impl Reactor {
    fn new() -> std::io::Result<Reactor> {
        let epfd = sys::create_epoll()?;
        let wake_fd = sys::create_eventfd()?;
        sys::ctl(epfd, sys::EPOLL_CTL_ADD, wake_fd, sys::EPOLLIN)?;
        Ok(Reactor {
            epfd,
            wake_fd,
            fds: Mutex::new(HashMap::new()),
            timers: Mutex::new(Timers {
                heap: std::collections::BinaryHeap::new(),
                seq: 0,
            }),
        })
    }

    /// Parks `waker` until `fd` is ready in direction `dir`.
    pub(crate) fn register(&self, fd: RawFd, dir: Dir, waker: &Waker) {
        let mut fds = self.fds.lock().expect("reactor fd table");
        let entry = fds.entry(fd).or_default();
        match dir {
            Dir::Read => entry.read = Some(waker.clone()),
            Dir::Write => entry.write = Some(waker.clone()),
        }
        let mut want = sys::EPOLLRDHUP;
        if entry.read.is_some() {
            want |= sys::EPOLLIN;
        }
        if entry.write.is_some() {
            want |= sys::EPOLLOUT;
        }
        if entry.armed == 0 {
            let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, want);
        } else if entry.armed != want {
            let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, want);
        }
        entry.armed = want;
    }

    /// Forgets every registration for `fd`. Must run before the fd is
    /// closed (socket wrappers call it from `Drop`).
    pub(crate) fn deregister(&self, fd: RawFd) {
        let mut fds = self.fds.lock().expect("reactor fd table");
        if let Some(entry) = fds.remove(&fd) {
            if entry.armed != 0 {
                let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0);
            }
            drop(fds);
            // Anyone still parked on the fd gets a spurious wake and
            // re-polls against the closed descriptor, surfacing a
            // clean error instead of hanging.
            if let Some(w) = entry.read {
                w.wake();
            }
            if let Some(w) = entry.write {
                w.wake();
            }
        }
    }

    /// Parks `waker` until `when`.
    pub(crate) fn register_timer(&self, when: Instant, waker: &Waker) {
        let mut timers = self.timers.lock().expect("reactor timer heap");
        timers.seq += 1;
        let seq = timers.seq;
        let earliest = timers.heap.peek().map(|t| t.when);
        timers.heap.push(TimerEntry {
            when,
            seq,
            waker: waker.clone(),
        });
        drop(timers);
        // Only interrupt epoll_wait when this deadline moves the
        // wake-up earlier than whatever the reactor is sleeping for.
        if earliest.is_none_or(|e| when < e) {
            sys::signal_eventfd(self.wake_fd);
        }
    }

    fn next_timeout_ms(&self) -> i32 {
        let timers = self.timers.lock().expect("reactor timer heap");
        match timers.heap.peek() {
            None => -1,
            Some(t) => {
                let now = Instant::now();
                if t.when <= now {
                    return 0;
                }
                let ms = t.when.duration_since(now).as_millis();
                // +1: round up so we never wake a hair early and spin.
                i32::try_from(ms + 1).unwrap_or(i32::MAX)
            }
        }
    }

    fn fire_due_timers(&self) {
        let now = Instant::now();
        let mut due = Vec::new();
        {
            let mut timers = self.timers.lock().expect("reactor timer heap");
            while timers.heap.peek().is_some_and(|t| t.when <= now) {
                due.push(timers.heap.pop().expect("peeked entry").waker);
            }
        }
        for w in due {
            w.wake();
        }
    }

    fn dispatch(&self, fd: RawFd, events: u32) {
        let mut woken: (Option<Waker>, Option<Waker>) = (None, None);
        {
            let mut fds = self.fds.lock().expect("reactor fd table");
            let Some(entry) = fds.get_mut(&fd) else {
                return;
            };
            let err = events & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
            if err || events & sys::EPOLLIN != 0 {
                woken.0 = entry.read.take();
            }
            if err || events & sys::EPOLLOUT != 0 {
                woken.1 = entry.write.take();
            }
            let mut want = sys::EPOLLRDHUP;
            if entry.read.is_some() {
                want |= sys::EPOLLIN;
            }
            if entry.write.is_some() {
                want |= sys::EPOLLOUT;
            }
            if entry.read.is_none() && entry.write.is_none() {
                let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0);
                fds.remove(&fd);
            } else if want != entry.armed {
                let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, want);
                entry.armed = want;
            }
        }
        if let Some(w) = woken.0 {
            w.wake();
        }
        if let Some(w) = woken.1 {
            w.wake();
        }
    }

    fn run(&self) -> ! {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
        loop {
            let timeout = self.next_timeout_ms();
            let n = sys::wait(self.epfd, &mut events, timeout).unwrap_or(0);
            for ev in &events[..n] {
                let fd = ev.data as RawFd;
                if fd == self.wake_fd {
                    sys::drain_eventfd(self.wake_fd);
                } else {
                    self.dispatch(fd, ev.events);
                }
            }
            self.fire_due_timers();
        }
    }
}
