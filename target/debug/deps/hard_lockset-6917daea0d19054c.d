/root/repo/target/debug/deps/hard_lockset-6917daea0d19054c.d: crates/lockset/src/lib.rs crates/lockset/src/bloom_table.rs crates/lockset/src/ideal.rs crates/lockset/src/meta.rs crates/lockset/src/setrepr.rs crates/lockset/src/state.rs

/root/repo/target/debug/deps/hard_lockset-6917daea0d19054c: crates/lockset/src/lib.rs crates/lockset/src/bloom_table.rs crates/lockset/src/ideal.rs crates/lockset/src/meta.rs crates/lockset/src/setrepr.rs crates/lockset/src/state.rs

crates/lockset/src/lib.rs:
crates/lockset/src/bloom_table.rs:
crates/lockset/src/ideal.rs:
crates/lockset/src/meta.rs:
crates/lockset/src/setrepr.rs:
crates/lockset/src/state.rs:
