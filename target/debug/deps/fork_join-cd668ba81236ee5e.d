/root/repo/target/debug/deps/fork_join-cd668ba81236ee5e.d: tests/fork_join.rs

/root/repo/target/debug/deps/fork_join-cd668ba81236ee5e: tests/fork_join.rs

tests/fork_join.rs:
