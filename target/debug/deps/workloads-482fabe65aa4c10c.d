/root/repo/target/debug/deps/workloads-482fabe65aa4c10c.d: crates/bench/benches/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-482fabe65aa4c10c.rmeta: crates/bench/benches/workloads.rs Cargo.toml

crates/bench/benches/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
