//! Synchronization-clock state: the part of happens-before tracking
//! that lives *outside* the per-line metadata.
//!
//! Thread clocks and lock clocks correspond to what a hardware
//! implementation keeps in per-core registers and in the lock objects'
//! memory; they are never lost to cache displacement. Only the
//! per-granule access histories ([`crate::meta::LineClocks`]) are
//! subject to the hardware's in-cache approximation.

use crate::clock::VectorClock;
use hard_types::{LockId, ThreadId};
use std::collections::BTreeMap;

/// Thread, lock and barrier clocks with the standard happens-before
/// update rules.
#[derive(Clone, Debug)]
pub struct SyncClocks {
    threads: Vec<VectorClock>,
    locks: BTreeMap<LockId, VectorClock>,
    num_threads: usize,
}

impl SyncClocks {
    /// Initial clocks for `num_threads` threads: each thread starts at
    /// epoch 1 in its own component.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    #[must_use]
    pub fn new(num_threads: usize) -> SyncClocks {
        let threads = (0..num_threads)
            .map(|t| {
                let mut c = VectorClock::new(num_threads);
                c.tick(ThreadId(t as u32));
                c
            })
            .collect();
        SyncClocks {
            threads,
            locks: BTreeMap::new(),
            num_threads,
        }
    }

    /// Number of threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The current clock of thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn thread(&self, t: ThreadId) -> &VectorClock {
        &self.threads[t.index()]
    }

    /// Lock acquire: the acquiring thread learns everything the last
    /// releaser knew (release-to-acquire edge).
    pub fn acquire(&mut self, t: ThreadId, lock: LockId) {
        if let Some(lc) = self.locks.get(&lock) {
            self.threads[t.index()].join(lc);
        }
    }

    /// Lock release: the lock clock becomes the releaser's clock, and
    /// the releaser starts a new epoch.
    pub fn release(&mut self, t: ThreadId, lock: LockId) {
        let tc = &mut self.threads[t.index()];
        self.locks.insert(lock, tc.clone());
        tc.tick(t);
    }

    /// Thread creation edge: the child starts knowing everything the
    /// parent knew at the fork; the parent begins a new epoch.
    pub fn fork(&mut self, parent: ThreadId, child: ThreadId) {
        let pc = self.threads[parent.index()].clone();
        self.threads[child.index()].join(&pc);
        self.threads[parent.index()].tick(parent);
    }

    /// Thread completion edge: the parent learns everything the child
    /// did before finishing.
    pub fn join_thread(&mut self, parent: ThreadId, child: ThreadId) {
        let cc = self.threads[child.index()].clone();
        self.threads[parent.index()].join(&cc);
    }

    /// Barrier completion: all threads join the common supremum and
    /// start new epochs. Everything before the barrier happens before
    /// everything after it.
    pub fn barrier_all(&mut self) {
        let mut sup = VectorClock::new(self.num_threads);
        for c in &self.threads {
            sup.join(c);
        }
        for (i, c) in self.threads.iter_mut().enumerate() {
            *c = sup.clone();
            c.tick(ThreadId(i as u32));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const L: LockId = LockId(0x40);

    #[test]
    fn initial_epochs_are_concurrent() {
        let s = SyncClocks::new(2);
        assert_eq!(s.num_threads(), 2);
        assert_eq!(s.thread(T0).partial_cmp_clock(s.thread(T1)), None);
    }

    #[test]
    fn release_acquire_creates_edge() {
        let mut s = SyncClocks::new(2);
        let before_release = s.thread(T0).clone();
        s.release(T0, L);
        s.acquire(T1, L);
        assert!(
            before_release.happens_before(s.thread(T1)),
            "t0's pre-release knowledge flows to t1"
        );
    }

    #[test]
    fn acquire_of_untouched_lock_is_noop() {
        let mut s = SyncClocks::new(2);
        let before = s.thread(T1).clone();
        s.acquire(T1, L);
        assert_eq!(s.thread(T1), &before);
    }

    #[test]
    fn release_starts_new_epoch() {
        let mut s = SyncClocks::new(2);
        let e0 = s.thread(T0).get(T0);
        s.release(T0, L);
        assert_eq!(s.thread(T0).get(T0), e0 + 1);
    }

    #[test]
    fn same_lock_does_not_order_unrelated_past() {
        // t1 acquires before t0 ever releases: no edge.
        let mut s = SyncClocks::new(2);
        s.acquire(T1, L);
        s.release(T1, L);
        assert_eq!(s.thread(T1).get(T0), 0, "t1 learned nothing about t0");
    }

    #[test]
    fn barrier_orders_everything() {
        let mut s = SyncClocks::new(3);
        let snapshots: Vec<VectorClock> = (0..3).map(|t| s.thread(ThreadId(t)).clone()).collect();
        s.barrier_all();
        for snap in &snapshots {
            for t in 0..3 {
                assert!(snap.happens_before(s.thread(ThreadId(t))));
            }
        }
        // Post-barrier epochs are concurrent again.
        assert_eq!(s.thread(T0).partial_cmp_clock(s.thread(T1)), None);
    }
}
