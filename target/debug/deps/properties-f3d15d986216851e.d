/root/repo/target/debug/deps/properties-f3d15d986216851e.d: crates/cache/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f3d15d986216851e.rmeta: crates/cache/tests/properties.rs Cargo.toml

crates/cache/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
