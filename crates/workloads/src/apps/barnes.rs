//! barnes: Barnes-Hut N-body simulation.
//!
//! Signature: a hot tree root plus per-node locks on the octree's upper
//! levels, all of them touched *frequently* by every thread during tree
//! construction — conflicting accesses to the same node are temporally
//! dense, which is why happens-before detects every injected race here
//! (10/10 in the paper, same as HARD). Moderate footprint, moderate
//! false sharing among per-body flags.

use crate::common::{AppBuilder, WorkloadConfig};
use hard_trace::Program;

/// Generates the barnes-like program.
#[must_use]
pub fn generate(cfg: &WorkloadConfig) -> Program {
    let mut b = AppBuilder::new(cfg);
    let threads = b.threads as u32;

    let root = b.locked_var(); // tree root: hottest node
    let nodes: Vec<_> = (0..16).map(|_| b.locked_var()).collect();
    let rotations: Vec<_> = (0..5).map(|_| b.rotation_var()).collect();
    let era_gate = b.locked_var();
    let flags: Vec<_> = (0..5).map(|_| b.flag_pair()).collect();
    let benign: Vec<_> = (0..4).map(|_| b.benign_race()).collect();
    let clusters = b.fs_clusters(&[(4, 4), (8, 5), (16, 4)]);

    let phases = 3;
    let inserts_per_node = b.scaled(6);
    let stream_chunk = (b.scaled(96 * 1024 / (16 * 6)) as u64).max(32) / 32 * 32;
    let barriers: Vec<_> = (0..phases).map(|_| b.barrier_point()).collect();
    // The body array is cache-resident across phases.
    let regions: Vec<_> = (0..threads)
        .map(|t| b.stream_region(t, stream_chunk.max(32) * 96))
        .collect();
    let mut sweep_pos = vec![0u64; threads as usize];

    for (phase, bp) in barriers.iter().enumerate() {
        for node in &nodes {
            for t in 0..threads {
                b.read_locked(t, node);
            }
        }
        for t in 0..threads {
            b.read_locked(t, &root);
            b.read_locked(t, &era_gate);
        }
        // Tree build: bodies are inserted by walking from the root to a
        // random node; both get locked updates, so the same node is
        // contended by all threads within a short window.
        let sweep_len = nodes.len() * inserts_per_node;
        for t in 0..threads {
            let sched = b.fs_schedule(&clusters, phase, phases, sweep_len, t);
            for touches in &sched {
                b.update(t, &root);
                let ni = b.rng.gen_index(nodes.len());
                let node = nodes[ni];
                b.update(t, &node);
                let region = regions[t as usize];
                b.stream_over(t, &region, sweep_pos[t as usize], stream_chunk);
                sweep_pos[t as usize] += stream_chunk;
                b.compute(t, 100);
                for &ci in touches {
                    let c = clusters[ci].clone();
                    b.fs_touch_one(&c, t);
                }
            }
        }
        for r in &rotations {
            for t in 0..threads {
                b.rotation_update(t, r, false);
            }
        }
        for t in 0..threads {
            b.update(t, &era_gate);
        }
        for r in &rotations {
            for t in 0..threads {
                b.rotation_update(t, r, true);
            }
        }
        for (i, f) in flags.iter().enumerate() {
            let producer = (i as u32) % threads;
            b.flag_produce(producer, f);
            b.flag_consume((producer + 1) % threads, f);
        }
        for &v in &benign {
            for t in 0..threads {
                b.benign_write(t, v);
            }
        }
        b.arrive_all(bp);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hard_trace::{SchedConfig, Scheduler, TraceStats};

    #[test]
    fn has_the_barnes_signature() {
        let p = generate(&WorkloadConfig::reduced(0.05));
        let trace = Scheduler::new(SchedConfig::default()).run(&p);
        let s = TraceStats::from_trace(&trace);
        assert_eq!(s.barrier_completes, 3);
        assert!(s.distinct_locks >= 17, "root + 16 nodes at least");
        // The root is the hottest lock: lock density is high relative
        // to accesses.
        assert!(s.locks as f64 / s.accesses() as f64 > 0.02);
    }
}
