//! The handle instrumentation sites call through.
//!
//! [`ObsHandle`] wraps `Option<Arc<dyn Recorder>>`. The off state is
//! `None`: every operation is one discriminant test and event/span
//! payloads are built inside closures that never run. Machines store
//! a handle directly (it is `Clone + Debug + Default`, so `derive`d
//! machine impls keep working) and cloning a machine shares its
//! recorder.

use crate::event::Event;
use crate::metric::{CounterId, GaugeId, HistId};
use crate::recorder::{GaugeOp, Recorder};
use std::sync::Arc;
use std::time::Instant;

/// A cheap, clonable handle to a [`Recorder`], or the inert default.
#[derive(Clone, Default)]
pub struct ObsHandle {
    inner: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "ObsHandle(on)"
        } else {
            "ObsHandle(off)"
        })
    }
}

impl ObsHandle {
    /// The disabled handle: bit- and perf-inert.
    #[must_use]
    pub const fn off() -> ObsHandle {
        ObsHandle { inner: None }
    }

    /// A handle delivering to `recorder`.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>) -> ObsHandle {
        ObsHandle {
            inner: Some(recorder),
        }
    }

    /// True when a recorder is attached. Hot loops hoist this to skip
    /// per-iteration payload preparation.
    #[inline]
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn counter(&self, id: CounterId, delta: u64) {
        if let Some(r) = &self.inner {
            r.counter(id, delta);
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn histogram(&self, id: HistId, value: u64) {
        if let Some(r) = &self.inner {
            r.histogram(id, value);
        }
    }

    /// Sets a gauge to an absolute value.
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, value: i64) {
        if let Some(r) = &self.inner {
            r.gauge(id, GaugeOp::Set(value));
        }
    }

    /// Adds `delta` to a gauge.
    #[inline]
    pub fn gauge_add(&self, id: GaugeId, delta: i64) {
        if let Some(r) = &self.inner {
            r.gauge(id, GaugeOp::Add(delta));
        }
    }

    /// Subtracts `delta` from a gauge.
    #[inline]
    pub fn gauge_sub(&self, id: GaugeId, delta: i64) {
        if let Some(r) = &self.inner {
            r.gauge(id, GaugeOp::Sub(delta));
        }
    }

    /// Records a discrete event; `build` runs only when the handle is
    /// on, so the off path never constructs the event.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if let Some(r) = &self.inner {
            r.event(&build());
        }
    }

    /// Starts a named span. `name` runs only when the handle is on.
    /// Pair with [`ObsHandle::span_end`].
    #[must_use]
    pub fn span(&self, name: impl FnOnce() -> String) -> SpanTimer {
        SpanTimer {
            open: self.inner.as_ref().map(|_| (name(), Instant::now())),
            trace: None,
        }
    }

    /// Starts a named span carrying a session trace ID; its
    /// [`crate::Event::SpanEnd`] (and [`crate::SpanRecord`]) will be
    /// tagged with the ID so per-session timelines can be
    /// reconstructed from the JSONL stream.
    #[must_use]
    pub fn span_traced(&self, trace: u64, name: impl FnOnce() -> String) -> SpanTimer {
        SpanTimer {
            open: self.inner.as_ref().map(|_| (name(), Instant::now())),
            trace: Some(trace),
        }
    }

    /// Records a finished span whose wall time was measured *outside*
    /// a [`SpanTimer`] — accumulated across async task polls, carried
    /// over a channel, or replayed after the fact. `name` runs only
    /// when the handle is on. This is the stage-instrumentation entry
    /// point for async servers, where one logical stage (say, feeding
    /// a session's chunks through detection) is spread over many
    /// scheduler slices and no single timer brackets it.
    #[inline]
    pub fn span_external(
        &self,
        trace: Option<u64>,
        name: impl FnOnce() -> String,
        wall: std::time::Duration,
        events: u64,
    ) {
        if let Some(r) = &self.inner {
            r.event(&Event::SpanEnd {
                name: name(),
                wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
                cycles: 0,
                events,
                trace,
            });
        }
    }

    /// Finishes a span, attributing simulated `cycles` and trace
    /// `events` to it. A timer started on an off handle is ignored.
    pub fn span_end(&self, timer: SpanTimer, cycles: u64, events: u64) {
        let Some((name, start)) = timer.open else {
            return;
        };
        let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(r) = &self.inner {
            r.event(&Event::SpanEnd {
                name,
                wall_ns,
                cycles,
                events,
                trace: timer.trace,
            });
        }
    }
}

/// An open span started by [`ObsHandle::span`] or
/// [`ObsHandle::span_traced`].
#[derive(Debug)]
pub struct SpanTimer {
    open: Option<(String, Instant)>,
    trace: Option<u64>,
}

impl SpanTimer {
    /// A timer that records nothing when ended.
    #[must_use]
    pub const fn inert() -> SpanTimer {
        SpanTimer {
            open: None,
            trace: None,
        }
    }

    /// Wall time elapsed since the span started, in microseconds;
    /// `None` for a timer started on an off handle. Lets one timer
    /// feed both a span and a stage histogram.
    #[must_use]
    pub fn elapsed_us(&self) -> Option<u64> {
        self.open
            .as_ref()
            .map(|(_, start)| u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;

    #[test]
    fn off_handle_never_builds_payloads() {
        let h = ObsHandle::off();
        assert!(!h.is_on());
        h.counter(CounterId::RacesReported, 1);
        h.histogram(HistId::LockDepth, 1);
        h.emit(|| unreachable!("off handle must not build events"));
        let t = h.span(|| unreachable!("off handle must not name spans"));
        h.span_end(t, 1, 1);
    }

    #[test]
    fn on_handle_delivers_and_spans_time() {
        let rec = Arc::new(MemoryRecorder::new());
        let h = ObsHandle::new(rec.clone());
        assert!(h.is_on());
        h.counter(CounterId::RacesReported, 2);
        let t = h.span(|| "phase".to_string());
        h.span_end(t, 10, 20);
        let s = rec.snapshot();
        assert_eq!(s.counter(CounterId::RacesReported), 2);
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].name, "phase");
        assert_eq!(s.spans[0].cycles, 10);
        assert_eq!(s.spans[0].events, 20);
    }

    #[test]
    fn traced_spans_carry_the_trace_id() {
        let rec = Arc::new(MemoryRecorder::new());
        let h = ObsHandle::new(rec.clone());
        let t = h.span_traced(0xfeed, || "serve:detect".to_string());
        assert!(t.elapsed_us().is_some());
        h.span_end(t, 0, 5);
        let s = rec.snapshot();
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].trace, Some(0xfeed));
        // Untraced spans stay untagged.
        let t = h.span(|| "phase".to_string());
        h.span_end(t, 0, 0);
        assert_eq!(rec.snapshot().spans[1].trace, None);
        // Off-handle timers surface no elapsed time.
        assert_eq!(SpanTimer::inert().elapsed_us(), None);
    }

    #[test]
    fn external_spans_record_deferred_wall_times() {
        let rec = Arc::new(MemoryRecorder::new());
        let h = ObsHandle::new(rec.clone());
        h.span_external(
            Some(0xabc),
            || "serve:queue-wait".to_string(),
            std::time::Duration::from_micros(1500),
            7,
        );
        let s = rec.snapshot();
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].name, "serve:queue-wait");
        assert_eq!(s.spans[0].trace, Some(0xabc));
        assert_eq!(s.spans[0].wall_ns, 1_500_000);
        assert_eq!(s.spans[0].events, 7);
        // Off handle: the name closure must never run.
        ObsHandle::off().span_external(
            None,
            || unreachable!("off handle must not name spans"),
            std::time::Duration::ZERO,
            0,
        );
    }

    #[test]
    fn gauges_route_through_the_handle() {
        let rec = Arc::new(MemoryRecorder::new());
        let h = ObsHandle::new(rec.clone());
        h.gauge_add(GaugeId::ServeActiveSessions, 2);
        h.gauge_sub(GaugeId::ServeActiveSessions, 1);
        h.gauge_set(GaugeId::ServeQueueDepth, 7);
        let s = rec.snapshot();
        assert_eq!(s.gauge(GaugeId::ServeActiveSessions), 1);
        assert_eq!(s.gauge(GaugeId::ServeQueueDepth), 7);
        // Off handle: no panic, no effect.
        let off = ObsHandle::off();
        off.gauge_add(GaugeId::ServeBusyWorkers, 1);
    }

    #[test]
    fn clones_share_the_recorder() {
        let rec = Arc::new(MemoryRecorder::new());
        let a = ObsHandle::new(rec.clone());
        let b = a.clone();
        a.counter(CounterId::TraceEvents, 1);
        b.counter(CounterId::TraceEvents, 1);
        assert_eq!(rec.snapshot().counter(CounterId::TraceEvents), 2);
        assert_eq!(format!("{a:?}"), "ObsHandle(on)");
        assert_eq!(format!("{:?}", ObsHandle::off()), "ObsHandle(off)");
    }
}
