//! Cross-crate integration tests: workload generation → scheduling →
//! detection → scoring, exercised through the public facade.

use hard_repro::core::{HardConfig, HardMachine, HbMachine, HbMachineConfig};
use hard_repro::harness::{
    execute, injected_trace, probes, race_free_trace, score, BugOutcome, CampaignConfig,
    DetectorKind,
};
use hard_repro::lockset::{IdealLockset, IdealLocksetConfig};
use hard_repro::trace::{codec, run_detector, Detector};
use hard_repro::types::Addr;
use hard_repro::workloads::App;

fn cfg() -> CampaignConfig {
    CampaignConfig::reduced(0.08, 4)
}

#[test]
fn every_app_flows_through_every_detector() {
    for app in App::all() {
        let trace = race_free_trace(app, &cfg());
        assert!(trace.len() > 100, "{app}");
        for kind in [
            DetectorKind::hard_default(),
            DetectorKind::lockset_ideal(),
            DetectorKind::hb_default(),
            DetectorKind::hb_ideal(),
        ] {
            let run = execute(&kind, &trace, &[]);
            // Race-free runs still produce (false) alarms; they must be
            // deterministic.
            let run2 = execute(&kind, &trace, &[]);
            assert_eq!(run.reports, run2.reports, "{app}/{kind}");
        }
    }
}

#[test]
fn detectors_see_identical_executions() {
    // The trace is computed once and shared; detectors cannot perturb
    // it. Verify by value equality of two independent constructions.
    let (a, ia) = injected_trace(App::Fmm, &cfg(), 1);
    let (b, ib) = injected_trace(App::Fmm, &cfg(), 1);
    assert_eq!(a, b);
    assert_eq!(ia, ib);
}

#[test]
fn ideal_lockset_dominates_hard_on_identical_traces() {
    // The ideal implementation has strictly more resources: anything
    // HARD detects, it detects (on these campaigns).
    for app in [App::Barnes, App::WaterNsquared, App::Raytrace] {
        for run_idx in 0..4 {
            let (trace, inj) = injected_trace(app, &cfg(), run_idx);
            let pr = probes(&inj);
            let hard = score(&execute(&DetectorKind::hard_default(), &trace, &pr), &inj);
            let ideal = score(&execute(&DetectorKind::lockset_ideal(), &trace, &pr), &inj);
            if hard == BugOutcome::Detected {
                assert_eq!(
                    ideal,
                    BugOutcome::Detected,
                    "{app} run {run_idx}: ideal must dominate"
                );
            }
        }
    }
}

#[test]
fn traces_roundtrip_through_the_codec_with_identical_detection() {
    let (trace, _) = injected_trace(App::Barnes, &cfg(), 0);
    let mut buf = Vec::new();
    codec::encode(&trace, &mut buf).expect("encode");
    let back = codec::decode(buf.as_slice()).expect("decode");
    assert_eq!(trace, back);

    let mut d1 = HardMachine::new(HardConfig::default());
    let r1 = run_detector(&mut d1, &trace);
    let mut d2 = HardMachine::new(HardConfig::default());
    let r2 = run_detector(&mut d2, &back);
    assert_eq!(r1, r2, "replayed traces detect identically");
}

#[test]
fn hardware_and_ideal_agree_on_small_footprints() {
    // With a footprint far below the L2 and line-isolated variables,
    // HARD's three approximations are all inactive at 4-byte
    // granularity + unbounded metadata: the detectors agree on which
    // *target granules* race. (water at tiny scale fits entirely.)
    let c = CampaignConfig::reduced(0.05, 3);
    for run_idx in 0..3 {
        let (trace, inj) = injected_trace(App::WaterNsquared, &c, run_idx);
        let pr = probes(&inj);
        let hard = execute(&DetectorKind::hard_default(), &trace, &pr);
        let mut ideal = IdealLockset::new(IdealLocksetConfig::default());
        run_detector(&mut ideal, &trace);
        let hard_hit = score(&hard, &inj).is_detected();
        let ideal_hit = ideal
            .reports()
            .iter()
            .any(|r| inj.overlaps(r.addr, Addr(r.addr.0 + u64::from(r.size))));
        assert_eq!(hard_hit, ideal_hit, "run {run_idx}");
    }
}

#[test]
fn wrong_lock_injections_are_caught_by_lockset() {
    // The second bug class: a critical section locked with the wrong
    // lock. Lockset catches it for the same reason it catches an
    // omitted pair — the candidate set intersection empties.
    use hard_repro::workloads::inject_wrong_lock;
    let cfg = CampaignConfig::reduced(0.08, 1);
    let mut caught = 0;
    let mut total = 0;
    for app in [App::Barnes, App::WaterNsquared, App::Raytrace] {
        let program = app.generate(&cfg.workload(app));
        for seed in 0..4u64 {
            let (injected, info) = inject_wrong_lock(&program, seed).unwrap();
            let trace = hard_repro::trace::Scheduler::new(hard_repro::trace::SchedConfig {
                seed,
                max_quantum: 8,
            })
            .run(&injected);
            let mut d = IdealLockset::new(IdealLocksetConfig::default());
            let reports = run_detector(&mut d, &trace);
            total += 1;
            if reports
                .iter()
                .any(|r| info.overlaps(r.addr, Addr(r.addr.0 + u64::from(r.size))))
            {
                caught += 1;
            }
        }
    }
    assert!(
        caught * 10 >= total * 8,
        "wrong-lock races should be widely caught ({caught}/{total})"
    );
}

#[test]
fn machines_report_plausible_statistics() {
    let trace = race_free_trace(App::Raytrace, &cfg());
    let mut hard = HardMachine::new(HardConfig::default());
    run_detector(&mut hard, &trace);
    let stats = hard.stats();
    assert!(stats.accesses() > 0);
    assert!(stats.l1_hit_rate() > 0.5, "raytrace is cache friendly");
    assert!(hard.total_cycles().0 > 0);

    let mut hb = HbMachine::new(HbMachineConfig::default());
    run_detector(&mut hb, &trace);
    assert_eq!(
        hb.stats().accesses(),
        stats.accesses(),
        "identical executions touch memory identically"
    );
}
