/root/repo/target/debug/deps/bloom_ops-6750018c46c54c10.d: crates/bench/benches/bloom_ops.rs

/root/repo/target/debug/deps/bloom_ops-6750018c46c54c10: crates/bench/benches/bloom_ops.rs

crates/bench/benches/bloom_ops.rs:
