/root/repo/target/release/deps/hard-05dfe15f4bd5b285.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/directory_machine.rs crates/core/src/hb_machine.rs crates/core/src/hybrid.rs crates/core/src/machine.rs crates/core/src/metadata.rs crates/core/src/software.rs

/root/repo/target/release/deps/libhard-05dfe15f4bd5b285.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/directory_machine.rs crates/core/src/hb_machine.rs crates/core/src/hybrid.rs crates/core/src/machine.rs crates/core/src/metadata.rs crates/core/src/software.rs

/root/repo/target/release/deps/libhard-05dfe15f4bd5b285.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/directory_machine.rs crates/core/src/hb_machine.rs crates/core/src/hybrid.rs crates/core/src/machine.rs crates/core/src/metadata.rs crates/core/src/software.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/directory_machine.rs:
crates/core/src/hb_machine.rs:
crates/core/src/hybrid.rs:
crates/core/src/machine.rs:
crates/core/src/metadata.rs:
crates/core/src/software.rs:
