/root/repo/target/debug/examples/quickstart-192624071baa6db0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-192624071baa6db0: examples/quickstart.rs

examples/quickstart.rs:
