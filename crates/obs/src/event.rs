//! Discrete detection-pipeline events.
//!
//! Events are the high-information complement to counters: each one
//! names a specific line/granule/thread, and the JSONL stream of them
//! is what `hard-exp obs` writes under `results/`. Payloads are raw
//! integers — this crate cannot see the workspace's newtypes — so
//! emit sites pass `addr.0`, `site.0`, `thread.0`.
//!
//! Construction is wrapped in a closure at every emit site
//! ([`crate::ObsHandle::emit`]) so a disabled handle never builds the
//! event at all.

use crate::jsonl;
use crate::metric::GaugeId;

/// One observable occurrence inside a machine or the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A deduplicated race report.
    Race {
        /// Access address.
        addr: u64,
        /// Source site of the racing access.
        site: u32,
        /// Reporting thread.
        thread: u32,
    },
    /// A candidate intersection emptied at this granule.
    CandidateEmpty {
        /// Line base address.
        line: u64,
        /// Granule index within the line.
        granule: u32,
        /// Accessing thread.
        thread: u32,
    },
    /// A piggybacked metadata broadcast went out on the bus.
    Broadcast {
        /// Line base address.
        line: u64,
    },
    /// An injected fault silently dropped a broadcast.
    BroadcastDropped {
        /// Line base address.
        line: u64,
    },
    /// An injected fault deferred a broadcast.
    BroadcastDelayed {
        /// Line base address.
        line: u64,
        /// Events the delivery waits.
        wait_events: u64,
    },
    /// An L2 eviction displaced a line (and possibly its metadata).
    Displacement {
        /// Victim line base address.
        line: u64,
        /// Valid metadata sectors lost with it.
        sectors_lost: u32,
    },
    /// A refetched line found its metadata had been lost earlier.
    RefetchAfterLoss {
        /// Line base address.
        line: u64,
    },
    /// Parity caught corrupt metadata; the granule was reset to the
    /// conservative all-ones state.
    ConservativeReset {
        /// Line base address.
        line: u64,
        /// Granule index within the line.
        granule: u32,
    },
    /// A corrupt lock register was rebuilt from the software shadow.
    RegisterRebuild {
        /// Owning thread.
        thread: u32,
    },
    /// A barrier flash-reset swept the metadata (§3.5 pruning).
    BarrierReset {
        /// Granules visited by the sweep.
        granules: u64,
    },
    /// A named span finished (harness phase attribution).
    SpanEnd {
        /// Span name, e.g. `detect/barnes`.
        name: String,
        /// Wall-clock duration in nanoseconds.
        wall_ns: u64,
        /// Simulated cycles attributed to the span (0 if untimed).
        cycles: u64,
        /// Trace events attributed to the span.
        events: u64,
        /// Session trace ID the span belongs to, rendered as 16 hex
        /// digits in the JSONL stream when present.
        trace: Option<u64>,
    },
    /// A gauge moved (emitted by the recorder itself when a JSONL
    /// stream is attached, so timelines can correlate load spikes
    /// with latency).
    Gauge {
        /// Which gauge moved.
        id: GaugeId,
        /// Its value after the move.
        value: i64,
    },
    /// A session crossed the slow-session threshold; the structured
    /// complement of the server's stderr slow-session log line.
    SlowSession {
        /// The session's trace ID.
        trace: u64,
        /// End-to-end session wall time in microseconds.
        wall_us: u64,
        /// The configured threshold in microseconds.
        threshold_us: u64,
    },
}

impl Event {
    /// Stable kind tag used in the JSONL stream.
    #[must_use]
    pub const fn kind(&self) -> &'static str {
        match self {
            Event::Race { .. } => "race",
            Event::CandidateEmpty { .. } => "candidate_empty",
            Event::Broadcast { .. } => "broadcast",
            Event::BroadcastDropped { .. } => "broadcast_dropped",
            Event::BroadcastDelayed { .. } => "broadcast_delayed",
            Event::Displacement { .. } => "displacement",
            Event::RefetchAfterLoss { .. } => "refetch_after_loss",
            Event::ConservativeReset { .. } => "conservative_reset",
            Event::RegisterRebuild { .. } => "register_rebuild",
            Event::BarrierReset { .. } => "barrier_reset",
            Event::SpanEnd { .. } => "span_end",
            Event::Gauge { .. } => "gauge",
            Event::SlowSession { .. } => "slow_session",
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    /// Every object carries `seq` and `kind`; the remaining keys are
    /// kind-specific.
    #[must_use]
    pub fn to_json(&self, seq: u64) -> String {
        let mut s = format!("{{\"seq\":{seq},\"kind\":\"{}\"", self.kind());
        match self {
            Event::Race { addr, site, thread } => {
                push_num(&mut s, "addr", *addr);
                push_num(&mut s, "site", u64::from(*site));
                push_num(&mut s, "thread", u64::from(*thread));
            }
            Event::CandidateEmpty {
                line,
                granule,
                thread,
            } => {
                push_num(&mut s, "line", *line);
                push_num(&mut s, "granule", u64::from(*granule));
                push_num(&mut s, "thread", u64::from(*thread));
            }
            Event::Broadcast { line }
            | Event::BroadcastDropped { line }
            | Event::RefetchAfterLoss { line } => {
                push_num(&mut s, "line", *line);
            }
            Event::BroadcastDelayed { line, wait_events } => {
                push_num(&mut s, "line", *line);
                push_num(&mut s, "wait_events", *wait_events);
            }
            Event::Displacement { line, sectors_lost } => {
                push_num(&mut s, "line", *line);
                push_num(&mut s, "sectors_lost", u64::from(*sectors_lost));
            }
            Event::ConservativeReset { line, granule } => {
                push_num(&mut s, "line", *line);
                push_num(&mut s, "granule", u64::from(*granule));
            }
            Event::RegisterRebuild { thread } => {
                push_num(&mut s, "thread", u64::from(*thread));
            }
            Event::BarrierReset { granules } => {
                push_num(&mut s, "granules", *granules);
            }
            Event::SpanEnd {
                name,
                wall_ns,
                cycles,
                events,
                trace,
            } => {
                s.push_str(",\"name\":\"");
                s.push_str(&jsonl::escape(name));
                s.push('"');
                push_num(&mut s, "wall_ns", *wall_ns);
                push_num(&mut s, "cycles", *cycles);
                push_num(&mut s, "events", *events);
                if let Some(t) = trace {
                    push_trace(&mut s, *t);
                }
            }
            Event::Gauge { id, value } => {
                s.push_str(",\"name\":\"");
                s.push_str(id.name());
                s.push_str("\",\"value\":");
                s.push_str(&value.to_string());
            }
            Event::SlowSession {
                trace,
                wall_us,
                threshold_us,
            } => {
                push_trace(&mut s, *trace);
                push_num(&mut s, "wall_us", *wall_us);
                push_num(&mut s, "threshold_us", *threshold_us);
            }
        }
        s.push('}');
        s
    }
}

fn push_num(s: &mut String, key: &str, v: u64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

/// Appends `"trace":"<16 hex digits>"` — the canonical rendering of a
/// trace ID everywhere it appears as text (JSONL, wire, logs).
fn push_trace(s: &mut String, trace: u64) {
    s.push_str(",\"trace\":\"");
    s.push_str(&crate::fmt_trace(trace));
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_renders_valid_json() {
        let events = [
            Event::Race {
                addr: 0x1000,
                site: 7,
                thread: 1,
            },
            Event::CandidateEmpty {
                line: 0x2000,
                granule: 3,
                thread: 0,
            },
            Event::Broadcast { line: 0x40 },
            Event::BroadcastDropped { line: 0x40 },
            Event::BroadcastDelayed {
                line: 0x40,
                wait_events: 16,
            },
            Event::Displacement {
                line: 0x80,
                sectors_lost: 2,
            },
            Event::RefetchAfterLoss { line: 0x80 },
            Event::ConservativeReset {
                line: 0xc0,
                granule: 1,
            },
            Event::RegisterRebuild { thread: 2 },
            Event::BarrierReset { granules: 4096 },
            Event::SpanEnd {
                name: "detect/\"barnes\"".to_string(),
                wall_ns: 1234,
                cycles: 99,
                events: 10,
                trace: None,
            },
            Event::SpanEnd {
                name: "serve:detect".to_string(),
                wall_ns: 1234,
                cycles: 0,
                events: 10,
                trace: Some(0xdead_beef_0042_0001),
            },
            Event::Gauge {
                id: GaugeId::ServeActiveSessions,
                value: -3,
            },
            Event::SlowSession {
                trace: 0x42,
                wall_us: 125_000,
                threshold_us: 100_000,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            let line = e.to_json(i as u64);
            jsonl::validate_event_line(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
            let v = jsonl::parse(&line).unwrap();
            assert_eq!(v.get("seq").and_then(jsonl::Json::as_u64), Some(i as u64));
            assert_eq!(v.get("kind").and_then(jsonl::Json::as_str), Some(e.kind()),);
        }
    }

    #[test]
    fn traced_span_renders_sixteen_hex_digits() {
        let line = Event::SpanEnd {
            name: "serve:flush".to_string(),
            wall_ns: 9,
            cycles: 0,
            events: 0,
            trace: Some(0x2a),
        }
        .to_json(0);
        assert!(line.contains("\"trace\":\"000000000000002a\""), "{line}");
        let untraced = Event::SpanEnd {
            name: "serve:flush".to_string(),
            wall_ns: 9,
            cycles: 0,
            events: 0,
            trace: None,
        }
        .to_json(0);
        assert!(!untraced.contains("trace"), "{untraced}");
    }
}
