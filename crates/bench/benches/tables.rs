//! End-to-end regeneration cost of each paper artifact at reduced
//! scale. One bench per table/figure, so `cargo bench -p hard-bench
//! --bench tables` exercises the entire evaluation pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use hard_harness::experiments::{bloom_analysis, fig8, table2, table3, table45, table6};
use hard_harness::CampaignConfig;
use std::hint::black_box;

fn cfg() -> CampaignConfig {
    CampaignConfig::reduced(0.05, 2)
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table2", |b| b.iter(|| black_box(table2::run(&cfg()))));
    g.bench_function("table3", |b| b.iter(|| black_box(table3::run(&cfg()))));
    g.bench_function("table45", |b| b.iter(|| black_box(table45::run(&cfg()))));
    g.bench_function("table6", |b| b.iter(|| black_box(table6::run(&cfg()))));
    g.bench_function("fig8", |b| b.iter(|| black_box(fig8::run(&cfg()))));
    g.bench_function("bloom-analysis", |b| {
        b.iter(|| black_box(bloom_analysis::run(10_000)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
