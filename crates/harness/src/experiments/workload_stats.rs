//! Workload characterization: the synthetic applications' vital signs
//! at full scale, for auditing the signatures DESIGN.md claims.

use crate::campaign::{race_free_trace, CampaignConfig};
use crate::table::TextTable;
use hard_trace::TraceStats;
use hard_workloads::App;

/// One application's vital signs.
#[derive(Clone, Debug)]
pub struct WorkloadRow {
    /// The application.
    pub app: App,
    /// Trace statistics of the race-free run.
    pub stats: TraceStats,
    /// Total trace events.
    pub events: usize,
}

/// The characterization result.
#[derive(Clone, Debug)]
pub struct WorkloadStats {
    /// One row per application.
    pub rows: Vec<WorkloadRow>,
}

/// Measures every application.
#[must_use]
pub fn run(cfg: &CampaignConfig) -> WorkloadStats {
    let rows = crate::campaign::per_app(cfg.jobs, |app| {
        let trace = race_free_trace(app, cfg);
        WorkloadRow {
            app,
            stats: TraceStats::from_trace(&trace),
            events: trace.len(),
        }
    });
    WorkloadStats { rows }
}

impl WorkloadStats {
    /// Renders the characterization.
    #[must_use]
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "application",
            "events",
            "accesses",
            "locks",
            "distinct locks",
            "barriers",
            "lock density",
            "word footprint",
        ]);
        for r in &self.rows {
            let s = &r.stats;
            t.row(vec![
                r.app.name().into(),
                r.events.to_string(),
                s.accesses().to_string(),
                s.locks.to_string(),
                s.distinct_locks.to_string(),
                s.barrier_completes.to_string(),
                format!("{:.4}", s.locks as f64 / s.accesses().max(1) as f64),
                format!("{}KB", s.footprint_bytes / 1024),
            ]);
        }
        t
    }
}

impl std::fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_match_the_design_claims() {
        let cfg = CampaignConfig::reduced(0.1, 1);
        let s = run(&cfg);
        let get = |app: App| s.rows.iter().find(|r| r.app == app).unwrap();
        // ocean: barrier-dominated, almost lock-free.
        let ocean = get(App::Ocean);
        assert_eq!(ocean.stats.barrier_completes, 8);
        assert!(ocean.stats.distinct_locks <= 6);
        // barnes: lock-dense.
        let barnes = get(App::Barnes);
        let density = barnes.stats.locks as f64 / barnes.stats.accesses() as f64;
        assert!(density > 0.02, "barnes lock density {density}");
        // water: small footprint.
        let water = get(App::WaterNsquared);
        let cholesky = get(App::Cholesky);
        assert!(water.stats.footprint_bytes < cholesky.stats.footprint_bytes / 2);
    }
}
