//! Differential property tests: on footprints that never leave the
//! cache, each hardware machine must agree *exactly* with its
//! unbounded counterpart at the same granularity — the cache, the
//! coherence protocol and the metadata broadcasts must be functionally
//! invisible. Any divergence is a coherence or piggyback bug (this
//! suite is what would have caught the LState-broadcast bug found
//! during development).

use hard_repro::core::{HardConfig, HardMachine, HbMachine, HbMachineConfig};
use hard_repro::hb::{IdealHappensBefore, IdealHbConfig};
use hard_repro::lockset::bloom_table::{BloomLockset, BloomLocksetConfig};
use hard_repro::trace::{run_detector, Program, SchedConfig, Scheduler, ThreadProgram};
use hard_repro::types::{Addr, BarrierId, Granularity, LockId, SiteId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Random small programs over a handful of lines and locks: unlocked
/// accesses, critical sections, barriers.
fn arb_program() -> impl Strategy<Value = Program> {
    let block = prop_oneof![
        // Unlocked access to one of 8 lines.
        (0u64..8, any::<bool>()).prop_map(|(l, wr)| {
            let addr = Addr(0x1000 + l * 32);
            vec![if wr {
                hard_repro::trace::Op::Write {
                    addr,
                    size: 4,
                    site: SiteId(l as u32),
                }
            } else {
                hard_repro::trace::Op::Read {
                    addr,
                    size: 4,
                    site: SiteId(l as u32),
                }
            }]
        }),
        // A critical section on one of 3 locks.
        (0u64..3, 0u64..8).prop_map(|(k, l)| {
            let lock = LockId(0x1000_0000 + k * 4);
            let addr = Addr(0x1000 + l * 32);
            vec![
                hard_repro::trace::Op::Lock {
                    lock,
                    site: SiteId(100 + k as u32),
                },
                hard_repro::trace::Op::Write {
                    addr,
                    size: 4,
                    site: SiteId(l as u32),
                },
                hard_repro::trace::Op::Unlock {
                    lock,
                    site: SiteId(200 + k as u32),
                },
            ]
        }),
    ];
    let thread = prop::collection::vec(block, 0..10).prop_map(|blocks| {
        let mut tp = ThreadProgram::new();
        for b in blocks {
            for op in b {
                tp.push(op);
            }
        }
        tp
    });
    prop::collection::vec(thread, 2..=4).prop_map(|mut threads| {
        for tp in &mut threads {
            tp.barrier(BarrierId(0), SiteId(999));
        }
        Program::new(threads)
    })
}

fn report_keys(reports: &[hard_repro::trace::RaceReport]) -> BTreeSet<(Addr, SiteId)> {
    let g = Granularity::new(32);
    reports
        .iter()
        .map(|r| (g.granule_of(r.addr), r.site))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// HARD (in-cache, coherent, broadcast-kept metadata) equals the
    /// unbounded bloom lockset when nothing is ever displaced.
    #[test]
    fn hard_equals_unbounded_bloom_without_evictions(p in arb_program(), seed in 0u64..8) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 3 }).run(&p);

        let mut hard = HardMachine::new(HardConfig::default());
        let hard_reports = run_detector(&mut hard, &trace);
        prop_assert_eq!(hard.stats().l2_evictions, 0, "footprint fits the L2");

        let mut table = BloomLockset::new(BloomLocksetConfig::default());
        let table_reports = run_detector(&mut table, &trace);

        prop_assert_eq!(
            report_keys(&hard_reports),
            report_keys(&table_reports),
            "coherence must be functionally invisible"
        );
    }

    /// The hardware happens-before machine equals the ideal detector at
    /// matching (line) granularity when nothing is displaced.
    #[test]
    fn hb_machine_equals_ideal_at_line_granularity(p in arb_program(), seed in 0u64..8) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 3 }).run(&p);

        let mut hw = HbMachine::new(HbMachineConfig::default());
        let hw_reports = run_detector(&mut hw, &trace);
        prop_assert_eq!(hw.stats().l2_evictions, 0);

        let mut ideal = IdealHappensBefore::new(IdealHbConfig {
            num_threads: trace.num_threads,
            granularity: Granularity::new(32),
        });
        let ideal_reports = run_detector(&mut ideal, &trace);

        prop_assert_eq!(
            report_keys(&hw_reports),
            report_keys(&ideal_reports),
            "timestamp coherence must be functionally invisible"
        );
    }

    /// The §3.4 broadcast is load-bearing: with it disabled, the
    /// snoopy machine may fall out of agreement with the unbounded
    /// reference (stale sharer copies), and must never report MORE.
    #[test]
    fn disabling_broadcasts_only_loses_detections(p in arb_program(), seed in 0u64..4) {
        use hard_repro::core::HardConfig;
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 3 }).run(&p);
        let stale_cfg = HardConfig { metadata_broadcast: false, ..HardConfig::default() };
        let mut stale = HardMachine::new(stale_cfg);
        let stale_reports = run_detector(&mut stale, &trace);
        let mut table = BloomLockset::new(BloomLocksetConfig::default());
        let table_reports = run_detector(&mut table, &trace);
        let stale_keys = report_keys(&stale_reports);
        let table_keys = report_keys(&table_reports);
        prop_assert!(
            stale_keys.is_subset(&table_keys),
            "staleness can hide races but must not invent them"
        );
    }

    /// The snoopy and directory HARD machines agree on arbitrary small
    /// programs, not just the workload campaigns.
    #[test]
    fn snoopy_equals_directory(p in arb_program(), seed in 0u64..4) {
        use hard_repro::core::DirectoryHardMachine;
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 3 }).run(&p);
        let mut snoopy = HardMachine::new(HardConfig::default());
        let rs = run_detector(&mut snoopy, &trace);
        let mut dir = DirectoryHardMachine::new(HardConfig::default());
        let rd = run_detector(&mut dir, &trace);
        prop_assert_eq!(rs, rd);
    }
}
