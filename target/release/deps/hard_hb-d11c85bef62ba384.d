/root/repo/target/release/deps/hard_hb-d11c85bef62ba384.d: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs

/root/repo/target/release/deps/libhard_hb-d11c85bef62ba384.rlib: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs

/root/repo/target/release/deps/libhard_hb-d11c85bef62ba384.rmeta: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs

crates/hb/src/lib.rs:
crates/hb/src/clock.rs:
crates/hb/src/ideal.rs:
crates/hb/src/meta.rs:
crates/hb/src/scalar.rs:
crates/hb/src/sync.rs:
