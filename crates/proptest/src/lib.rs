//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate
//! provides the slice of the proptest API the workspace's test suites
//! actually use: deterministic random generation of test inputs via
//! composable [`strategy::Strategy`] values and the [`proptest!`]
//! family of macros. Unlike real proptest there is **no shrinking**
//! and no persistence of failing cases — each test runs a fixed number
//! of deterministically seeded cases, so failures reproduce exactly
//! across runs and machines.

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 generator seeded from the test function's name, so
    /// every test sees its own reproducible input stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a deterministic seed from `name` (FNV-1a).
        #[must_use]
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0) is meaningless");
            // Multiply-shift; bias is irrelevant for test generation.
            let x = self.next_u64();
            ((u128::from(x) * u128::from(n)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of test values.
    ///
    /// Mirrors proptest's trait of the same name, minus shrinking:
    /// `generate` produces one value from the deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { s: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { s: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        s: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.s.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        s: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.s.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Rc<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; used by `prop_oneof!`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Rc<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Type-erases a strategy for use in [`Union`].
    pub fn boxed<S>(s: S) -> Rc<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Rc::new(s)
    }

    impl<S: Strategy + ?Sized> Strategy for Rc<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty)*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo);
                    if span == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.below(span + 1)) as $t
                    }
                }
            }
        )*};
    }

    int_range_strategy! { u8 u16 u32 u64 usize i32 i64 }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 G)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Produces an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty)*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary! { u8 u16 u32 u64 usize i8 i16 i32 i64 }

    /// Strategy form of [`Arbitrary`]; returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Any<T> {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// Generates `Vec`s of values from an element strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = if span == 0 {
                self.size.min
            } else {
                self.size.min + rng.below(span) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The customary glob import, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// its body over `cases` deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let __strat = ($($strat,)+);
                for __case in 0..__config.cases {
                    let _ = __case;
                    let ($($arg,)+) = $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5usize..=5).generate(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = prop::collection::vec(0u32..100, 1..8);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_all_args(a in 0u8..4, pair in (0u64..8, any::<bool>())) {
            prop_assert!(a < 4);
            prop_assert!(pair.0 < 8);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u32), Just(2u32), 5u32..9]) {
            prop_assert!(x == 1 || x == 2 || (5..9).contains(&x));
        }
    }
}
