/root/repo/target/debug/deps/hard_exp-be15b91c71667ad0.d: crates/harness/src/bin/hard_exp.rs Cargo.toml

/root/repo/target/debug/deps/libhard_exp-be15b91c71667ad0.rmeta: crates/harness/src/bin/hard_exp.rs Cargo.toml

crates/harness/src/bin/hard_exp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
