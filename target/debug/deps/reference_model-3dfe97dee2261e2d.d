/root/repo/target/debug/deps/reference_model-3dfe97dee2261e2d.d: crates/cache/tests/reference_model.rs

/root/repo/target/debug/deps/reference_model-3dfe97dee2261e2d: crates/cache/tests/reference_model.rs

crates/cache/tests/reference_model.rs:
