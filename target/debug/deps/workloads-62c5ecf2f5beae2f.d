/root/repo/target/debug/deps/workloads-62c5ecf2f5beae2f.d: crates/bench/benches/workloads.rs

/root/repo/target/debug/deps/workloads-62c5ecf2f5beae2f: crates/bench/benches/workloads.rs

crates/bench/benches/workloads.rs:
