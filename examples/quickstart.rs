//! Quickstart: detect a missing-lock race with HARD.
//!
//! Builds a four-thread program in which one thread forgets the lock
//! around a shared counter update, runs it on the simulated CMP, and
//! prints HARD's race reports plus machine statistics.
//!
//! Run with: `cargo run --example quickstart`

use hard_repro::core::{HardConfig, HardMachine};
use hard_repro::trace::{run_detector, ProgramBuilder, SchedConfig, Scheduler};
use hard_repro::types::{Addr, LockId, SiteId};

fn main() {
    // A shared counter at 0x2000, protected by the lock at 0x1000_0000.
    let counter = Addr(0x2000);
    let lock = LockId(0x1000_0000);

    let mut builder = ProgramBuilder::new(4);
    for t in 0..4u32 {
        let tp = builder.thread(t);
        for i in 0..8u32 {
            // Thread 3 forgets the lock on its fifth iteration.
            let forgot = t == 3 && i == 4;
            if !forgot {
                tp.lock(lock, SiteId(100 + t));
            }
            tp.read(counter, 4, SiteId(1)).write(counter, 4, SiteId(2));
            if !forgot {
                tp.unlock(lock, SiteId(200 + t));
            }
            tp.compute(50);
        }
    }
    let program = builder.build();

    // Deterministic interleaving; every detector would see this exact
    // execution.
    let trace = Scheduler::new(SchedConfig::default()).run(&program);
    println!(
        "trace: {} events over {} threads",
        trace.len(),
        trace.num_threads
    );

    // The paper's default machine: 4 cores, 16KB L1s, 1MB L2, 16-bit
    // bloom vectors at 32-byte line granularity.
    let mut machine = HardMachine::new(HardConfig::default());
    println!("machine: {}", machine.config());

    let reports = run_detector(&mut machine, &trace);
    println!("\n{} race report(s):", reports.len());
    for r in &reports {
        println!("  {r}");
    }

    println!("\nmemory system: {}", machine.stats());
    println!("execution time: {}", machine.total_cycles());
    assert!(
        reports.iter().any(|r| r.addr == counter),
        "the forgotten lock must be flagged"
    );
    println!("\nHARD caught the missing lock.");
}
