/root/repo/target/debug/examples/quickstart-9283588fec6e3b22.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9283588fec6e3b22: examples/quickstart.rs

examples/quickstart.rs:
