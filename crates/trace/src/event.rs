//! The globally ordered event stream a scheduler run produces.

use crate::op::Op;
use hard_types::{BarrierId, ThreadId};
use std::fmt;

/// One event of the global interleaving.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// Thread `thread` performed `op`. For [`Op::Lock`] this is the
    /// moment the acquire *succeeded*; blocking time is not an event.
    Op {
        /// The issuing thread.
        thread: ThreadId,
        /// The operation it performed.
        op: Op,
    },
    /// All threads have arrived at `barrier`; the barrier opens. HARD's
    /// barrier pruning (§3.5) flash-resets candidate sets at this point.
    BarrierComplete {
        /// The barrier that opened.
        barrier: BarrierId,
    },
}

impl TraceEvent {
    /// The issuing thread, if the event belongs to one.
    #[must_use]
    pub fn thread(&self) -> Option<ThreadId> {
        match *self {
            TraceEvent::Op { thread, .. } => Some(thread),
            TraceEvent::BarrierComplete { .. } => None,
        }
    }

    /// The program operation, if the event carries one.
    #[must_use]
    pub fn op(&self) -> Option<&Op> {
        match self {
            TraceEvent::Op { op, .. } => Some(op),
            TraceEvent::BarrierComplete { .. } => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Op { thread, op } => write!(f, "{thread}: {op}"),
            TraceEvent::BarrierComplete { barrier } => write!(f, "-- {barrier} complete --"),
        }
    }
}

/// A complete interleaved execution.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    /// The events in global order.
    pub events: Vec<TraceEvent>,
    /// Number of threads in the program that produced the trace.
    pub num_threads: usize,
}

impl Trace {
    /// Iterates over only the per-thread operations (skipping barrier
    /// completion markers).
    pub fn ops(&self) -> impl Iterator<Item = (ThreadId, &Op)> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Op { thread, op } => Some((*thread, op)),
            TraceEvent::BarrierComplete { .. } => None,
        })
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks that the event stream is a plausible execution: thread
    /// ids are in range, the lock events respect mutual exclusion, and
    /// forked threads only act after their fork. Intended for traces
    /// decoded from untrusted files before they are replayed through a
    /// detector (a malformed stream cannot crash a detector, but its
    /// reports would be meaningless).
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        use crate::op::Op;
        use hard_types::LockId;
        use std::collections::BTreeMap;
        let mut lock_owner: BTreeMap<LockId, ThreadId> = BTreeMap::new();
        let mut started = vec![true; self.num_threads];
        // Threads that are fork targets start unstarted; infer them.
        for e in &self.events {
            if let TraceEvent::Op {
                op: Op::Fork { child, .. },
                ..
            } = e
            {
                if child.index() < self.num_threads {
                    started[child.index()] = false;
                }
            }
        }
        for (i, e) in self.events.iter().enumerate() {
            let TraceEvent::Op { thread, op } = e else {
                continue;
            };
            if thread.index() >= self.num_threads {
                return Err(format!("event {i}: thread {thread} out of range"));
            }
            match *op {
                Op::Lock { lock, .. } => {
                    if let Some(owner) = lock_owner.get(&lock) {
                        return Err(format!(
                            "event {i}: {thread} acquires {lock} held by {owner}"
                        ));
                    }
                    lock_owner.insert(lock, *thread);
                }
                Op::Unlock { lock, .. } => {
                    // Race injection removes lock/unlock *pairs*, so
                    // even injected traces never release an unheld
                    // lock: such a stream is corrupt.
                    match lock_owner.get(&lock) {
                        Some(owner) if owner == thread => {
                            lock_owner.remove(&lock);
                        }
                        Some(owner) => {
                            return Err(format!(
                                "event {i}: {thread} releases {lock} held by {owner}"
                            ))
                        }
                        None => return Err(format!("event {i}: {thread} releases unheld {lock}")),
                    }
                }
                Op::Fork { child, .. } => {
                    if child.index() >= self.num_threads {
                        return Err(format!("event {i}: fork of unknown {child}"));
                    }
                    if started[child.index()] {
                        return Err(format!("event {i}: {child} forked twice or running"));
                    }
                    started[child.index()] = true;
                }
                _ => {}
            }
            if !started[thread.index()] {
                return Err(format!("event {i}: {thread} acts before its fork"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hard_types::{Addr, SiteId};

    #[test]
    fn accessors() {
        let e = TraceEvent::Op {
            thread: ThreadId(1),
            op: Op::Read {
                addr: Addr(4),
                size: 4,
                site: SiteId(0),
            },
        };
        assert_eq!(e.thread(), Some(ThreadId(1)));
        assert!(e.op().is_some());
        let b = TraceEvent::BarrierComplete {
            barrier: BarrierId(0),
        };
        assert_eq!(b.thread(), None);
        assert!(b.op().is_none());
    }

    #[test]
    fn validate_accepts_scheduled_traces() {
        use crate::program::ProgramBuilder;
        use crate::sched::{SchedConfig, Scheduler};
        use hard_types::LockId;
        let mut b = ProgramBuilder::new(2);
        for t in 0..2u32 {
            b.thread(t)
                .lock(LockId(0x40), SiteId(t))
                .write(Addr(0x100), 4, SiteId(10 + t))
                .unlock(LockId(0x40), SiteId(20 + t));
        }
        let trace = Scheduler::new(SchedConfig::default()).run(&b.build());
        assert_eq!(trace.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_double_acquire() {
        use hard_types::LockId;
        let t = Trace {
            events: vec![
                TraceEvent::Op {
                    thread: ThreadId(0),
                    op: Op::Lock {
                        lock: LockId(0x40),
                        site: SiteId(0),
                    },
                },
                TraceEvent::Op {
                    thread: ThreadId(1),
                    op: Op::Lock {
                        lock: LockId(0x40),
                        site: SiteId(1),
                    },
                },
            ],
            num_threads: 2,
        };
        assert!(t.validate().unwrap_err().contains("acquires"));
    }

    #[test]
    fn validate_rejects_out_of_range_thread() {
        let t = Trace {
            events: vec![TraceEvent::Op {
                thread: ThreadId(7),
                op: Op::Compute { cycles: 1 },
            }],
            num_threads: 2,
        };
        assert!(t.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validate_rejects_foreign_release() {
        use hard_types::LockId;
        let t = Trace {
            events: vec![
                TraceEvent::Op {
                    thread: ThreadId(0),
                    op: Op::Lock {
                        lock: LockId(0x40),
                        site: SiteId(0),
                    },
                },
                TraceEvent::Op {
                    thread: ThreadId(1),
                    op: Op::Unlock {
                        lock: LockId(0x40),
                        site: SiteId(1),
                    },
                },
            ],
            num_threads: 2,
        };
        assert!(t.validate().unwrap_err().contains("releases"));
    }

    #[test]
    fn validate_rejects_pre_fork_activity() {
        let t = Trace {
            events: vec![
                TraceEvent::Op {
                    thread: ThreadId(1),
                    op: Op::Compute { cycles: 1 },
                },
                TraceEvent::Op {
                    thread: ThreadId(0),
                    op: Op::Fork {
                        child: ThreadId(1),
                        site: SiteId(0),
                    },
                },
            ],
            num_threads: 2,
        };
        assert!(t.validate().unwrap_err().contains("before its fork"));
    }

    #[test]
    fn ops_iterator_skips_barrier_markers() {
        let t = Trace {
            events: vec![
                TraceEvent::Op {
                    thread: ThreadId(0),
                    op: Op::Compute { cycles: 1 },
                },
                TraceEvent::BarrierComplete {
                    barrier: BarrierId(0),
                },
                TraceEvent::Op {
                    thread: ThreadId(1),
                    op: Op::Compute { cycles: 2 },
                },
            ],
            num_threads: 2,
        };
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.ops().count(), 2);
    }
}
