/root/repo/target/debug/examples/splash_campaign-d3ae440b3b11eb18.d: examples/splash_campaign.rs

/root/repo/target/debug/examples/splash_campaign-d3ae440b3b11eb18: examples/splash_campaign.rs

examples/splash_campaign.rs:
