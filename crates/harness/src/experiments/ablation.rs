//! Ablations of HARD's design choices, beyond the paper's own tables:
//!
//! * **barrier pruning** (§3.5) on vs. off — what the flash-reset buys;
//! * **snoopy vs. directory** metadata management (§3.4) — identical
//!   detection, different traffic;
//! * **lockset + happens-before combination** (§7) — alarms pruned vs.
//!   detection surrendered;
//! * **software vs. hardware lockset** (§1–§2) — the Eraser-style
//!   slowdown next to HARD's percent-level overhead.

use crate::campaign::{
    alarm_sites, injected_trace, probes, race_free_trace, score, CampaignConfig,
};
use crate::detectors::{execute, DetectorKind};
use crate::table::TextTable;
use hard::{
    estimate_software_lockset, BaselineMachine, DirectoryHardMachine, HardConfig, HardMachine,
    HybridMachine, SoftwareLocksetCost,
};
use hard_trace::{run_detector, Detector};
use hard_types::Addr;
use hard_workloads::App;
use std::collections::BTreeSet;

/// One application row of the ablation study.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// The application.
    pub app: App,
    /// Race-free alarms with barrier pruning (the default).
    pub alarms_pruned: usize,
    /// Race-free alarms without barrier pruning.
    pub alarms_raw: usize,
    /// Race-free alarms after the §7 lockset∩happens-before pruning.
    pub alarms_hybrid: usize,
    /// Bugs detected by HARD (default).
    pub bugs_hard: usize,
    /// Bugs detected by the hybrid combination.
    pub bugs_hybrid: usize,
    /// Bugs detected with the Figure 3 (2× L2 line, sectored) cache.
    pub bugs_fig3: usize,
    /// False alarms with the Figure 3 cache.
    pub alarms_fig3: usize,
    /// Snoopy metadata broadcasts on the race-free run.
    pub snoopy_broadcasts: u64,
    /// Directory metadata round trips on the race-free run.
    pub directory_requests: u64,
    /// The directory design found exactly the snoopy design's reports.
    pub directory_agrees: bool,
    /// Estimated software-lockset slowdown factor on this application.
    pub software_slowdown: f64,
    /// HARD's hardware overhead on the same trace (fraction).
    pub hard_overhead: f64,
}

/// The full ablation result.
#[derive(Clone, Debug)]
pub struct Ablation {
    /// Rows in the paper's application order.
    pub rows: Vec<AblationRow>,
    /// Runs per application.
    pub runs: usize,
}

fn hybrid_run(trace: &hard_trace::Trace) -> (Vec<hard_trace::RaceReport>, HybridMachine) {
    let mut m = HybridMachine::new(HardConfig::default());
    run_detector(&mut m, trace);
    let combined = m.combined_reports();
    (combined, m)
}

/// Runs the ablation study, on the campaign pool.
#[must_use]
pub fn run(cfg: &CampaignConfig) -> Ablation {
    let rows = crate::campaign::per_app(cfg.jobs, |app| {
        let rf = race_free_trace(app, cfg);

        // Barrier pruning on/off.
        let pruned = execute(&DetectorKind::hard_default(), &rf, &[]);
        let raw_cfg = HardConfig {
            barrier_pruning: false,
            ..HardConfig::default()
        };
        let raw = execute(&DetectorKind::Hard(raw_cfg), &rf, &[]);

        // Figure 3 L2 organization on the race-free run.
        let fig3_kind = DetectorKind::Hard(HardConfig::default().with_figure3_l2());
        let alarms_fig3 = alarm_sites(&execute(&fig3_kind, &rf, &[])).len();

        // Hybrid alarms on the race-free run.
        let (hybrid_reports, _) = hybrid_run(&rf);
        let hybrid_alarm_sites: BTreeSet<_> = hybrid_reports.iter().map(|r| r.site).collect();

        // Snoopy vs directory on the race-free run.
        let mut snoopy = HardMachine::new(HardConfig::default());
        run_detector(&mut snoopy, &rf);
        let mut dir = DirectoryHardMachine::new(HardConfig::default());
        run_detector(&mut dir, &rf);
        let directory_agrees = snoopy.reports() == dir.reports();

        // Software vs hardware cost on the race-free run.
        let mut base = BaselineMachine::new(HardConfig::default());
        let base_cycles = base.run(&rf).0;
        let sw = estimate_software_lockset(&rf, &SoftwareLocksetCost::default());
        let hard_overhead = if base_cycles == 0 {
            0.0
        } else {
            (snoopy.total_cycles().0 as f64 - base_cycles as f64) / base_cycles as f64
        };

        // Detection: HARD vs hybrid vs Figure 3 over the injected runs.
        let mut bugs_hard = 0;
        let mut bugs_hybrid = 0;
        let mut bugs_fig3 = 0;
        for run_idx in 0..cfg.runs {
            let (trace, injection) = injected_trace(app, cfg, run_idx);
            let pr = probes(&injection);
            if score(
                &execute(&DetectorKind::hard_default(), &trace, &pr),
                &injection,
            )
            .is_detected()
            {
                bugs_hard += 1;
            }
            if score(&execute(&fig3_kind, &trace, &pr), &injection).is_detected() {
                bugs_fig3 += 1;
            }
            let (combined, _) = hybrid_run(&trace);
            let hit = combined
                .iter()
                .any(|r| injection.overlaps(r.addr, Addr(r.addr.0 + u64::from(r.size))));
            if hit {
                bugs_hybrid += 1;
            }
        }

        AblationRow {
            app,
            alarms_pruned: alarm_sites(&pruned).len(),
            alarms_raw: alarm_sites(&raw).len(),
            alarms_hybrid: hybrid_alarm_sites.len(),
            bugs_hard,
            bugs_hybrid,
            bugs_fig3,
            alarms_fig3,
            snoopy_broadcasts: snoopy.stats().meta_broadcasts,
            directory_requests: dir.directory_requests(),
            directory_agrees,
            software_slowdown: sw.slowdown(base_cycles),
            hard_overhead,
        }
    });
    Ablation {
        rows,
        runs: cfg.runs,
    }
}

impl Ablation {
    /// Renders the barrier-pruning and hybrid columns.
    #[must_use]
    pub fn render_alarms(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "application",
            "alarms (no pruning)",
            "alarms (HARD)",
            "alarms (HARD∩HB)",
            "bugs HARD",
            "bugs HARD∩HB",
            "bugs fig3-L2",
            "alarms fig3-L2",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.name().into(),
                r.alarms_raw.to_string(),
                r.alarms_pruned.to_string(),
                r.alarms_hybrid.to_string(),
                format!("{}/{}", r.bugs_hard, self.runs),
                format!("{}/{}", r.bugs_hybrid, self.runs),
                format!("{}/{}", r.bugs_fig3, self.runs),
                r.alarms_fig3.to_string(),
            ]);
        }
        t
    }

    /// Renders the protocol and cost columns.
    #[must_use]
    pub fn render_costs(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "application",
            "snoopy broadcasts",
            "directory round trips",
            "detection equal",
            "software lockset",
            "HARD overhead",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.name().into(),
                r.snoopy_broadcasts.to_string(),
                r.directory_requests.to_string(),
                if r.directory_agrees { "yes" } else { "NO" }.into(),
                format!("{:.1}x", r.software_slowdown),
                format!("{:.2}%", r.hard_overhead * 100.0),
            ]);
        }
        t
    }
}

impl std::fmt::Display for Ablation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Barrier pruning (§3.5) and the §7 combination:")?;
        writeln!(f, "{}", self.render_alarms())?;
        writeln!(f, "Metadata management (§3.4) and monitoring cost (§1):")?;
        write!(f, "{}", self.render_costs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shapes_hold_at_reduced_scale() {
        let cfg = CampaignConfig::reduced(0.08, 3);
        let a = run(&cfg);
        for r in &a.rows {
            // Barrier pruning never creates alarms.
            assert!(
                r.alarms_pruned <= r.alarms_raw,
                "{}: pruning must not add alarms",
                r.app
            );
            // The combination prunes further but may surrender bugs.
            assert!(r.alarms_hybrid <= r.alarms_pruned, "{}", r.app);
            assert!(r.bugs_hybrid <= r.bugs_hard, "{}", r.app);
            // Both metadata designs detect identically.
            assert!(r.directory_agrees, "{}", r.app);
            // The Figure 3 cache is a plausible HARD too.
            assert!(r.bugs_fig3 + 2 >= r.bugs_hard, "{}", r.app);
            // Directory traffic dwarfs snoopy broadcasts.
            assert!(r.directory_requests > r.snoopy_broadcasts, "{}", r.app);
            // Software lockset costs orders of magnitude more than HARD.
            assert!(
                r.software_slowdown > 1.0 + r.hard_overhead * 10.0,
                "{}: software {}x vs HARD {:.2}%",
                r.app,
                r.software_slowdown,
                r.hard_overhead * 100.0
            );
        }
        // Barrier-heavy ocean must show a pruning win.
        let ocean = a.rows.iter().find(|r| r.app == App::Ocean).unwrap();
        assert!(
            ocean.alarms_raw > ocean.alarms_pruned,
            "ocean: pruning must remove barrier-pattern alarms ({} vs {})",
            ocean.alarms_raw,
            ocean.alarms_pruned
        );
    }
}
