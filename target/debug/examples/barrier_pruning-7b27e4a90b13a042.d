/root/repo/target/debug/examples/barrier_pruning-7b27e4a90b13a042.d: examples/barrier_pruning.rs

/root/repo/target/debug/examples/barrier_pruning-7b27e4a90b13a042: examples/barrier_pruning.rs

examples/barrier_pruning.rs:
