//! `hard-serve`: a long-running TCP race-detection service.
//!
//! The batch harness answers "what does HARD do on this corpus?";
//! this crate answers the production question the ROADMAP and the
//! HardRace line of work pose — race detection *as a service*. A
//! [`Server`] accepts framed `HARDCRP1` corpus streams (the exact
//! format `hard-exp record --packed` writes and `hard-exp replay`
//! consumes) from concurrent clients and answers each session with a
//! structured JSON [`hard_harness::ReportBody`]. Because the server
//! and the offline replay drive the same detector entry points
//! ([`hard_harness::StreamFeeder`] replicates
//! [`hard_harness::execute_streamed`] chunk by chunk, with equivalence
//! pinned by tests), a served report is byte-identical to
//! `hard-exp replay` on the same file — CI diffs the two outputs
//! directly.
//!
//! # Async, incremental architecture
//!
//! Since PR 10 the server is asynchronous end to end, built on the
//! in-tree [`hard_aio`] runtime (an epoll reactor plus a small task
//! executor — the registry-free stand-in for tokio):
//!
//! * **One multiplexed runtime** replaces the thread-per-connection
//!   model: every connection is a task, so ten thousand concurrent
//!   sessions cost ten thousand small state machines, not ten
//!   thousand OS threads.
//! * **Incremental detection**: each `Data` frame is fed straight
//!   into the session's [`hard_harness::StreamFeeder`] as it arrives.
//!   Per-session memory is one frame plus detector state — never the
//!   whole trace — and by the time `End` arrives most of the
//!   detection work is already done.
//! * **A detection gate** (an async semaphore with `workers` permits)
//!   bounds concurrent detector CPU. Sessions over the limit park
//!   without holding an executor thread; `workers + queue_depth`
//!   keeps its old meaning as the admission-control capacity behind
//!   `Busy` sheds and the `pool_load`/`pool_capacity` health fields.
//! * **A slow uploader holds nothing** but its own task: it parks in
//!   the reactor between frames while other sessions' chunks flow
//!   through the gate.
//!
//! Production concerns handled end to end:
//!
//! * **Framing** — the [`hard_trace::wire`] protocol: version-bearing
//!   handshake, length-prefixed frames reassembled by the push-style
//!   [`hard_trace::wire::FrameAssembler`], hostile length prefixes
//!   rejected before allocation.
//! * **Ingest verification** — the `HARDCRP1` header checksum is
//!   validated as soon as the header bytes arrive and the payload FNV
//!   after replay; a corrupt upload gets a client-visible `Error`
//!   frame at `End`, never a panic.
//! * **Limits** — [`ServeConfig`] bounds concurrent sessions, bytes
//!   per session, events per session, and global in-flight bytes.
//! * **Overload shedding** — admission control: a session arriving
//!   while the detection gate is saturated, the session slots are
//!   exhausted, or the in-flight byte budget is spent is answered
//!   with an explicit `Busy` frame carrying a retry-after hint, never
//!   left blocking.
//! * **Health probes** — a `Health` frame is answered with a JSON
//!   `Healthy` snapshot of the admission state (sessions, in-flight
//!   bytes, gate load, readiness) without starting a session.
//! * **Timeouts** — an idle client is cut off with an `Error` frame
//!   after [`ServeConfig::idle_timeout`]; response writes are bounded
//!   by the same clock, so a client that stops reading cannot wedge
//!   the drain.
//! * **Graceful shutdown** — a `Shutdown` frame (or `max_conns`)
//!   stops the accept loop; every open connection then receives an
//!   explicit verdict: sessions mid-upload get an `Error` frame,
//!   idle connections get `Bye`, and sessions whose `End` already
//!   arrived finish with their `Report`. No client is left staring at
//!   a silent close.
//! * **Observability** — `hard_serve_*` counters, in-flight gauges,
//!   per-stage latency histograms, and trace-tagged spans flow into
//!   the installed [`hard_obs`] recorder; the binary exposes them via
//!   `--serve-metrics` (plus `/healthz` for load balancers).
//! * **Session tracing** — every session carries a 64-bit trace ID
//!   (client-generated via the `Begin` extension, server-assigned
//!   otherwise) that is echoed on `Report`/`Error`/`Busy` payloads,
//!   tags the `serve:accept → handshake → upload → queue-wait →
//!   detect → render → flush` span timeline in the JSONL stream, keys
//!   the slow-session log, and labels the recent-session ring exposed
//!   to scrapers. Stage spans measured across many task polls (queue
//!   wait, incremental detect) are accumulated per session and
//!   emitted once at `End`, so the reconstructed timeline keeps its
//!   one-span-per-stage shape.
//!
//! # Example
//!
//! ```no_run
//! use hard_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServeConfig::default()
//! })
//! .expect("bind");
//! println!("listening on {}", server.local_addr().expect("addr"));
//! server.run().expect("serve");
//! ```

#![warn(missing_docs)]

use hard_harness::corpus::{parse_header, StreamHeader, CORPUS_MAGIC};
use hard_harness::service::send_frame;
use hard_harness::{DetectorKind, ReportBody, StreamFeeder};
use hard_obs::{CounterId, Event, GaugeId, HistId, ObsHandle};
use hard_trace::codec::{fnv1a_update, FNV1A_INIT};
use hard_trace::wire::{
    decode_begin, encode_busy, encode_traced, read_handshake, write_handshake, FrameAssembler,
    FrameKind, WireError, MAX_FRAME_BYTES,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs and limits for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7140` (`:0` for an ephemeral
    /// port, reported by [`Server::local_addr`]).
    pub addr: String,
    /// Detection-gate permits: sessions running detector work
    /// concurrently. Also sizes the async executor (`workers + 2`
    /// threads, so I/O keeps flowing while every permit is busy).
    pub workers: usize,
    /// Sessions that may wait at the detection gate beyond the
    /// running ones before new sessions are shed with a `Busy` frame
    /// (the overload bound).
    pub queue_depth: usize,
    /// Concurrent client sessions; further connections are answered
    /// with a `Busy` frame and closed.
    pub max_sessions: usize,
    /// Upload bytes one session may send.
    pub max_session_bytes: u64,
    /// Events one session's trace may contain.
    pub max_session_events: u64,
    /// Upload bytes admitted across *all* in-flight sessions;
    /// connections that would exceed it are shed with a `Busy` frame.
    pub max_inflight_bytes: u64,
    /// How long a connection may sit idle between received bytes
    /// before it is cut off with an `Error` frame. Also bounds each
    /// response write, so a client that stops reading cannot stall
    /// the shutdown drain.
    pub idle_timeout: Duration,
    /// Answer a repeated upload (same detector, same bytes) from an
    /// in-memory report cache instead of re-running detection. Hit
    /// and miss responses are byte-identical; hits show up only in
    /// the `hard_serve_cache_hits_total` counter. (With incremental
    /// detection the content key is only complete at `End`, so a hit
    /// discards already-done work — the win is response identity and
    /// attribution, not saved cycles.)
    pub report_cache: bool,
    /// Exit the accept loop after this many accepted connections
    /// (used by CI and tests; `None` serves until a `Shutdown`
    /// frame).
    pub max_conns: Option<usize>,
    /// The retry-after hint carried by `Busy` shed frames.
    pub busy_retry_after: Duration,
    /// Sessions whose `Begin`→response wall time exceeds this
    /// threshold bump `hard_serve_slow_sessions_total`, emit a
    /// `slow_session` JSONL event, and are logged to stderr keyed by
    /// trace ID. `None` disables the check.
    pub slow_session: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7140".into(),
            workers: 2,
            queue_depth: 8,
            max_sessions: 32,
            max_session_bytes: 256 << 20,
            max_session_events: 1 << 26,
            max_inflight_bytes: 1 << 30,
            idle_timeout: Duration::from_secs(30),
            report_cache: true,
            max_conns: None,
            busy_retry_after: Duration::from_millis(250),
            slow_session: None,
        }
    }
}

/// Report-cache entries kept before the cache is flushed wholesale
/// (bounding memory without LRU bookkeeping — uploads are large and
/// repeats are bursty, so a flush is cheap relative to one session).
const REPORT_CACHE_CAP: usize = 256;

/// Completed sessions retained in the recent-session ring behind
/// [`ServeStats::recent_sessions`] (the binary renders them as
/// trace-labelled scrape samples).
const RECENT_SESSIONS_CAP: usize = 512;

/// Socket-read chunk size. This, plus one reassembled frame, bounds a
/// connection's buffering — the "memory per session is one chunk"
/// claim (detector state aside).
const READ_CHUNK: usize = 64 << 10;

/// How long an over-capacity connection waits for vacating sessions
/// to finish their bookkeeping before it is shed. A client that
/// closes one connection and immediately opens the next can reach the
/// server ahead of the closed session's cleanup task (on a single-CPU
/// host the cleanup sits runnable for a scheduler quantum); without
/// the grace it would be bounced off its own just-freed slot.
const ADMIT_GRACE: Duration = Duration::from_millis(25);

/// Cadence of the admission-grace and health-settle re-checks. Each
/// tick parks the task, which on a saturated scheduler is exactly
/// what lets the vacating sessions' cleanup run.
const SETTLE_TICK: Duration = Duration::from_millis(1);

/// Bound on the pre-snapshot settle of a `Health` probe: while the
/// session count is still falling, the snapshot waits (up to this
/// long) so just-closed sessions are not reported as active.
const HEALTH_SETTLE: Duration = Duration::from_millis(10);

/// One completed session in the recent-session ring.
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// The session's trace ID (client-supplied or server-assigned).
    pub trace: u64,
    /// How the session ended: `"report"` (fresh detection), `"cache"`
    /// (report-cache hit), `"error"`, or `"busy"`.
    pub verdict: &'static str,
    /// Wall time from `Begin` receipt to the response, in µs.
    pub wall_us: u64,
}

/// A cached report body, tagged with the trace ID of the session that
/// produced it so hits stay attributable after the creator is gone.
struct CachedReport {
    body: String,
    origin_trace: u64,
}

/// Bounds concurrent detector CPU without dedicated worker threads:
/// an async semaphore whose `load` (running + waiting sessions)
/// drives the same saturation shed the old bounded pool did.
struct DetectGate {
    sem: hard_aio::Semaphore,
    load: AtomicUsize,
    capacity: usize,
}

impl DetectGate {
    fn new(workers: usize, queue_depth: usize) -> DetectGate {
        DetectGate {
            sem: hard_aio::Semaphore::new(workers),
            load: AtomicUsize::new(0),
            capacity: workers + queue_depth,
        }
    }

    /// Sessions running or waiting to run detector work.
    fn load(&self) -> usize {
        self.load.load(Ordering::Acquire)
    }

    /// `workers + queue_depth`, the admission-control bound.
    fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shed signal: the gate cannot take another session's work
    /// without the wait queue growing past the configured depth.
    fn is_saturated(&self) -> bool {
        self.load() >= self.capacity
    }
}

struct Shared {
    cfg: ServeConfig,
    obs: ObsHandle,
    shutdown: AtomicBool,
    /// The async shutdown broadcast: set together with `shutdown`,
    /// wakes every task parked on a read so it can deliver its
    /// explicit `Error`/`Bye` verdict.
    stop: hard_aio::Event,
    active_sessions: AtomicUsize,
    inflight_bytes: AtomicU64,
    gate: DetectGate,
    report_cache: Mutex<HashMap<u64, CachedReport>>,
    /// Sequence behind server-assigned trace IDs (splitmix-scrambled
    /// so assigned IDs spread across the space without a clock or
    /// RNG).
    trace_seq: AtomicU64,
    /// Ring of recently completed sessions, oldest first.
    recent: Mutex<VecDeque<SessionSummary>>,
}

/// Releases a session's global in-flight byte reservation on drop, so
/// every exit path — clean report, error frame, client disconnect,
/// task teardown — returns its budget.
struct InflightGuard {
    shared: Arc<Shared>,
    held: u64,
}

impl InflightGuard {
    fn new(shared: Arc<Shared>) -> InflightGuard {
        InflightGuard { shared, held: 0 }
    }

    /// Reserves `n` more bytes against the global budget.
    fn grow(&mut self, n: u64) -> Result<(), String> {
        let prev = self.shared.inflight_bytes.fetch_add(n, Ordering::Relaxed);
        if prev + n > self.shared.cfg.max_inflight_bytes {
            self.shared.inflight_bytes.fetch_sub(n, Ordering::Relaxed);
            return Err(format!(
                "server in-flight budget exhausted ({} bytes)",
                self.shared.cfg.max_inflight_bytes
            ));
        }
        self.held += n;
        self.shared
            .obs
            .gauge_add(GaugeId::ServeInflightBytes, clamp_i64(n));
        Ok(())
    }

    /// Returns the whole reservation (used between sessions on one
    /// connection).
    fn release(&mut self) {
        self.shared
            .inflight_bytes
            .fetch_sub(self.held, Ordering::Relaxed);
        self.shared
            .obs
            .gauge_sub(GaugeId::ServeInflightBytes, clamp_i64(self.held));
        self.held = 0;
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.release();
    }
}

/// The `hard-serve` TCP server.
pub struct Server {
    listener: std::net::TcpListener,
    shared: Arc<Shared>,
    runtime: hard_aio::Runtime,
}

/// A cloneable view of a server's admission accounting, usable while
/// (and after) [`Server::run`] consumes the server. Tests use it to
/// assert that session slots and the in-flight byte budget drain back
/// to zero — the no-leak half of the chaos invariant.
#[derive(Clone)]
pub struct ServeStats {
    shared: Arc<Shared>,
}

impl ServeStats {
    /// Sessions currently holding a slot.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.shared.active_sessions.load(Ordering::Relaxed)
    }

    /// Upload bytes currently reserved against the global budget.
    #[must_use]
    pub fn inflight_bytes(&self) -> u64 {
        self.shared.inflight_bytes.load(Ordering::Relaxed)
    }

    /// Sessions running or waiting at the detection gate.
    #[must_use]
    pub fn pool_load(&self) -> usize {
        self.shared.gate.load()
    }

    /// The most recently completed sessions, oldest first, each
    /// carrying its trace ID, verdict, and wall time. Bounded by an
    /// internal ring; the binary renders these as trace-labelled
    /// `hard_serve_recent_session` scrape samples.
    #[must_use]
    pub fn recent_sessions(&self) -> Vec<SessionSummary> {
        self.shared
            .recent
            .lock()
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Whether the server would admit a new session right now — the
    /// same readiness predicate `Health` frames report, usable by the
    /// `/healthz` HTTP probe.
    #[must_use]
    pub fn ready(&self) -> bool {
        readiness(
            &self.shared,
            self.shared.active_sessions.load(Ordering::Relaxed),
        )
    }

    /// The admission snapshot as JSON — the same body a `Healthy`
    /// frame carries, except no probing connection's slot is excluded
    /// (an HTTP probe does not hold one).
    #[must_use]
    pub fn health_json(&self) -> String {
        health_snapshot(&self.shared, false)
    }
}

impl Server {
    /// Binds the listener and spawns the async runtime (`workers + 2`
    /// executor threads plus the process-wide reactor).
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = std::net::TcpListener::bind(&cfg.addr)?;
        let workers = cfg.workers.max(1);
        let queue_depth = cfg.queue_depth.max(1);
        // Two threads beyond the permit count keep connection I/O
        // moving while every permit runs detector CPU inline.
        let runtime = hard_aio::Runtime::new(workers + 2);
        Ok(Server {
            listener,
            runtime,
            shared: Arc::new(Shared {
                obs: hard_obs::installed(),
                shutdown: AtomicBool::new(false),
                stop: hard_aio::Event::new(),
                active_sessions: AtomicUsize::new(0),
                inflight_bytes: AtomicU64::new(0),
                gate: DetectGate::new(workers, queue_depth),
                report_cache: Mutex::new(HashMap::new()),
                trace_seq: AtomicU64::new(0),
                recent: Mutex::new(VecDeque::new()),
                cfg,
            }),
        })
    }

    /// The bound address (reports the kernel-chosen port after an
    /// `:0` bind).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Concurrent sessions currently open (for tests asserting that
    /// none leak).
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.shared.active_sessions.load(Ordering::Relaxed)
    }

    /// A cloneable accounting view that outlives [`Server::run`].
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until a client sends `Shutdown` or
    /// `max_conns` connections have been accepted, then drains: every
    /// open connection receives an explicit verdict (`Report` for
    /// sessions past `End`, `Error` for sessions mid-upload, `Bye`
    /// for idle connections), their tasks finish, and the runtime is
    /// torn down.
    ///
    /// # Errors
    ///
    /// Returns fatal accept-loop errors; per-connection failures are
    /// answered on that connection and never take the server down.
    pub fn run(self) -> Result<(), String> {
        let Server {
            listener,
            shared,
            runtime,
        } = self;
        let listener =
            hard_aio::TcpListener::from_std(listener).map_err(|e| format!("accept failed: {e}"))?;
        let handle = runtime.handle();
        let accept_done = Arc::new(hard_aio::Event::new());
        let fatal: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        {
            let shared = Arc::clone(&shared);
            let accept_done = Arc::clone(&accept_done);
            let fatal = Arc::clone(&fatal);
            let conn_handle = handle.clone();
            runtime.spawn(async move {
                let mut accepted = 0usize;
                loop {
                    if shared.shutdown.load(Ordering::Relaxed)
                        || shared.cfg.max_conns.is_some_and(|m| accepted >= m)
                    {
                        break;
                    }
                    match hard_aio::race(listener.accept(), shared.stop.wait()).await {
                        hard_aio::Either::Left(Ok((stream, _peer))) => {
                            accepted += 1;
                            shared.obs.counter(CounterId::ServeConnections, 1);
                            let shared = Arc::clone(&shared);
                            conn_handle.spawn(async move {
                                handle_connection(stream, shared).await;
                            });
                        }
                        hard_aio::Either::Left(Err(e))
                            if e.kind() == std::io::ErrorKind::Interrupted => {}
                        hard_aio::Either::Left(Err(e)) => {
                            if let Ok(mut f) = fatal.lock() {
                                *f = Some(format!("accept failed: {e}"));
                            }
                            // A dead listener still drains politely:
                            // open connections get their verdicts.
                            shared.stop.set();
                            break;
                        }
                        hard_aio::Either::Right(()) => break,
                    }
                }
                accept_done.set();
            });
        }
        // Drain: the accept task has exited and every connection task
        // has delivered its verdict and finished.
        while !(accept_done.is_set() && handle.live_tasks() == 0) {
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(runtime);
        if let Some(e) = fatal.lock().ok().and_then(|mut f| f.take()) {
            return Err(e);
        }
        Ok(())
    }
}

/// Waits (up to `grace`) for the admitted-session count to fall to
/// `limit` or below, parking between re-checks so vacating sessions'
/// cleanup tasks get scheduled. Returns whether the count settled
/// within the bound. Aborts early once the stop broadcast fires — a
/// draining server sheds straight away instead of stalling verdicts.
async fn settle_below(shared: &Arc<Shared>, limit: usize, grace: Duration) -> bool {
    let deadline = Instant::now() + grace;
    loop {
        if shared.active_sessions.load(Ordering::Relaxed) <= limit {
            return true;
        }
        if Instant::now() >= deadline || shared.stop.is_set() {
            return false;
        }
        hard_aio::sleep(SETTLE_TICK).await;
    }
}

/// Lets a *falling* session count settle before a health snapshot, so
/// sessions whose sockets already closed (cleanup still queued behind
/// this probe on the scheduler) are not reported as active. A stable
/// or rising count returns immediately; an idle server (just the
/// probe itself) skips the wait entirely.
async fn settle_health(shared: &Arc<Shared>) {
    let deadline = Instant::now() + HEALTH_SETTLE;
    let mut last = shared.active_sessions.load(Ordering::Relaxed);
    while last > 1 && Instant::now() < deadline {
        hard_aio::sleep(SETTLE_TICK).await;
        let cur = shared.active_sessions.load(Ordering::Relaxed);
        if cur >= last {
            return;
        }
        last = cur;
    }
}

/// Decrements the active-session count and gauge on every exit path.
struct SessionSlot<'a>(&'a Shared);

impl Drop for SessionSlot<'_> {
    fn drop(&mut self) {
        self.0.active_sessions.fetch_sub(1, Ordering::Relaxed);
        self.0.obs.gauge_sub(GaugeId::ServeActiveSessions, 1);
    }
}

/// Wall times measured before the first `Begin`, when no trace ID
/// exists yet. The session loop replays them as traced spans once the
/// first session opens, so the reconstructed timeline starts at
/// accept.
struct PreSession {
    accept: Duration,
    handshake: Duration,
}

/// What the frame pump produced.
enum NextFrame {
    /// A complete frame.
    Frame(hard_trace::wire::Frame),
    /// No bytes arrived within the idle window.
    Timeout,
    /// The peer closed (or the socket failed) — nobody left to talk
    /// to.
    Disconnect,
    /// The peer sent bytes the protocol rejects.
    Bad(WireError),
    /// The server's stop event fired while waiting.
    Stopped,
}

/// Pumps socket bytes through the [`FrameAssembler`] until a frame,
/// an idle timeout, a disconnect, or the stop broadcast. Every read
/// that makes progress refreshes the idle clock, mirroring the old
/// per-read socket timeout (a slow-loris drip keeps its connection,
/// but silence is cut off).
async fn next_frame(
    stream: &hard_aio::TcpStream,
    asm: &mut FrameAssembler,
    rbuf: &mut [u8],
    frame_cap: u32,
    idle: Duration,
    stop: &hard_aio::Event,
) -> NextFrame {
    loop {
        match asm.next_frame(frame_cap) {
            Ok(Some(f)) => return NextFrame::Frame(f),
            Ok(None) => {}
            Err(e) => return NextFrame::Bad(e),
        }
        if stop.is_set() {
            return NextFrame::Stopped;
        }
        let deadline = Instant::now() + idle;
        match hard_aio::race(stream.read(rbuf, Some(deadline)), stop.wait()).await {
            hard_aio::Either::Left(Ok(0)) => return NextFrame::Disconnect,
            hard_aio::Either::Left(Ok(n)) => asm.push(&rbuf[..n]),
            hard_aio::Either::Left(Err(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                return NextFrame::Timeout
            }
            hard_aio::Either::Left(Err(_)) => return NextFrame::Disconnect,
            hard_aio::Either::Right(()) => return NextFrame::Stopped,
        }
    }
}

/// How reading the client's 8 handshake bytes ended.
enum Handshake {
    /// Magic matched; any surplus bytes were pushed to the assembler.
    Ok,
    /// Eight bytes arrived but they are not the protocol magic.
    BadMagic(WireError),
    /// Disconnect, I/O failure, or idle timeout before eight bytes.
    Gone,
    /// The stop broadcast fired first.
    Stopped,
}

async fn read_client_handshake(
    stream: &hard_aio::TcpStream,
    asm: &mut FrameAssembler,
    rbuf: &mut [u8],
    idle: Duration,
    stop: &hard_aio::Event,
) -> Handshake {
    let mut got: Vec<u8> = Vec::with_capacity(16);
    while got.len() < 8 {
        let deadline = Instant::now() + idle;
        match hard_aio::race(stream.read(rbuf, Some(deadline)), stop.wait()).await {
            hard_aio::Either::Left(Ok(0)) | hard_aio::Either::Left(Err(_)) => {
                return Handshake::Gone
            }
            hard_aio::Either::Left(Ok(n)) => got.extend_from_slice(&rbuf[..n]),
            hard_aio::Either::Right(()) => return Handshake::Stopped,
        }
    }
    // A pipelining client may send frames in the same packet as its
    // handshake; hand the surplus to the frame assembler.
    asm.push(&got[8..]);
    match read_handshake(&mut std::io::Cursor::new(&got[..8])) {
        Ok(()) => Handshake::Ok,
        Err(e) => Handshake::BadMagic(e),
    }
}

async fn handle_connection(stream: hard_aio::TcpStream, shared: Arc<Shared>) {
    let conn_start = Instant::now();
    let obs = shared.obs.clone();
    let idle = shared.cfg.idle_timeout;
    let mut asm = FrameAssembler::new();
    let mut rbuf = vec![0u8; READ_CHUNK];

    // Capacity gate before any protocol work: a connection beyond the
    // session limit gets the handshake echo (so the client's reader is
    // in a defined state) and a Busy shed with a retry-after hint.
    let prev = shared.active_sessions.fetch_add(1, Ordering::Relaxed);
    obs.gauge_add(GaugeId::ServeActiveSessions, 1);
    let _slot = SessionSlot(&shared);
    if prev >= shared.cfg.max_sessions
        && !settle_below(&shared, shared.cfg.max_sessions, ADMIT_GRACE).await
    {
        obs.counter(CounterId::ServeRejected, 1);
        let mut out = Vec::new();
        let _ = write_handshake(&mut out);
        push_busy(
            &mut out,
            &shared,
            &obs,
            None,
            ShedReason::Slots,
            &format!("server at capacity ({} sessions)", shared.cfg.max_sessions),
        );
        let _ = stream.write_all(&out, Some(Instant::now() + idle)).await;
        return;
    }

    let accept = conn_start.elapsed();
    let hs_start = Instant::now();
    match read_client_handshake(&stream, &mut asm, &mut rbuf, idle, &shared.stop).await {
        Handshake::Ok => {}
        Handshake::BadMagic(e) => {
            // Bad magic still gets a spec-shaped reply; a raw
            // disconnect gets nothing (there is no one to talk to).
            let mut out = Vec::new();
            let _ = write_handshake(&mut out);
            push_error(&mut out, &obs, None, &format!("handshake rejected: {e}"));
            let _ = stream.write_all(&out, Some(Instant::now() + idle)).await;
            return;
        }
        Handshake::Gone => {
            obs.counter(CounterId::ServeErrors, 1);
            return;
        }
        Handshake::Stopped => return,
    }
    let mut echo = Vec::new();
    let _ = write_handshake(&mut echo);
    if stream
        .write_all(&echo, Some(Instant::now() + idle))
        .await
        .is_err()
    {
        obs.counter(CounterId::ServeErrors, 1);
        return;
    }
    let handshake = hs_start.elapsed();
    obs.histogram(HistId::ServeStageHandshakeUs, as_us(handshake));

    run_session_loop(
        &stream,
        &shared,
        &obs,
        &mut asm,
        &mut rbuf,
        PreSession { accept, handshake },
    )
    .await;
}

/// One open session's identity: the detector it runs, the trace ID
/// every response/span/log line for it carries, and when it began.
struct SessionCtx {
    kind: DetectorKind,
    trace: u64,
    started: Instant,
}

async fn run_session_loop(
    stream: &hard_aio::TcpStream,
    shared: &Arc<Shared>,
    obs: &ObsHandle,
    asm: &mut FrameAssembler,
    rbuf: &mut [u8],
    pre: PreSession,
) {
    let idle = shared.cfg.idle_timeout;
    let mut session: Option<SessionCtx> = None;
    let mut ingest: Option<Ingest> = None;
    let mut pre = Some(pre);
    let mut guard = InflightGuard::new(Arc::clone(shared));
    let frame_cap = u32::try_from(shared.cfg.max_session_bytes.min(u64::from(MAX_FRAME_BYTES)))
        .unwrap_or(MAX_FRAME_BYTES);
    loop {
        let open_trace = session.as_ref().map(|s| s.trace);
        let frame = match next_frame(stream, asm, rbuf, frame_cap, idle, &shared.stop).await {
            NextFrame::Frame(f) => f,
            NextFrame::Timeout => {
                send_error(
                    stream,
                    obs,
                    idle,
                    open_trace,
                    "idle timeout: no frame received in time",
                )
                .await;
                return;
            }
            NextFrame::Disconnect => {
                // Mid-session (after Begin) it is an abandoned upload;
                // between sessions it is a normal close.
                if session.is_some() {
                    obs.counter(CounterId::ServeErrors, 1);
                }
                return;
            }
            NextFrame::Bad(e) => {
                send_error(
                    stream,
                    obs,
                    idle,
                    open_trace,
                    &format!("protocol error: {e}"),
                )
                .await;
                return;
            }
            NextFrame::Stopped => {
                // The explicit-verdict drain: a session mid-upload is
                // aborted with an Error frame, an idle connection is
                // dismissed with Bye — nobody sees a silent close.
                match session.take() {
                    Some(sess) => {
                        send_error(
                            stream,
                            obs,
                            idle,
                            Some(sess.trace),
                            "server shutting down before the session completed",
                        )
                        .await;
                        close_session(shared, obs, &sess, "error");
                    }
                    None => {
                        let mut out = Vec::new();
                        let _ = send_frame(&mut out, FrameKind::Bye, &[]);
                        let _ = stream.write_all(&out, Some(Instant::now() + idle)).await;
                    }
                }
                return;
            }
        };
        match frame.kind {
            FrameKind::Begin => {
                if session.is_some() {
                    send_error(
                        stream,
                        obs,
                        idle,
                        open_trace,
                        "protocol error: Begin inside an open session",
                    )
                    .await;
                    return;
                }
                // The session's trace ID is fixed here: the client's
                // if the Begin extension carried one, server-assigned
                // otherwise. Every response, span, and log line for
                // this session carries it from now on.
                let (label, client_trace) = decode_begin(&frame.payload);
                let trace = client_trace.unwrap_or_else(|| assign_trace(shared));
                // Admission control: shed *before* accepting the
                // upload when the detection gate could not take the
                // session's work anyway. Cheaper for both sides than
                // streaming megabytes only to shed later.
                if shared.gate.is_saturated() {
                    send_busy(
                        stream,
                        shared,
                        obs,
                        Some(trace),
                        ShedReason::Queue,
                        "detection queue saturated",
                    )
                    .await;
                    return;
                }
                let kind = match DetectorKind::parse(&label) {
                    Ok(k) => k,
                    Err(e) => {
                        send_error(stream, obs, idle, Some(trace), &e).await;
                        return;
                    }
                };
                // The connection's timeline started at accept, before
                // any trace ID existed; replay those stages as traced
                // spans now that the first session owns them.
                if let Some(p) = pre.take() {
                    obs.span_external(Some(trace), || "serve:accept".into(), p.accept, 0);
                    obs.span_external(Some(trace), || "serve:handshake".into(), p.handshake, 0);
                }
                ingest = Some(Ingest::new(shared.cfg.report_cache, kind.label()));
                session = Some(SessionCtx {
                    kind,
                    trace,
                    started: Instant::now(),
                });
            }
            FrameKind::Data => {
                let Some(sess) = session.as_ref() else {
                    send_error(stream, obs, idle, None, "protocol error: Data before Begin").await;
                    return;
                };
                let ing = ingest
                    .as_mut()
                    .expect("ingest lives while a session is open");
                let n = frame.payload.len() as u64;
                if ing.bytes + n > shared.cfg.max_session_bytes {
                    send_error(
                        stream,
                        obs,
                        idle,
                        Some(sess.trace),
                        &format!(
                            "session exceeds {} upload bytes",
                            shared.cfg.max_session_bytes
                        ),
                    )
                    .await;
                    return;
                }
                if let Err(e) = guard.grow(n) {
                    // A spent global budget is load, not client error:
                    // shed so the client retries after the drain.
                    send_busy(stream, shared, obs, Some(sess.trace), ShedReason::Bytes, &e).await;
                    return;
                }
                obs.counter(CounterId::ServeBytesIn, n);
                ing.accept(&frame.payload, sess, shared, obs).await;
            }
            FrameKind::End => {
                let Some(sess) = session.take() else {
                    send_error(stream, obs, idle, None, "protocol error: End before Begin").await;
                    return;
                };
                let ing = ingest.take().expect("ingest lives while a session is open");
                let upload = sess.started.elapsed();
                obs.histogram(HistId::ServeStageUploadUs, as_us(upload));
                obs.span_external(Some(sess.trace), || "serve:upload".into(), upload, 0);
                match finish_session(shared, obs, &sess, ing).await {
                    Ok(finished) => {
                        obs.counter(CounterId::ServeSessions, 1);
                        let flush_start = Instant::now();
                        let payload = encode_traced(Some(sess.trace), finished.body.as_bytes());
                        let mut out = Vec::new();
                        let _ = send_frame(&mut out, FrameKind::Report, &payload);
                        if stream
                            .write_all(&out, Some(Instant::now() + idle))
                            .await
                            .is_err()
                        {
                            obs.counter(CounterId::ServeErrors, 1);
                            return;
                        }
                        let flush = flush_start.elapsed();
                        obs.histogram(HistId::ServeStageFlushUs, as_us(flush));
                        obs.span_external(Some(sess.trace), || "serve:flush".into(), flush, 0);
                        let verdict = if finished.cache_hit {
                            "cache"
                        } else {
                            "report"
                        };
                        close_session(shared, obs, &sess, verdict);
                    }
                    Err(e) => {
                        send_error(stream, obs, idle, Some(sess.trace), &e).await;
                        close_session(shared, obs, &sess, "error");
                        return;
                    }
                }
                guard.release();
            }
            FrameKind::Health => {
                obs.counter(CounterId::ServeHealthProbes, 1);
                settle_health(shared).await;
                let snapshot = health_snapshot(shared, true);
                let mut out = Vec::new();
                let _ = send_frame(&mut out, FrameKind::Healthy, snapshot.as_bytes());
                if stream
                    .write_all(&out, Some(Instant::now() + idle))
                    .await
                    .is_err()
                {
                    obs.counter(CounterId::ServeErrors, 1);
                    return;
                }
            }
            FrameKind::Shutdown => {
                shared.shutdown.store(true, Ordering::Relaxed);
                shared.stop.set();
                let mut out = Vec::new();
                let _ = send_frame(&mut out, FrameKind::Bye, &[]);
                let _ = stream.write_all(&out, Some(Instant::now() + idle)).await;
                return;
            }
            FrameKind::Report
            | FrameKind::Error
            | FrameKind::Bye
            | FrameKind::Busy
            | FrameKind::Healthy => {
                send_error(
                    stream,
                    obs,
                    idle,
                    open_trace,
                    &format!("protocol error: client sent server frame {:?}", frame.kind),
                )
                .await;
                return;
            }
        }
    }
}

/// Where a session's upload stands in the incremental pipeline.
enum IngestState {
    /// Accumulating bytes until the `HARDCRP1` header is complete.
    Head(Vec<u8>),
    /// Header validated; payload bytes stream through the feeder.
    Streaming {
        header: StreamHeader,
        feeder: StreamFeeder,
    },
    /// The upload already failed; remaining frames are drained (and
    /// still metered) so the error is delivered at `End`, preserving
    /// the buffered server's client-visible ordering.
    Failed(String),
}

/// One session's incremental ingest: detection state plus the
/// accumulated stage timings emitted as spans at `End`.
struct Ingest {
    state: IngestState,
    /// Total upload bytes received this session (the per-session cap).
    bytes: u64,
    /// Running report-cache key (`label · 0x00 · upload bytes`), kept
    /// incrementally so the lookup at `End` costs nothing extra.
    cache_fnv: Option<u64>,
    /// Time spent parked at the detection gate, summed across chunks.
    queue_wait: Duration,
    /// Time spent inside the detector, summed across chunks.
    detect: Duration,
}

impl Ingest {
    fn new(report_cache: bool, label: &str) -> Ingest {
        let cache_fnv = report_cache.then(|| {
            let fnv = fnv1a_update(FNV1A_INIT, label.as_bytes());
            fnv1a_update(fnv, &[0])
        });
        Ingest {
            state: IngestState::Head(Vec::new()),
            bytes: 0,
            cache_fnv,
            queue_wait: Duration::ZERO,
            detect: Duration::ZERO,
        }
    }

    /// Absorbs one `Data` payload: metered always, fed into detection
    /// once the header is through.
    async fn accept(
        &mut self,
        chunk: &[u8],
        sess: &SessionCtx,
        shared: &Arc<Shared>,
        obs: &ObsHandle,
    ) {
        self.bytes += chunk.len() as u64;
        if let Some(fnv) = &mut self.cache_fnv {
            *fnv = fnv1a_update(*fnv, chunk);
        }
        let head = match &mut self.state {
            IngestState::Failed(_) => return,
            IngestState::Streaming { .. } => {
                self.feed_gated(chunk, shared, obs).await;
                return;
            }
            IngestState::Head(head) => {
                head.extend_from_slice(chunk);
                if head.len() >= CORPUS_MAGIC.len() && &head[..CORPUS_MAGIC.len()] != CORPUS_MAGIC {
                    self.state =
                        IngestState::Failed("upload is not a HARDCRP1 corpus stream".into());
                    return;
                }
                if head.len() < 24 {
                    return;
                }
                let inj_len =
                    u32::from_le_bytes(head[20..24].try_into().expect("4 bytes")) as usize;
                if head.len() < 24 + inj_len + 16 {
                    return;
                }
                std::mem::take(head)
            }
        };
        // The header is complete: validate it, check the event cap,
        // and stand up the feeder — then stream the bytes that rode in
        // behind it.
        match parse_header(&head) {
            Err(e) => self.state = IngestState::Failed(e),
            Ok((header, payload_at)) => {
                if header.events > shared.cfg.max_session_events {
                    self.state = IngestState::Failed(format!(
                        "trace has {} events, over the {}-event session cap",
                        header.events, shared.cfg.max_session_events
                    ));
                    return;
                }
                let feeder = StreamFeeder::new(&sess.kind, header.num_threads as usize);
                self.state = IngestState::Streaming { header, feeder };
                if head.len() > payload_at {
                    let rest = head[payload_at..].to_vec();
                    self.feed_gated(&rest, shared, obs).await;
                }
            }
        }
    }

    /// Runs one chunk through the detector under a gate permit,
    /// accumulating queue-wait and detect time for the `End` spans.
    async fn feed_gated(&mut self, bytes: &[u8], shared: &Arc<Shared>, obs: &ObsHandle) {
        shared.gate.load.fetch_add(1, Ordering::AcqRel);
        obs.gauge_add(GaugeId::ServeQueueDepth, 1);
        let waited = Instant::now();
        shared.gate.sem.acquire().await;
        self.queue_wait += waited.elapsed();
        obs.gauge_sub(GaugeId::ServeQueueDepth, 1);
        obs.gauge_add(GaugeId::ServeBusyWorkers, 1);
        let ran = Instant::now();
        let fed = match &mut self.state {
            IngestState::Streaming { feeder, .. } => feeder.feed(bytes),
            _ => Ok(()),
        };
        self.detect += ran.elapsed();
        obs.gauge_sub(GaugeId::ServeBusyWorkers, 1);
        shared.gate.sem.release();
        shared.gate.load.fetch_sub(1, Ordering::AcqRel);
        if let Err(e) = fed {
            self.state = IngestState::Failed(e);
        }
    }
}

/// A session's encoded report plus how it was produced (fresh
/// detection or a report-cache hit).
struct FinishedSession {
    body: String,
    cache_hit: bool,
}

/// Settles a session at `End`: delivers any deferred upload failure,
/// answers repeats from the report cache, or finalizes the
/// incremental detection and verifies the stream against its header.
async fn finish_session(
    shared: &Arc<Shared>,
    obs: &ObsHandle,
    sess: &SessionCtx,
    ingest: Ingest,
) -> Result<FinishedSession, String> {
    let Ingest {
        state,
        cache_fnv,
        mut queue_wait,
        mut detect,
        ..
    } = ingest;
    let (header, feeder) = match state {
        IngestState::Failed(e) => return Err(e),
        IngestState::Head(head) => {
            // End arrived before the header completed. Reproduce the
            // buffered server's verdicts: non-magic bytes are "not a
            // corpus", magic with a short header is a truncation.
            if head.len() < CORPUS_MAGIC.len() || &head[..CORPUS_MAGIC.len()] != CORPUS_MAGIC {
                return Err("upload is not a HARDCRP1 corpus stream".into());
            }
            return Err(parse_header(&head)
                .err()
                .unwrap_or_else(|| format!("truncated header: {} bytes", head.len())));
        }
        IngestState::Streaming { header, feeder } => (header, feeder),
    };

    if let Some(key) = cache_fnv {
        if let Some(entry) = shared
            .report_cache
            .lock()
            .map_err(|_| "report cache poisoned".to_string())?
            .get(&key)
        {
            obs.counter(CounterId::ServeCacheHits, 1);
            // Attribute the hit to both sessions: the hitting one (by
            // trace tag) and the creating one (by name). The
            // incremental detection work is discarded — hit responses
            // keep the cache-only span shape.
            obs.span_external(
                Some(sess.trace),
                || {
                    format!(
                        "serve:cache-hit:{}",
                        hard_obs::fmt_trace(entry.origin_trace)
                    )
                },
                Duration::ZERO,
                0,
            );
            return Ok(FinishedSession {
                body: entry.body.clone(),
                cache_hit: true,
            });
        }
    }

    // Flush the feeder's tail batch and close out the detector under
    // a gate permit, like any other chunk of detection work.
    shared.gate.load.fetch_add(1, Ordering::AcqRel);
    obs.gauge_add(GaugeId::ServeQueueDepth, 1);
    let waited = Instant::now();
    shared.gate.sem.acquire().await;
    queue_wait += waited.elapsed();
    obs.gauge_sub(GaugeId::ServeQueueDepth, 1);
    obs.gauge_add(GaugeId::ServeBusyWorkers, 1);
    let ran = Instant::now();
    let finished = feeder.finish();
    detect += ran.elapsed();
    obs.gauge_sub(GaugeId::ServeBusyWorkers, 1);
    shared.gate.sem.release();
    shared.gate.load.fetch_sub(1, Ordering::AcqRel);

    let result = finished.and_then(|(run, events, fnv)| {
        if events != header.events {
            return Err(format!(
                "stream ended after {events} of {} events",
                header.events
            ));
        }
        if fnv != header.payload_fnv {
            return Err("payload checksum mismatch after replay".into());
        }
        Ok(ReportBody {
            label: sess.kind.label().to_string(),
            events,
            reports: run.reports,
        })
    });
    // The detect-pipeline stages are observed whether detection
    // succeeded or not (an error session still waited and computed),
    // exactly once per session.
    obs.histogram(HistId::ServeStageQueueWaitUs, as_us(queue_wait));
    obs.span_external(
        Some(sess.trace),
        || "serve:queue-wait".into(),
        queue_wait,
        0,
    );
    let events = result.as_ref().map_or(0, |b| b.events);
    obs.histogram(HistId::ServeStageDetectUs, as_us(detect));
    obs.span_external(
        Some(sess.trace),
        || format!("serve:detect:{}", sess.kind.label()),
        detect,
        events,
    );
    let body = result?;
    obs.histogram(HistId::ServeSessionEvents, body.events);
    let render_start = Instant::now();
    let encoded = body.encode();
    let render = render_start.elapsed();
    obs.histogram(HistId::ServeStageRenderUs, as_us(render));
    obs.span_external(Some(sess.trace), || "serve:render".into(), render, 0);
    if let Some(key) = cache_fnv {
        if let Ok(mut cache) = shared.report_cache.lock() {
            if cache.len() >= REPORT_CACHE_CAP {
                cache.clear();
            }
            cache.insert(
                key,
                CachedReport {
                    body: encoded.clone(),
                    origin_trace: sess.trace,
                },
            );
        }
    }
    Ok(FinishedSession {
        body: encoded,
        cache_hit: false,
    })
}

/// Records a completed session (any verdict) in the recent ring and
/// runs the threshold-gated slow-session check.
fn close_session(shared: &Shared, obs: &ObsHandle, sess: &SessionCtx, verdict: &'static str) {
    let wall = sess.started.elapsed();
    let wall_us = as_us(wall);
    if let Ok(mut recent) = shared.recent.lock() {
        if recent.len() >= RECENT_SESSIONS_CAP {
            recent.pop_front();
        }
        recent.push_back(SessionSummary {
            trace: sess.trace,
            verdict,
            wall_us,
        });
    }
    if let Some(threshold) = shared.cfg.slow_session {
        if wall > threshold {
            let threshold_us = as_us(threshold);
            obs.counter(CounterId::ServeSlowSessions, 1);
            obs.emit(|| Event::SlowSession {
                trace: sess.trace,
                wall_us,
                threshold_us,
            });
            eprintln!(
                "hard-serve: slow-session trace={} verdict={verdict} wall_us={wall_us} \
                 threshold_us={threshold_us}",
                hard_obs::fmt_trace(sess.trace)
            );
        }
    }
}

/// Which admission bound shed a session. Each reason has its own
/// counter alongside the `hard_serve_shed_total` total, so a scrape
/// shows *why* a server is shedding, not just that it is.
#[derive(Clone, Copy)]
enum ShedReason {
    /// Session slots exhausted (`max_sessions`).
    Slots,
    /// The global in-flight byte budget is spent.
    Bytes,
    /// The detection gate is saturated.
    Queue,
}

impl ShedReason {
    const fn counter(self) -> CounterId {
        match self {
            ShedReason::Slots => CounterId::ServeShedSlots,
            ShedReason::Bytes => CounterId::ServeShedBytes,
            ShedReason::Queue => CounterId::ServeShedQueue,
        }
    }
}

/// Encodes an `Error` frame into `out` and counts it. Split from the
/// async write so multi-frame replies (handshake echo + error) go out
/// in one buffer.
fn push_error(out: &mut Vec<u8>, obs: &ObsHandle, trace: Option<u64>, msg: &str) {
    obs.counter(CounterId::ServeErrors, 1);
    let payload = encode_traced(trace, msg.as_bytes());
    let _ = send_frame(out, FrameKind::Error, &payload);
}

/// Encodes a `Busy` frame into `out` with the configured retry-after
/// hint. Counted under `hard_serve_shed_total` plus the per-reason
/// counter, not the error counter: a shed is correct behavior under
/// load, not failure.
fn push_busy(
    out: &mut Vec<u8>,
    shared: &Shared,
    obs: &ObsHandle,
    trace: Option<u64>,
    why: ShedReason,
    reason: &str,
) {
    obs.counter(CounterId::ServeShed, 1);
    obs.counter(why.counter(), 1);
    let body = encode_busy(shared.cfg.busy_retry_after.as_millis() as u64, reason);
    let payload = encode_traced(trace, &body);
    let _ = send_frame(out, FrameKind::Busy, &payload);
}

async fn send_error(
    stream: &hard_aio::TcpStream,
    obs: &ObsHandle,
    idle: Duration,
    trace: Option<u64>,
    msg: &str,
) {
    let mut out = Vec::new();
    push_error(&mut out, obs, trace, msg);
    let _ = stream.write_all(&out, Some(Instant::now() + idle)).await;
}

async fn send_busy(
    stream: &hard_aio::TcpStream,
    shared: &Shared,
    obs: &ObsHandle,
    trace: Option<u64>,
    why: ShedReason,
    reason: &str,
) {
    let mut out = Vec::new();
    push_busy(&mut out, shared, obs, trace, why, reason);
    let _ = stream
        .write_all(&out, Some(Instant::now() + shared.cfg.idle_timeout))
        .await;
}

/// Clamps a byte count into gauge range.
#[allow(clippy::cast_possible_wrap)]
fn clamp_i64(n: u64) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

/// A `Duration` as whole microseconds, saturating.
fn as_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The next server-assigned trace ID: splitmix64 over a per-server
/// sequence — deterministic (no clock or RNG) yet well spread, so
/// assigned IDs do not collide with small client-chosen ones.
fn assign_trace(shared: &Shared) -> u64 {
    let n = shared.trace_seq.fetch_add(1, Ordering::Relaxed);
    let mut z = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The admission predicate shared by wire `Health` probes, the
/// `/healthz` HTTP endpoint, and [`ServeStats::ready`].
fn readiness(shared: &Shared, active: usize) -> bool {
    !shared.shutdown.load(Ordering::Relaxed)
        && active < shared.cfg.max_sessions
        && shared.inflight_bytes.load(Ordering::Relaxed) < shared.cfg.max_inflight_bytes
        && !shared.gate.is_saturated()
}

/// Renders the `Healthy` JSON snapshot of the admission state. With
/// `exclude_probe`, the probing connection's own session slot is
/// excluded, so a wire probe on an otherwise idle server reports zero
/// active sessions — which is what makes the snapshot usable as a leak
/// detector after a drain. HTTP probes hold no slot and pass `false`.
fn health_snapshot(shared: &Shared, exclude_probe: bool) -> String {
    let mut active = shared.active_sessions.load(Ordering::Relaxed);
    if exclude_probe {
        active = active.saturating_sub(1);
    }
    let inflight = shared.inflight_bytes.load(Ordering::Relaxed);
    let load = shared.gate.load();
    let ready = readiness(shared, active);
    format!(
        "{{\"active_sessions\":{active},\"max_sessions\":{},\"inflight_bytes\":{inflight},\
         \"max_inflight_bytes\":{},\"pool_load\":{load},\"pool_capacity\":{},\"ready\":{ready}}}",
        shared.cfg.max_sessions,
        shared.cfg.max_inflight_bytes,
        shared.gate.capacity(),
    )
}
