/root/repo/target/debug/deps/hard_cache-57eefba9828b2598.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/cstate.rs crates/cache/src/directory.rs crates/cache/src/geometry.rs crates/cache/src/hierarchy.rs crates/cache/src/policy.rs crates/cache/src/stats.rs crates/cache/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libhard_cache-57eefba9828b2598.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/cstate.rs crates/cache/src/directory.rs crates/cache/src/geometry.rs crates/cache/src/hierarchy.rs crates/cache/src/policy.rs crates/cache/src/stats.rs crates/cache/src/timing.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/cstate.rs:
crates/cache/src/directory.rs:
crates/cache/src/geometry.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/policy.rs:
crates/cache/src/stats.rs:
crates/cache/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
