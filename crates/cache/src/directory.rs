//! Directory-resident detection metadata (paper §3.4, second half).
//!
//! "For a directory-based protocol, the candidate set and the LState
//! are stored in the directory instead of together with each cache
//! line. Every shared access gets the candidate set and LState
//! information from the directory, and then puts the new information
//! back."
//!
//! [`MetaDirectory`] is that home-node store: one metadata entry per
//! cached line, created on first access, retired when the line is
//! displaced from the L2 (the detection window is the same as the
//! snoopy design's). Management is simpler — there is exactly one copy,
//! so no broadcasts — but *every* monitored access performs a directory
//! round trip, even L1 hits, which is the §3.4 traffic trade-off the
//! `hard` crate's directory machine measures.

use crate::policy::MetaFactory;
use hard_types::{Addr, CoreId, FastHashMap};

/// The per-line metadata directory.
///
/// Entries live in a slab (stable slot indices, tombstoned on retire,
/// slots recycled through a free list) behind a hash index, which gives
/// the home node the same prepared-probe treatment PR 8 gave the snoopy
/// caches: a same-line run of accesses revalidates one remembered slot
/// instead of re-walking the map — the dominant pattern, since every
/// monitored access round-trips here, even L1 hits. Semantically
/// identical to the previous ordered-map store (the flash callbacks are
/// per-entry independent, so iteration order is unobservable).
#[derive(Clone, Debug)]
pub struct MetaDirectory<F: MetaFactory> {
    factory: F,
    index: FastHashMap<Addr, u32>,
    slab: Vec<Option<(Addr, F::Meta)>>,
    free: Vec<u32>,
    /// The slot that served the previous round trip — validated
    /// (address match on a live slot) before every reuse.
    hot: Option<(Addr, u32)>,
    requests: u64,
}

impl<F: MetaFactory> MetaDirectory<F> {
    /// An empty directory.
    #[must_use]
    pub fn new(factory: F) -> MetaDirectory<F> {
        MetaDirectory {
            factory,
            index: FastHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            hot: None,
            requests: 0,
        }
    }

    /// Gets (creating if absent) the metadata entry for `line`,
    /// counting one get+put-back round trip.
    ///
    /// `core` initializes fresh entries, mirroring the fetch-time
    /// initialization of the snoopy design.
    pub fn access(&mut self, line: Addr, core: CoreId) -> &mut F::Meta {
        self.requests += 1;
        // Hot-entry fast path: the previous round trip's slot, if it
        // still holds this line (retire tombstones the slot and the
        // free list may recycle it, so revalidate the stored address).
        if let Some((haddr, hslot)) = self.hot {
            if haddr == line
                && self
                    .slab
                    .get(hslot as usize)
                    .is_some_and(|s| s.as_ref().is_some_and(|(a, _)| *a == line))
            {
                let entry = self.slab[hslot as usize]
                    .as_mut()
                    .expect("validated hot entry");
                return &mut entry.1;
            }
        }
        let slot = match self.index.get(&line) {
            Some(&s) => s,
            None => {
                let meta = self.factory.fresh(core);
                let s = if let Some(s) = self.free.pop() {
                    self.slab[s as usize] = Some((line, meta));
                    s
                } else {
                    self.slab.push(Some((line, meta)));
                    u32::try_from(self.slab.len() - 1).expect("slab outgrew u32 slots")
                };
                self.index.insert(line, s);
                s
            }
        };
        self.hot = Some((line, slot));
        let entry = self.slab[slot as usize].as_mut().expect("indexed entry");
        &mut entry.1
    }

    /// Reads the entry without counting a request (tests/inspection).
    #[must_use]
    pub fn peek(&self, line: Addr) -> Option<&F::Meta> {
        let &slot = self.index.get(&line)?;
        self.slab[slot as usize].as_ref().map(|(_, m)| m)
    }

    /// Retires the entry for a line displaced from the L2; the
    /// detection metadata is lost exactly as in the in-cache design.
    pub fn retire(&mut self, line: Addr) {
        if let Some(slot) = self.index.remove(&line) {
            self.slab[slot as usize] = None;
            self.free.push(slot);
            if self.hot.is_some_and(|(a, _)| a == line) {
                self.hot = None;
            }
        }
    }

    /// Applies `f` to every live entry (barrier flash-reset).
    pub fn flash(&mut self, mut f: impl FnMut(&mut F::Meta)) {
        for entry in self.slab.iter_mut().flatten() {
            f(&mut entry.1);
        }
    }

    /// Number of directory round trips performed.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the directory holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, Debug)]
    struct CountFactory;

    impl MetaFactory for CountFactory {
        type Meta = u32;

        fn fresh(&self, core: CoreId) -> u32 {
            core.0 * 100
        }
    }

    #[test]
    fn access_creates_then_reuses() {
        let mut d = MetaDirectory::new(CountFactory);
        assert!(d.is_empty());
        let m = d.access(Addr(0x40), CoreId(2));
        assert_eq!(*m, 200);
        *m = 7;
        assert_eq!(*d.access(Addr(0x40), CoreId(0)), 7, "entry persists");
        assert_eq!(d.requests(), 2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn retire_loses_the_entry() {
        let mut d = MetaDirectory::new(CountFactory);
        *d.access(Addr(0x40), CoreId(0)) = 9;
        d.retire(Addr(0x40));
        assert!(d.peek(Addr(0x40)).is_none());
        // Re-access re-initializes, as after an L2 displacement.
        assert_eq!(*d.access(Addr(0x40), CoreId(1)), 100);
    }

    #[test]
    fn flash_touches_all_entries() {
        let mut d = MetaDirectory::new(CountFactory);
        d.access(Addr(0x40), CoreId(0));
        d.access(Addr(0x80), CoreId(1));
        d.flash(|m| *m = 1);
        assert_eq!(*d.peek(Addr(0x40)).unwrap(), 1);
        assert_eq!(*d.peek(Addr(0x80)).unwrap(), 1);
    }
}
