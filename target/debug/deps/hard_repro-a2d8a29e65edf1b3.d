/root/repo/target/debug/deps/hard_repro-a2d8a29e65edf1b3.d: src/lib.rs

/root/repo/target/debug/deps/hard_repro-a2d8a29e65edf1b3: src/lib.rs

src/lib.rs:
