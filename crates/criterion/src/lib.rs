//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate
//! implements the slice of the criterion API the workspace's benches
//! use. Measurement is deliberately simple — a timed loop printing
//! mean ns/iteration — with none of criterion's statistics, but the
//! bench sources compile and run unchanged against the real crate.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stand-in runs one
/// setup per routine call regardless, so the variants only document
/// intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for group throughput annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    fn with_budget(budget: Duration) -> Bencher {
        Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget,
        }
    }

    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            black_box(routine());
            n += 1;
            if n >= 10 && (start.elapsed() >= self.budget || n >= 1_000_000) {
                break;
            }
        }
        self.iters = n;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        let wall = Instant::now();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            n += 1;
            if n >= 10 && (wall.elapsed() >= self.budget || n >= 1_000_000) {
                break;
            }
        }
        self.iters = n;
        self.elapsed = total;
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.budget, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (scales the time budget here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Smaller sample requests signal slower benches; keep the
        // budget proportional so total wall time stays bounded.
        self.budget = Duration::from_millis(5 * n.clamp(1, 100) as u64);
        self
    }

    /// Annotates per-iteration throughput (recorded, not printed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.budget, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, f: &mut F) {
    let mut b = Bencher::with_budget(budget);
    f(&mut b);
    let ns = if b.iters == 0 {
        0
    } else {
        b.elapsed.as_nanos() / u128::from(b.iters)
    };
    println!("bench {name:<40} {ns:>12} ns/iter ({} iters)", b.iters);
}

/// Declares a function running each target benchmark in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls >= 10);
    }

    #[test]
    fn groups_run_batched_routines() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(1);
        g.throughput(Throughput::Elements(4));
        let mut calls = 0u64;
        g.bench_function("smoke", |b| {
            b.iter_batched(|| 2u64, |x| calls += x, BatchSize::SmallInput);
        });
        g.finish();
        assert!(calls >= 20);
    }
}
