/root/repo/target/debug/examples/quickstart-548714b1d38e768a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-548714b1d38e768a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
