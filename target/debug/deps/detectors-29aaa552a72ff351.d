/root/repo/target/debug/deps/detectors-29aaa552a72ff351.d: crates/bench/benches/detectors.rs Cargo.toml

/root/repo/target/debug/deps/libdetectors-29aaa552a72ff351.rmeta: crates/bench/benches/detectors.rs Cargo.toml

crates/bench/benches/detectors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
