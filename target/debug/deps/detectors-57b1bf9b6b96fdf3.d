/root/repo/target/debug/deps/detectors-57b1bf9b6b96fdf3.d: crates/bench/benches/detectors.rs

/root/repo/target/debug/deps/detectors-57b1bf9b6b96fdf3: crates/bench/benches/detectors.rs

crates/bench/benches/detectors.rs:
