//! The parallel campaign engine's determinism contract: for every
//! experiment, `--jobs 1` and `--jobs N` produce **bit-identical**
//! results — same tables, same race reports, same merged observability
//! counters — because cells are pure functions of their seeds and the
//! pool slots results by cell index, never completion order.

use hard_harness::experiments::{faults, obs, table2};
use hard_harness::runner::{execute_hardened, RunLimits, RunOutcome};
use hard_harness::{injected_trace, probes, CampaignConfig, Checkpoint, DetectorKind};
use hard_workloads::App;

/// A small campaign: every app at reduced scale, two injected runs.
fn reduced(jobs: usize) -> CampaignConfig {
    CampaignConfig {
        jobs,
        ..CampaignConfig::reduced(0.05, 2)
    }
}

#[test]
fn table2_is_bit_identical_across_job_counts() {
    let serial = table2::run(&reduced(1));
    for jobs in [2, 4] {
        let parallel = table2::run(&reduced(jobs));
        assert_eq!(
            serial.render().to_string(),
            parallel.render().to_string(),
            "jobs={jobs}"
        );
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.app, b.app);
            for (x, y) in [
                (a.hard, b.hard),
                (a.hard_ideal, b.hard_ideal),
                (a.hb, b.hb),
                (a.hb_ideal, b.hb_ideal),
            ] {
                assert_eq!(x.detected, y.detected, "{} jobs={jobs}", a.app);
                assert_eq!(x.missed_displaced, y.missed_displaced);
                assert_eq!(x.missed_other, y.missed_other);
                assert_eq!(x.alarms, y.alarms);
            }
        }
    }
}

#[test]
fn race_reports_are_bit_identical_across_job_counts() {
    // The reports themselves (addresses, sites, event indices), not
    // just the tallies: run the same cell set through the engine at
    // two widths and compare every report of every detector.
    for app in [App::WaterNsquared, App::Barnes] {
        let (trace, injection) = injected_trace(app, &reduced(1), 0);
        let pr = probes(&injection);
        let cells: Vec<DetectorKind> = vec![
            DetectorKind::hard_default(),
            DetectorKind::lockset_ideal(),
            DetectorKind::hb_default(),
            DetectorKind::hb_ideal(),
        ];
        let run_all = |jobs: usize| {
            hard_harness::map_cells(jobs, &cells, |_, kind| {
                match execute_hardened(kind, &trace, &pr, RunLimits::unlimited()) {
                    RunOutcome::Ok(run, _) => run,
                    other => panic!("{app}: unlimited run must complete, got {other:?}"),
                }
            })
        };
        let serial = run_all(1);
        let parallel = run_all(4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.reports, b.reports, "{app}");
            assert_eq!(a.meta_lost, b.meta_lost, "{app}");
        }
    }
}

#[test]
fn fault_sweep_is_bit_identical_across_job_counts() {
    let fcfg = |jobs| faults::FaultsConfig {
        campaign: reduced(jobs),
        rates_ppm: vec![0, 20_000],
        limits: RunLimits::unlimited(),
    };
    let serial = faults::run(&fcfg(1), None);
    let parallel = faults::run(&fcfg(4), None);
    assert_eq!(serial.rows.len(), parallel.rows.len());
    for (a, b) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(a.app, b.app);
        assert_eq!(a.cell, b.cell, "{}@{}ppm", a.app, a.cell.rate_ppm);
    }
    assert_eq!(
        serial.render_aggregate().to_string(),
        parallel.render_aggregate().to_string()
    );
}

#[test]
fn parallel_sweep_checkpoint_resumes_into_a_serial_sweep() {
    // Cells recorded by a jobs=4 sweep must be byte-compatible with a
    // jobs=1 resume (and vice versa): the checkpoint is written on the
    // main thread in app order regardless of completion order.
    let mut p = std::env::temp_dir();
    p.push(format!("hard-determinism-cp-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let fcfg = |jobs| faults::FaultsConfig {
        campaign: reduced(jobs),
        rates_ppm: vec![0, 5_000],
        limits: RunLimits::unlimited(),
    };
    let mut cp = Checkpoint::load(&p, &fcfg(4).key()).unwrap();
    let parallel = faults::run(&fcfg(4), Some(&mut cp));
    assert_eq!(parallel.resumed, 0);

    // The key must not depend on jobs, or resume across widths breaks.
    let mut cp2 = Checkpoint::load(&p, &fcfg(1).key()).unwrap();
    let resumed = faults::run(&fcfg(1), Some(&mut cp2));
    assert_eq!(resumed.resumed, parallel.rows.len());
    for (a, b) in parallel.rows.iter().zip(&resumed.rows) {
        assert_eq!(a.app, b.app);
        assert_eq!(a.cell, b.cell);
    }
    let _ = std::fs::remove_file(&p);
}

#[test]
fn packed_replay_matches_materialized_for_every_detector() {
    // The streamed/packed path must be indistinguishable from the
    // materialized path: same reports, same meta_lost, for all four
    // Table 2 detectors — this is what makes the corpus cache safe.
    use hard_harness::runner::execute_hardened_packed;
    use hard_trace::PackedTrace;
    for app in [App::WaterNsquared, App::Barnes] {
        let (trace, injection) = injected_trace(app, &reduced(1), 0);
        let pr = probes(&injection);
        let packed = PackedTrace::from_trace(&trace).expect("generated traces always pack");
        for kind in [
            DetectorKind::hard_default(),
            DetectorKind::lockset_ideal(),
            DetectorKind::hb_default(),
            DetectorKind::hb_ideal(),
        ] {
            let a = match execute_hardened(&kind, &trace, &pr, RunLimits::unlimited()) {
                RunOutcome::Ok(run, _) => run,
                other => panic!("{app}: materialized run must complete, got {other:?}"),
            };
            let b = match execute_hardened_packed(&kind, &packed, &pr, RunLimits::unlimited()) {
                RunOutcome::Ok(run, _) => run,
                other => panic!("{app}: packed run must complete, got {other:?}"),
            };
            assert_eq!(a.reports, b.reports, "{app} {}", kind.label());
            assert_eq!(a.meta_lost, b.meta_lost, "{app} {}", kind.label());
        }
    }
}

#[test]
fn observability_counters_merge_identically_across_job_counts() {
    let ocfg = |jobs| obs::ObsConfig {
        campaign: reduced(jobs),
        out_dir: None,
    };
    let serial = obs::run(&ocfg(1)).unwrap();
    let parallel = obs::run(&ocfg(4)).unwrap();
    assert_eq!(serial.apps.len(), parallel.apps.len());
    assert_eq!(
        serial.render().to_string(),
        parallel.render().to_string(),
        "per-app merged counter tables must not depend on worker count"
    );
}
