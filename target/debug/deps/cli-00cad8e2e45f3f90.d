/root/repo/target/debug/deps/cli-00cad8e2e45f3f90.d: crates/harness/tests/cli.rs

/root/repo/target/debug/deps/cli-00cad8e2e45f3f90: crates/harness/tests/cli.rs

crates/harness/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_hard-exp=/root/repo/target/debug/hard-exp
