/root/repo/target/debug/deps/properties-1ee07d8ed0e3f69f.d: crates/lockset/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1ee07d8ed0e3f69f.rmeta: crates/lockset/tests/properties.rs Cargo.toml

crates/lockset/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
