/root/repo/target/debug/deps/hard_trace-e1e4831345299c74.d: crates/trace/src/lib.rs crates/trace/src/codec.rs crates/trace/src/detect.rs crates/trace/src/event.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/sched.rs crates/trace/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libhard_trace-e1e4831345299c74.rmeta: crates/trace/src/lib.rs crates/trace/src/codec.rs crates/trace/src/detect.rs crates/trace/src/event.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/sched.rs crates/trace/src/stats.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/codec.rs:
crates/trace/src/detect.rs:
crates/trace/src/event.rs:
crates/trace/src/op.rs:
crates/trace/src/program.rs:
crates/trace/src/sched.rs:
crates/trace/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
