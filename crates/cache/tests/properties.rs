//! Property-based tests for the memory hierarchy's invariants.

use hard_cache::policy::MetaFactory;
use hard_cache::{CacheGeometry, Hierarchy, HierarchyConfig, MetaDirectory};
use hard_types::{AccessKind, Addr, CoreId};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug)]
struct SeqFactory;

impl MetaFactory for SeqFactory {
    type Meta = u64;

    fn fresh(&self, core: CoreId) -> u64 {
        u64::from(core.0) + 1
    }
}

fn tiny() -> HierarchyConfig {
    HierarchyConfig {
        num_cores: 3,
        l1: CacheGeometry::new(128, 2, 32),
        l2: CacheGeometry::new(512, 2, 32),
    }
}

fn arb_accesses() -> impl Strategy<Value = Vec<(u32, u64, bool)>> {
    // (core, line index over a small hot range, is_write)
    prop::collection::vec((0u32..3, 0u64..24, any::<bool>()), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inclusion: every valid L1 line is present in the L2.
    #[test]
    fn inclusion_invariant(accs in arb_accesses()) {
        let mut h = Hierarchy::new(tiny(), SeqFactory).unwrap();
        for (c, l, w) in accs {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let addr = Addr(l * 32);
            h.ensure(CoreId(c), addr, kind).unwrap();
            // After every step the requester holds the line...
            prop_assert!(h.meta(CoreId(c), addr).is_some());
        }
    }

    /// Coherence: if any L1 copy is M or E, it is the only copy; S
    /// copies may be plural. Checked after every single access.
    #[test]
    fn single_writer_invariant(accs in arb_accesses()) {
        let mut h = Hierarchy::new(tiny(), SeqFactory).unwrap();
        for (c, l, w) in accs {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            h.ensure(CoreId(c), Addr(l * 32), kind).unwrap();
            for la in 0..24u64 {
                let addr = Addr(la * 32);
                let states: Vec<_> = (0..3)
                    .filter_map(|cc| h.l1_state(CoreId(cc), addr))
                    .collect();
                if states.iter().any(|s| s.is_exclusive_kind()) {
                    prop_assert_eq!(
                        states.len(),
                        1,
                        "M/E copy of {:?} coexists with others: {:?}",
                        addr,
                        states
                    );
                }
            }
        }
    }

    /// A write by core A followed by any access from core B always
    /// yields B a copy carrying A-era metadata (piggyback), never a
    /// freshly fabricated one — unless the line was displaced from the
    /// L2 in between.
    #[test]
    fn metadata_piggybacks_on_transfer(l in 0u64..8, wb in any::<bool>()) {
        let mut h = Hierarchy::new(tiny(), SeqFactory).unwrap();
        let addr = Addr(l * 32);
        h.ensure(CoreId(0), addr, AccessKind::Write).unwrap();
        *h.meta_mut(CoreId(0), addr).unwrap() = 0xABCD;
        let kind = if wb { AccessKind::Write } else { AccessKind::Read };
        h.ensure(CoreId(1), addr, kind).unwrap();
        prop_assert_eq!(h.meta(CoreId(1), addr), Some(&0xABCD));
    }

    /// Statistics are consistent: hits + misses equals accesses, and
    /// each ensure call counts exactly one access.
    #[test]
    fn stats_add_up(accs in arb_accesses()) {
        let mut h = Hierarchy::new(tiny(), SeqFactory).unwrap();
        let n = accs.len() as u64;
        for (c, l, w) in accs {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            h.ensure(CoreId(c), Addr(l * 32), kind).unwrap();
        }
        prop_assert_eq!(h.stats().accesses(), n);
        prop_assert_eq!(h.stats().l1_hits + h.stats().l1_misses, n);
        prop_assert!(h.stats().l2_hits + h.stats().l2_misses <= h.stats().l1_misses);
    }

    /// Displacement marking is sound: `was_meta_lost` is set for every
    /// line reported through the eviction log, and refetching such a
    /// line yields factory-fresh metadata.
    #[test]
    fn displacement_resets_metadata(stream in prop::collection::vec(0u64..64, 30..120)) {
        let mut h = Hierarchy::new(tiny(), SeqFactory).unwrap();
        let probe = Addr(0);
        h.ensure(CoreId(0), probe, AccessKind::Write).unwrap();
        *h.meta_mut(CoreId(0), probe).unwrap() = 0xFFFF;
        for l in stream {
            h.ensure(CoreId(0), Addr((1 + l) * 32), AccessKind::Read).unwrap();
        }
        let evicted: Vec<Addr> = h.drain_l2_evictions().collect();
        if evicted.contains(&probe) {
            prop_assert!(h.was_meta_lost(probe));
            let r = h.ensure(CoreId(0), probe, AccessKind::Read).unwrap();
            prop_assert!(r.refetch_after_loss);
            prop_assert_eq!(h.meta(CoreId(0), probe), Some(&1), "factory fresh");
        }
    }

    /// The batched access path is the scalar path: on arbitrary event
    /// windows (cross-line, cross-core, byte-offset addresses),
    /// `access_batch` must reproduce a fold of per-access `ensure` +
    /// `meta_mut` calls exactly — `EnsureResult` sequence, `MemStats`,
    /// per-copy MESI states and LRU stamps, every cache's LRU tick,
    /// and the L2 eviction order.
    #[test]
    fn access_batch_is_the_scalar_fold(
        accs in prop::collection::vec(
            (0u32..3, 0u64..1536, any::<bool>()), 1..200),
    ) {
        let window: Vec<(CoreId, Addr, AccessKind)> = accs
            .iter()
            .map(|&(c, a, w)| {
                let kind = if w { AccessKind::Write } else { AccessKind::Read };
                (CoreId(c), Addr(a), kind)
            })
            .collect();

        let mut scalar = Hierarchy::new(tiny(), SeqFactory).unwrap();
        let mut want = Vec::new();
        for &(core, addr, kind) in &window {
            want.push(scalar.ensure(core, addr, kind).unwrap());
            prop_assert!(scalar.meta_mut(core, addr).is_some());
        }

        let mut batched = Hierarchy::new(tiny(), SeqFactory).unwrap();
        let mut got = Vec::new();
        batched.access_batch(&window, &mut got).unwrap();

        prop_assert_eq!(&got, &want, "EnsureResult sequences diverged");
        prop_assert_eq!(scalar.stats(), batched.stats());
        for c in 0..3 {
            let core = CoreId(c);
            prop_assert_eq!(
                scalar.l1_lru_tick(core),
                batched.l1_lru_tick(core),
                "L1 tick diverged on core {}", c
            );
            for l in 0u64..48 {
                let addr = Addr(l * 32);
                prop_assert_eq!(
                    scalar.l1_state(core, addr),
                    batched.l1_state(core, addr),
                    "MESI state diverged for core {} line {:?}", c, addr
                );
                prop_assert_eq!(
                    scalar.l1_lru_of(core, addr),
                    batched.l1_lru_of(core, addr),
                    "LRU stamp diverged for core {} line {:?}", c, addr
                );
            }
        }
        prop_assert_eq!(scalar.l2_lru_tick(), batched.l2_lru_tick());
        let scalar_ev: Vec<Addr> = scalar.drain_l2_evictions().collect();
        let batched_ev: Vec<Addr> = batched.drain_l2_evictions().collect();
        prop_assert_eq!(scalar_ev, batched_ev, "L2 eviction order diverged");
    }

    /// The prepared single-probe path (`ensure_prepared`, the directory
    /// machine's batched entry point) is the unprepared `ensure` —
    /// identical results, MESI states, LRU stamps and ticks, stats, and
    /// eviction order for any access sequence.
    #[test]
    fn ensure_prepared_is_the_unprepared_ensure(accs in arb_accesses()) {
        let cfg = tiny();
        let mut plain = Hierarchy::new(cfg, SeqFactory).unwrap();
        let mut prepared = Hierarchy::new(cfg, SeqFactory).unwrap();
        for (c, l, w) in accs {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let core = CoreId(c);
            let addr = Addr(l * 32);
            let want = plain.ensure(core, addr, kind).unwrap();
            let (line_addr, set) = cfg.l1.line_and_set(addr);
            let got = prepared.ensure_prepared(core, line_addr, set, kind).unwrap();
            prop_assert_eq!(want, got);
        }
        prop_assert_eq!(plain.stats(), prepared.stats());
        for c in 0..3 {
            let core = CoreId(c);
            prop_assert_eq!(plain.l1_lru_tick(core), prepared.l1_lru_tick(core));
            for l in 0u64..24 {
                let addr = Addr(l * 32);
                prop_assert_eq!(plain.l1_state(core, addr), prepared.l1_state(core, addr));
                prop_assert_eq!(plain.l1_lru_of(core, addr), prepared.l1_lru_of(core, addr));
            }
        }
        prop_assert_eq!(plain.l2_lru_tick(), prepared.l2_lru_tick());
        let plain_ev: Vec<Addr> = plain.drain_l2_evictions().collect();
        let prepared_ev: Vec<Addr> = prepared.drain_l2_evictions().collect();
        prop_assert_eq!(plain_ev, prepared_ev);
    }

    /// The slab-and-hot-slot [`MetaDirectory`] is observationally the
    /// plain ordered-map directory it replaced: any interleaving of
    /// access / retire / flash leaves identical entry values, request
    /// counts, and membership.
    #[test]
    fn directory_slab_matches_the_map_reference(
        ops in prop::collection::vec((0u8..8, 0u64..16, 0u32..3), 1..250),
    ) {
        let mut dir = MetaDirectory::new(SeqFactory);
        let mut reference: BTreeMap<Addr, u64> = BTreeMap::new();
        let mut requests = 0u64;
        for (sel, l, c) in ops {
            let line = Addr(l * 32);
            match sel {
                // Weighted toward access, the hot operation.
                0..=4 => {
                    let m = dir.access(line, CoreId(c));
                    *m += 1;
                    let r = reference
                        .entry(line)
                        .or_insert_with(|| u64::from(c) + 1);
                    *r += 1;
                    requests += 1;
                    prop_assert_eq!(*m, *r, "entry value diverged for {:?}", line);
                }
                5 | 6 => {
                    dir.retire(line);
                    reference.remove(&line);
                }
                _ => {
                    dir.flash(|m| *m = m.wrapping_mul(3) + 1);
                    for m in reference.values_mut() {
                        *m = m.wrapping_mul(3) + 1;
                    }
                }
            }
            prop_assert_eq!(dir.len(), reference.len());
            prop_assert_eq!(dir.requests(), requests);
            for probe in 0u64..16 {
                let a = Addr(probe * 32);
                prop_assert_eq!(dir.peek(a), reference.get(&a));
            }
        }
    }
}
