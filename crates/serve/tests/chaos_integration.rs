//! The serve tier under abuse: the flush regression, slow and
//! vanishing clients, overload shedding, and a seeded chaos sweep.
//!
//! Everything lives in ONE `#[test]` (the process-global observability
//! recorder allows a single owner), structured as sequential scenarios
//! against purpose-configured servers:
//!
//! 1. **Flush regression** — a submission against a server with a long
//!    idle timeout must complete promptly. Before the fix, the
//!    client's `End` frame sat in its `BufWriter` while the client
//!    waited for a report the server could never send.
//! 2. **Hostile clients** — a slow-loris that dribbles bytes then goes
//!    silent, and a client that vanishes mid-`Data`, must both free
//!    their session slot and in-flight byte budget.
//! 3. **Overload shedding** — with one session slot, a second client
//!    is answered `Busy` (with a retry-after hint) instead of
//!    blocking, and a retrying client eventually lands once the slot
//!    frees.
//! 4. **Chaos sweep** — a fleet of retrying clients submits through a
//!    seeded [`ChaosProxy`]; every session ends in a report
//!    byte-identical to offline replay, and the server drains to zero
//!    sessions and zero in-flight bytes.

use hard_harness::chaos::{ChaosProxy, NetFaultPlan};
use hard_harness::corpus::{self, write_file};
use hard_harness::service::{
    probe_health, request_shutdown, submit_bytes, submit_bytes_retrying, RetryPolicy,
};
use hard_harness::{
    execute_streamed, injected_trace, CampaignConfig, DetectorKind, ReportBody, Submission,
};
use hard_obs::{CounterId, MemoryRecorder, ObsHandle};
use hard_serve::{ServeConfig, Server};
use hard_trace::wire::{
    read_frame, read_handshake, write_frame, write_handshake, FrameKind, MAX_FRAME_BYTES,
};
use hard_trace::PackedTrace;
use hard_workloads::App;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A corpus plus the offline-replay report every served report must
/// match byte for byte.
fn fixture(app: App, run_idx: usize, detector: &str, name: &str) -> (Vec<u8>, String) {
    let cfg = CampaignConfig::reduced(0.05, 2);
    let (trace, injection) = injected_trace(app, &cfg, run_idx);
    let packed = PackedTrace::from_trace(&trace).expect("packable");
    let mut path = std::env::temp_dir();
    path.push(format!("hard-chaos-it-{}-{name}", std::process::id()));
    write_file(&path, &packed, Some(&injection)).expect("write corpus");
    let bytes = std::fs::read(&path).expect("read corpus back");
    let kind = DetectorKind::parse(detector).expect("known detector");
    let (header, mut reader) = corpus::open_streamed(&path).expect("open streamed");
    let (run, events, fnv) =
        execute_streamed(&kind, header.num_threads as usize, &mut reader).expect("offline replay");
    assert_eq!(events, header.events);
    assert_eq!(fnv, header.payload_fnv);
    let _ = std::fs::remove_file(&path);
    let expected = ReportBody {
        label: kind.label().to_string(),
        events,
        reports: run.reports,
    }
    .encode();
    (bytes, expected)
}

fn raw_client(addr: &str) -> (std::io::BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    let w = stream.try_clone().expect("clone");
    (std::io::BufReader::new(stream), w)
}

/// Spins until `cond` holds or the deadline trips.
fn await_cond(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let started = Instant::now();
    while !cond() {
        assert!(
            started.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn chaos_hardening() {
    let recorder = Arc::new(MemoryRecorder::new());
    assert!(
        hard_obs::install(ObsHandle::new(recorder.clone())),
        "this test must own the global recorder"
    );
    let (bytes, expected) = fixture(App::WaterNsquared, 0, "hard", "main");

    // --- 1. Flush regression: long idle timeout, tiny chunks. If the
    // client fails to flush its End frame, both sides block until the
    // idle timeout — far beyond this bound.
    {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            idle_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let thread = std::thread::spawn(move || server.run());
        let started = Instant::now();
        match submit_bytes(&addr, &bytes, "hard", 1 << 10).expect("submit") {
            Submission::Report { body, .. } => assert_eq!(body.encode(), expected),
            other => panic!("flush-regression submit got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "submission took {:?} — an unflushed frame is stalling the session",
            started.elapsed()
        );
        let health = probe_health(&addr, Duration::from_secs(5)).expect("health");
        assert!(health.ready, "idle server must be ready");
        assert_eq!(health.active_sessions, 0, "probe excludes itself");
        request_shutdown(&addr).expect("shutdown");
        thread.join().expect("join").expect("clean drain");
    }

    // --- 2. Hostile clients against a short-idle server: both must
    // free their session slot and in-flight byte budget.
    {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            idle_timeout: Duration::from_millis(400),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let stats = server.stats();
        let thread = std::thread::spawn(move || server.run());
        let errors_before = recorder.snapshot().counter(CounterId::ServeErrors);

        // Slow loris: dribble one byte of a promised Data payload at a
        // time — each byte resets the idle clock — then go silent.
        {
            let (mut r, mut w) = raw_client(&addr);
            write_handshake(&mut w).unwrap();
            read_handshake(&mut r).unwrap();
            write_frame(&mut w, FrameKind::Begin, b"hard").unwrap();
            w.write_all(&[FrameKind::Data as u8]).unwrap();
            w.write_all(&1024u32.to_le_bytes()).unwrap();
            for _ in 0..6 {
                w.write_all(&[0x41]).unwrap();
                w.flush().unwrap();
                std::thread::sleep(Duration::from_millis(60));
            }
            // Now stall past the idle timeout; the server must cut us
            // off rather than hold the slot for a client that neither
            // finishes nor disconnects.
            let f = read_frame(&mut r, MAX_FRAME_BYTES).expect("idle-timeout error frame");
            assert_eq!(f.kind, FrameKind::Error);
            assert!(f.text().contains("idle timeout"), "{}", f.text());
        }

        // Mid-Data disconnect: upload real Data frames, confirm the
        // byte budget is charged, vanish without an End.
        {
            let (mut r, mut w) = raw_client(&addr);
            write_handshake(&mut w).unwrap();
            read_handshake(&mut r).unwrap();
            write_frame(&mut w, FrameKind::Begin, b"hard").unwrap();
            for chunk in bytes.chunks(8 << 10).take(3) {
                write_frame(&mut w, FrameKind::Data, chunk).unwrap();
            }
            w.flush().unwrap();
            await_cond("upload bytes to be charged", Duration::from_secs(5), || {
                stats.inflight_bytes() > 0
            });
            drop((r, w));
        }

        await_cond(
            "hostile sessions to free slot and bytes",
            Duration::from_secs(10),
            || stats.active_sessions() == 0 && stats.inflight_bytes() == 0,
        );
        assert!(
            recorder.snapshot().counter(CounterId::ServeErrors) > errors_before,
            "the cut-off client surfaces as a serve error"
        );
        request_shutdown(&addr).expect("shutdown");
        thread.join().expect("join").expect("clean drain");
    }

    // --- 3. Overload shedding: one session slot, held open; the next
    // client gets Busy + retry-after instead of blocking, and a
    // retrying client wins the slot once it frees.
    {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_sessions: 1,
            idle_timeout: Duration::from_secs(5),
            busy_retry_after: Duration::from_millis(40),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let stats = server.stats();
        let thread = std::thread::spawn(move || server.run());
        let shed_before = recorder.snapshot().counter(CounterId::ServeShed);

        // Hold the only slot open mid-session.
        let (mut holder_r, mut holder_w) = raw_client(&addr);
        write_handshake(&mut holder_w).unwrap();
        read_handshake(&mut holder_r).unwrap();
        write_frame(&mut holder_w, FrameKind::Begin, b"hard").unwrap();
        holder_w.flush().unwrap();
        await_cond("holder to take the slot", Duration::from_secs(5), || {
            stats.active_sessions() == 1
        });

        match submit_bytes(&addr, &bytes, "hard", 64 << 10).expect("submit while full") {
            Submission::Busy {
                retry_after,
                message,
                ..
            } => {
                assert_eq!(
                    retry_after,
                    Some(Duration::from_millis(40)),
                    "Busy carries the configured hint"
                );
                assert!(message.contains("session"), "{message}");
            }
            other => panic!("a full server must shed, got {other:?}"),
        }
        assert!(
            recorder.snapshot().counter(CounterId::ServeShed) > shed_before,
            "sheds are counted"
        );

        // A retrying client parks on backoff while a second thread
        // releases the holder; the retry must then land.
        let releaser = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                drop((holder_r, holder_w));
                // The slot frees when the server notices the EOF.
                let _ = addr;
            })
        };
        let policy = RetryPolicy {
            max_attempts: 20,
            base_delay: Duration::from_millis(40),
            max_delay: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        let (outcome, retry_stats) =
            submit_bytes_retrying(&addr, &bytes, "hard", 64 << 10, &policy);
        match outcome.expect("eventual success") {
            Submission::Report { body, .. } => assert_eq!(body.encode(), expected),
            other => panic!("retrying client got {other:?}"),
        }
        assert!(
            retry_stats.busy >= 1,
            "the retrying client was shed at least once: {retry_stats:?}"
        );
        releaser.join().expect("releaser");
        request_shutdown(&addr).expect("shutdown");
        thread.join().expect("join").expect("clean drain");
    }

    // --- 4. Chaos sweep: retrying clients through a seeded fault
    // proxy. Reports must be byte-identical to offline replay and the
    // server must drain to zero.
    {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 8,
            idle_timeout: Duration::from_millis(1500),
            ..ServeConfig::default()
        })
        .expect("bind");
        let server_addr = server.local_addr().expect("addr").to_string();
        let thread = std::thread::spawn(move || server.run());
        let proxy = ChaosProxy::spawn(
            "127.0.0.1:0",
            &server_addr,
            NetFaultPlan::uniform(0xC4A0_5157, 4_000),
        )
        .expect("proxy");
        let proxy_addr = proxy.local_addr().to_string();

        std::thread::scope(|scope| {
            for client in 0..4u64 {
                let proxy_addr = &proxy_addr;
                let bytes = &bytes;
                let expected = &expected;
                scope.spawn(move || {
                    let policy = RetryPolicy {
                        max_attempts: 12,
                        base_delay: Duration::from_millis(20),
                        max_delay: Duration::from_millis(300),
                        jitter_seed: client,
                        connect_timeout: Duration::from_secs(5),
                        io_timeout: Duration::from_secs(20),
                    };
                    for _ in 0..2 {
                        let (outcome, _) =
                            submit_bytes_retrying(proxy_addr, bytes, "hard", 1 << 10, &policy);
                        match outcome.expect("eventual success under chaos") {
                            Submission::Report { body, .. } => assert_eq!(
                                body.encode(),
                                *expected,
                                "no-wrong-report invariant (client {client})"
                            ),
                            other => panic!("client {client} got {other:?}"),
                        }
                    }
                });
            }
        });

        // Leak check bypasses the proxy: the server itself must be
        // back to zero sessions and zero in-flight bytes.
        await_cond(
            "server to drain after chaos",
            Duration::from_secs(10),
            || {
                probe_health(&server_addr, Duration::from_secs(5))
                    .map(|h| h.active_sessions == 0 && h.inflight_bytes == 0)
                    .unwrap_or(false)
            },
        );
        let chaos = proxy.stats();
        proxy.shutdown();
        request_shutdown(&server_addr).expect("shutdown");
        thread.join().expect("join").expect("clean drain");
        // 8 sessions x hundreds of 1 KiB frames at 4000 ppm: the odds
        // of a fault-free sweep are negligible, and the schedule is
        // seeded — if this fires, the injector is broken, not unlucky.
        let injected = chaos.resets + chaos.flips + chaos.stalls + chaos.shorts;
        assert!(
            injected > 0,
            "the proxy injected nothing at 4000 ppm: {chaos:?}"
        );
    }
}
