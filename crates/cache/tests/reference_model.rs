//! The set-associative cache checked against an executable reference
//! model (a per-set LRU list), over random operation sequences.

use hard_cache::{CState, CacheGeometry, SetAssocCache};
use hard_types::Addr;
use proptest::prelude::*;
use std::collections::VecDeque;

/// The reference: per-set bounded LRU queues, most recent at the back.
struct RefCache {
    geom: CacheGeometry,
    sets: Vec<VecDeque<(Addr, u32)>>,
}

impl RefCache {
    fn new(geom: CacheGeometry) -> RefCache {
        RefCache {
            geom,
            sets: (0..geom.num_sets()).map(|_| VecDeque::new()).collect(),
        }
    }

    fn probe(&mut self, addr: Addr) -> Option<u32> {
        let line = self.geom.line_of(addr);
        let set = &mut self.sets[self.geom.set_index(line)];
        let pos = set.iter().position(|(a, _)| *a == line)?;
        let entry = set.remove(pos).expect("present");
        set.push_back(entry);
        Some(entry.1)
    }

    fn insert(&mut self, addr: Addr, meta: u32) -> Option<Addr> {
        let line = self.geom.line_of(addr);
        let set = &mut self.sets[self.geom.set_index(line)];
        assert!(set.iter().all(|(a, _)| *a != line));
        let victim = if set.len() == self.geom.ways() as usize {
            set.pop_front().map(|(a, _)| a)
        } else {
            None
        };
        set.push_back((line, meta));
        victim
    }

    fn remove(&mut self, addr: Addr) -> Option<u32> {
        let line = self.geom.line_of(addr);
        let set = &mut self.sets[self.geom.set_index(line)];
        let pos = set.iter().position(|(a, _)| *a == line)?;
        set.remove(pos).map(|(_, m)| m)
    }
}

#[derive(Clone, Debug)]
enum CacheOp {
    Probe(u64),
    InsertIfAbsent(u64, u32),
    Remove(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    let op = prop_oneof![
        (0u64..24).prop_map(CacheOp::Probe),
        (0u64..24, any::<u32>()).prop_map(|(l, m)| CacheOp::InsertIfAbsent(l, m)),
        (0u64..24).prop_map(CacheOp::Remove),
    ];
    prop::collection::vec(op, 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every probe/insert/remove outcome — including the LRU victim
    /// choice — matches the reference model exactly.
    #[test]
    fn matches_the_reference_model(ops in arb_ops()) {
        let geom = CacheGeometry::new(256, 2, 32); // 4 sets x 2 ways
        let mut sut: SetAssocCache<u32> = SetAssocCache::new(geom);
        let mut reference = RefCache::new(geom);

        for op in ops {
            match op {
                CacheOp::Probe(l) => {
                    let addr = Addr(l * 32);
                    let got = sut.probe(addr).map(|line| line.meta);
                    let want = reference.probe(addr);
                    prop_assert_eq!(got, want);
                }
                CacheOp::InsertIfAbsent(l, m) => {
                    let addr = Addr(l * 32);
                    // `insert` requires absence; mirror a real user.
                    if sut.peek(addr).is_none() {
                        let got = sut
                            .insert(addr, CState::Exclusive, m)
                            .unwrap()
                            .map(|e| e.addr);
                        let want = reference.insert(addr, m);
                        prop_assert_eq!(got, want, "victim choice must match LRU");
                    }
                }
                CacheOp::Remove(l) => {
                    let addr = Addr(l * 32);
                    let got = sut.remove(addr).map(|line| line.meta);
                    let want = reference.remove(addr);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(
                sut.occupancy(),
                reference.sets.iter().map(VecDeque::len).sum::<usize>()
            );
        }
    }
}
