//! Task-aware synchronization: a sticky event, a counting semaphore,
//! and a two-way race.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::task::{Context, Poll, Waker};

/// A one-shot sticky event: once [`Event::set`] fires, every current
/// and future [`Event::wait`] resolves immediately. The serve tier
/// uses one as its shutdown broadcast.
#[derive(Default)]
pub struct Event {
    set: AtomicBool,
    waiters: Mutex<Vec<Waker>>,
}

impl Event {
    /// A fresh, unset event.
    #[must_use]
    pub fn new() -> Event {
        Event::default()
    }

    /// Fires the event, waking every waiter.
    pub fn set(&self) {
        self.set.store(true, Ordering::Release);
        let waiters = {
            let mut w = self.waiters.lock().expect("event waiters");
            std::mem::take(&mut *w)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Whether the event has fired.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Resolves once the event fires.
    #[must_use]
    pub fn wait(&self) -> EventWait<'_> {
        EventWait { event: self }
    }
}

/// Future returned by [`Event::wait`].
pub struct EventWait<'a> {
    event: &'a Event,
}

impl Future for EventWait<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.event.is_set() {
            return Poll::Ready(());
        }
        self.event
            .waiters
            .lock()
            .expect("event waiters")
            .push(cx.waker().clone());
        // Re-check after registering: a set() racing the push may have
        // drained the list before our waker landed.
        if self.event.is_set() {
            return Poll::Ready(());
        }
        Poll::Pending
    }
}

/// Bookkeeping behind a [`Semaphore`].
struct SemInner {
    /// Permits not held by anyone.
    free: usize,
    /// Tasks parked in arrival order: `(waiter id, latest waker)`.
    waiters: VecDeque<(u64, Waker)>,
    /// Waiter ids whose permit was transferred on release but that
    /// have not observed the grant yet.
    granted: Vec<u64>,
    /// Next waiter id.
    next_id: u64,
}

/// An async counting semaphore with FIFO grant order.
///
/// Releases *transfer* the permit to the oldest waiter instead of
/// freeing it, so a stream of newcomers cannot starve a parked task.
/// Dropping a pending [`Acquire`] is safe: a transferred-but-unseen
/// permit is passed on, and a queued waiter removes itself.
///
/// The serve tier uses one as its detection gate — at most `permits`
/// sessions run detector work concurrently; the rest park without
/// holding an executor thread.
pub struct Semaphore {
    inner: Mutex<SemInner>,
}

impl Semaphore {
    /// A semaphore holding `permits` free permits.
    #[must_use]
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            inner: Mutex::new(SemInner {
                free: permits,
                waiters: VecDeque::new(),
                granted: Vec::new(),
                next_id: 0,
            }),
        }
    }

    /// Resolves once a permit is held. The caller must pair it with
    /// exactly one [`Semaphore::release`].
    #[must_use]
    pub fn acquire(&self) -> Acquire<'_> {
        Acquire {
            sem: self,
            id: None,
            done: false,
        }
    }

    /// Returns a permit, handing it to the oldest waiter if any.
    pub fn release(&self) {
        let woken = {
            let mut inner = self.inner.lock().expect("semaphore state");
            if let Some((id, waker)) = inner.waiters.pop_front() {
                inner.granted.push(id);
                Some(waker)
            } else {
                inner.free += 1;
                None
            }
        };
        if let Some(w) = woken {
            w.wake();
        }
    }

    /// Tasks currently parked waiting for a permit.
    #[must_use]
    pub fn waiters(&self) -> usize {
        self.inner.lock().expect("semaphore state").waiters.len()
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire<'a> {
    sem: &'a Semaphore,
    /// Assigned on first poll if the future had to park.
    id: Option<u64>,
    /// Whether the permit was handed to the caller.
    done: bool,
}

impl Future for Acquire<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let me = self.get_mut();
        let mut inner = me.sem.inner.lock().expect("semaphore state");
        match me.id {
            None => {
                // First poll: take a free permit only if nobody older
                // is parked (FIFO), otherwise join the queue.
                if inner.waiters.is_empty() && inner.free > 0 {
                    inner.free -= 1;
                    me.done = true;
                    return Poll::Ready(());
                }
                let id = inner.next_id;
                inner.next_id += 1;
                inner.waiters.push_back((id, cx.waker().clone()));
                me.id = Some(id);
                Poll::Pending
            }
            Some(id) => {
                if let Some(at) = inner.granted.iter().position(|&g| g == id) {
                    inner.granted.swap_remove(at);
                    me.done = true;
                    return Poll::Ready(());
                }
                // Spurious wake: refresh the stored waker in place.
                if let Some(slot) = inner.waiters.iter_mut().find(|(w, _)| *w == id) {
                    slot.1 = cx.waker().clone();
                }
                Poll::Pending
            }
        }
    }
}

impl Drop for Acquire<'_> {
    fn drop(&mut self) {
        if self.done {
            return; // the caller owns the permit now
        }
        let Some(id) = self.id else {
            return; // never polled: nothing registered
        };
        let woken = {
            let mut inner = self.sem.inner.lock().expect("semaphore state");
            if let Some(at) = inner.granted.iter().position(|&g| g == id) {
                // A permit was transferred to us but never observed:
                // pass it on exactly as a release would.
                inner.granted.swap_remove(at);
                if let Some((next, waker)) = inner.waiters.pop_front() {
                    inner.granted.push(next);
                    Some(waker)
                } else {
                    inner.free += 1;
                    None
                }
            } else {
                inner.waiters.retain(|(w, _)| *w != id);
                None
            }
        };
        if let Some(w) = woken {
            w.wake();
        }
    }
}

/// Which of the two raced futures finished first.
pub enum Either<A, B> {
    /// The first future finished.
    Left(A),
    /// The second future finished.
    Right(B),
}

/// Polls `a` then `b`, resolving with whichever finishes first. Both
/// futures must be [`Unpin`]; the loser is dropped with the future.
pub fn race<A, B>(a: A, b: B) -> Race<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    Race { a, b }
}

/// Future returned by [`race`].
pub struct Race<A, B> {
    a: A,
    b: B,
}

impl<A, B> Future for Race<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    type Output = Either<A::Output, B::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        if let Poll::Ready(v) = Pin::new(&mut me.a).poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = Pin::new(&mut me.b).poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}
