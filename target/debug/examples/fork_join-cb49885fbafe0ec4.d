/root/repo/target/debug/examples/fork_join-cb49885fbafe0ec4.d: examples/fork_join.rs Cargo.toml

/root/repo/target/debug/examples/libfork_join-cb49885fbafe0ec4.rmeta: examples/fork_join.rs Cargo.toml

examples/fork_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
