//! Machine configuration (Table 1) and HARD design knobs.

use hard_bloom::BloomShape;
use hard_cache::{CacheGeometry, HierarchyConfig, LatencyModel};
use hard_types::{FaultPlan, Granularity};
use std::fmt;

/// Full configuration of a HARD machine.
///
/// The default value reproduces Table 1: a 4-core CMP with 16 KB 4-way
/// L1s and a 1 MB 8-way L2 (32-byte lines everywhere), a 16-bit bloom
/// vector per line, line-granularity metadata and barrier pruning
/// enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardConfig {
    /// Cache and core-count shape.
    pub hierarchy: HierarchyConfig,
    /// Bloom-filter vector layout (Table 6 varies this).
    pub bloom: BloomShape,
    /// Candidate-set / LState granularity (Table 3 varies 4–32 B; must
    /// not exceed the line size).
    pub granularity: Granularity,
    /// Enable the §3.5 barrier flash-reset.
    pub barrier_pruning: bool,
    /// Enable the §3.4 metadata broadcast that keeps all valid copies
    /// of a shared line's candidate set and LState current. Disabling
    /// it (ablation only) leaves stale sharer copies and delays or
    /// loses detections — the broadcasts are load-bearing.
    pub metadata_broadcast: bool,
    /// Cycle costs for the timing model.
    pub latency: LatencyModel,
    /// Hardware faults to inject ([`FaultPlan::none`] by default). A
    /// none-plan machine is bit-identical to one without the fault
    /// layer: the injector's RNG is never sampled.
    pub faults: FaultPlan,
}

impl Default for HardConfig {
    fn default() -> Self {
        HardConfig {
            hierarchy: HierarchyConfig::default(),
            bloom: BloomShape::B16,
            granularity: Granularity::new(32),
            barrier_pruning: true,
            metadata_broadcast: true,
            latency: LatencyModel::default(),
            faults: FaultPlan::none(),
        }
    }
}

impl HardConfig {
    /// Number of metadata granules per cache line.
    ///
    /// # Panics
    ///
    /// Panics if the granularity exceeds the line size.
    #[must_use]
    pub fn granules_per_line(&self) -> usize {
        let line = self.hierarchy.l1.line_bytes();
        let g = self.granularity.bytes();
        assert!(
            g <= line,
            "metadata granularity {g}B exceeds the {line}B line size"
        );
        (line / g) as usize
    }

    /// A copy with a different L2 capacity (Tables 4/5 sweep 128 KB –
    /// 1 MB at fixed associativity and line size).
    #[must_use]
    pub fn with_l2_size(mut self, bytes: u64) -> HardConfig {
        let l2 = self.hierarchy.l2;
        self.hierarchy.l2 = CacheGeometry::new(bytes, l2.ways(), l2.line_bytes());
        self
    }

    /// A copy with a different metadata granularity (Table 3).
    #[must_use]
    pub fn with_granularity(mut self, bytes: u64) -> HardConfig {
        self.granularity = Granularity::new(bytes);
        self
    }

    /// A copy with a different bloom vector layout (Table 6).
    #[must_use]
    pub fn with_bloom(mut self, shape: BloomShape) -> HardConfig {
        self.bloom = shape;
        self
    }

    /// A copy with a fault-injection plan (the robustness campaigns
    /// sweep the plan's rates; everything else stays at Table 1).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> HardConfig {
        self.faults = faults;
        self
    }

    /// A copy with the Figure 3 L2 organization: L2 lines twice the L1
    /// line size, each holding one metadata slot per L1-line sector.
    /// (Table 1 uses equal line sizes; both are supported.)
    #[must_use]
    pub fn with_figure3_l2(mut self) -> HardConfig {
        let l2 = self.hierarchy.l2;
        self.hierarchy.l2 = CacheGeometry::new(
            l2.size_bytes(),
            l2.ways(),
            self.hierarchy.l1.line_bytes() * 2,
        );
        self
    }
}

impl fmt::Display for HardConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores, L1 {}, L2 {}, BF {}, {} granularity, barriers {}",
            self.hierarchy.num_cores,
            self.hierarchy.l1,
            self.hierarchy.l2,
            self.bloom,
            self.granularity,
            if self.barrier_pruning {
                "pruned"
            } else {
                "raw"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = HardConfig::default();
        assert_eq!(c.hierarchy.num_cores, 4);
        assert_eq!(c.hierarchy.l1.size_bytes(), 16 * 1024);
        assert_eq!(c.hierarchy.l1.ways(), 4);
        assert_eq!(c.hierarchy.l2.size_bytes(), 1024 * 1024);
        assert_eq!(c.hierarchy.l2.ways(), 8);
        assert_eq!(c.hierarchy.l1.line_bytes(), 32);
        assert_eq!(c.bloom.total_bits(), 16);
        assert_eq!(c.granularity.bytes(), 32);
        assert!(c.barrier_pruning);
        assert!(c.faults.is_none(), "Table 1 machines are fault-free");
        assert_eq!(c.latency.l1_hit, 3);
        assert_eq!(c.latency.l2_hit, 10);
        assert_eq!(c.latency.memory, 200);
    }

    #[test]
    fn granules_per_line() {
        assert_eq!(HardConfig::default().granules_per_line(), 1);
        assert_eq!(
            HardConfig::default()
                .with_granularity(4)
                .granules_per_line(),
            8
        );
        assert_eq!(
            HardConfig::default()
                .with_granularity(8)
                .granules_per_line(),
            4
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_granularity_rejected() {
        let _ = HardConfig::default()
            .with_granularity(64)
            .granules_per_line();
    }

    #[test]
    fn figure3_builder_doubles_the_l2_line() {
        let c = HardConfig::default().with_figure3_l2();
        assert_eq!(c.hierarchy.l2.line_bytes(), 64);
        assert_eq!(c.hierarchy.l2.size_bytes(), 1024 * 1024);
        assert_eq!(c.hierarchy.l1.line_bytes(), 32);
        // Metadata granularity stays tied to the L1 line.
        assert_eq!(c.granules_per_line(), 1);
    }

    #[test]
    fn l2_sweep_builder() {
        let c = HardConfig::default().with_l2_size(128 * 1024);
        assert_eq!(c.hierarchy.l2.size_bytes(), 128 * 1024);
        assert_eq!(c.hierarchy.l2.ways(), 8);
    }

    #[test]
    fn fault_builder_sets_the_plan() {
        let plan = FaultPlan::uniform(9, 500);
        let c = HardConfig::default().with_faults(plan);
        assert_eq!(c.faults, plan);
        assert_eq!(c.hierarchy, HardConfig::default().hierarchy);
    }

    #[test]
    fn display_summarizes() {
        let s = format!("{}", HardConfig::default());
        assert!(s.contains("4 cores") && s.contains("16b"), "{s}");
    }
}
