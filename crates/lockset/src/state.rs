//! The variable state machine for false-positive pruning (Figure 2).
//!
//! Each monitored granule carries a 2-bit state. The state decides
//! whether the candidate set is updated and whether an empty candidate
//! set is reported as a race:
//!
//! * **Virgin** — allocated, never accessed. (The hardware never stores
//!   this state: fetching a line initializes it straight to Exclusive;
//!   the ideal detector starts variables here.)
//! * **Exclusive** — touched by exactly one thread so far. Candidate
//!   set is *not* updated, nothing is reported: single-thread
//!   initialization without locks stays silent.
//! * **Shared** — read by multiple threads, never written by a second
//!   thread. Candidate set *is* updated, but empty sets are not
//!   reported (read-only data needs no locks).
//! * **Shared-Modified** — read and written by multiple threads.
//!   Candidate set updated and races reported.

use hard_types::{AccessKind, ThreadId};
use std::fmt;

/// The per-granule lockset state (2 bits in hardware).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LState {
    /// Never accessed (ideal detector only; hardware initializes to
    /// [`LState::Exclusive`] on fetch).
    #[default]
    Virgin,
    /// Accessed by one thread only.
    Exclusive,
    /// Read by several threads; written by at most the first.
    Shared,
    /// Read and written by several threads.
    SharedModified,
}

impl LState {
    /// Hardware encoding of the state (the 2 `LState` bits).
    #[must_use]
    pub fn encode(self) -> u8 {
        match self {
            LState::Virgin => 0,
            LState::Exclusive => 1,
            LState::Shared => 2,
            LState::SharedModified => 3,
        }
    }

    /// Decodes the 2-bit hardware encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3` (not a 2-bit value).
    #[must_use]
    pub fn decode(bits: u8) -> LState {
        match bits {
            0 => LState::Virgin,
            1 => LState::Exclusive,
            2 => LState::Shared,
            3 => LState::SharedModified,
            _ => panic!("LState encoding must be 2 bits, got {bits}"),
        }
    }
}

impl fmt::Display for LState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LState::Virgin => "Virgin",
            LState::Exclusive => "Exclusive",
            LState::Shared => "Shared",
            LState::SharedModified => "Shared-Modified",
        };
        f.write_str(s)
    }
}

/// What an access implies for the candidate set, per Figure 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transition {
    /// The state after the access.
    pub next: LState,
    /// The owning thread after the access (meaningful in
    /// [`LState::Exclusive`]).
    pub next_owner: Option<ThreadId>,
    /// Whether the candidate set must be intersected with the thread's
    /// lock set.
    pub update_candidate: bool,
    /// Whether an empty candidate set after the update must be reported
    /// as a potential race.
    pub report_if_empty: bool,
}

/// Computes the Figure 2 transition for an access by `thread` of kind
/// `kind` on a granule in state `state` owned by `owner`.
#[must_use]
pub fn transition(
    state: LState,
    owner: Option<ThreadId>,
    thread: ThreadId,
    kind: AccessKind,
) -> Transition {
    match state {
        LState::Virgin => Transition {
            next: LState::Exclusive,
            next_owner: Some(thread),
            update_candidate: false,
            report_if_empty: false,
        },
        LState::Exclusive => {
            if owner == Some(thread) {
                Transition {
                    next: LState::Exclusive,
                    next_owner: owner,
                    update_candidate: false,
                    report_if_empty: false,
                }
            } else if kind.is_write() {
                Transition {
                    next: LState::SharedModified,
                    next_owner: None,
                    update_candidate: true,
                    report_if_empty: true,
                }
            } else {
                Transition {
                    next: LState::Shared,
                    next_owner: None,
                    update_candidate: true,
                    report_if_empty: false,
                }
            }
        }
        LState::Shared => {
            if kind.is_write() {
                Transition {
                    next: LState::SharedModified,
                    next_owner: None,
                    update_candidate: true,
                    report_if_empty: true,
                }
            } else {
                Transition {
                    next: LState::Shared,
                    next_owner: None,
                    update_candidate: true,
                    report_if_empty: false,
                }
            }
        }
        LState::SharedModified => Transition {
            next: LState::SharedModified,
            next_owner: None,
            update_candidate: true,
            report_if_empty: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn virgin_first_access_goes_exclusive() {
        for kind in [AccessKind::Read, AccessKind::Write] {
            let t = transition(LState::Virgin, None, T0, kind);
            assert_eq!(t.next, LState::Exclusive);
            assert_eq!(t.next_owner, Some(T0));
            assert!(!t.update_candidate);
            assert!(!t.report_if_empty);
        }
    }

    #[test]
    fn exclusive_same_thread_stays_silent() {
        for kind in [AccessKind::Read, AccessKind::Write] {
            let t = transition(LState::Exclusive, Some(T0), T0, kind);
            assert_eq!(t.next, LState::Exclusive);
            assert_eq!(t.next_owner, Some(T0));
            assert!(!t.update_candidate, "no C(v) update during initialization");
        }
    }

    #[test]
    fn exclusive_foreign_read_goes_shared() {
        let t = transition(LState::Exclusive, Some(T0), T1, AccessKind::Read);
        assert_eq!(t.next, LState::Shared);
        assert!(t.update_candidate);
        assert!(!t.report_if_empty, "read-only sharing is not reported");
    }

    #[test]
    fn exclusive_foreign_write_goes_shared_modified() {
        let t = transition(LState::Exclusive, Some(T0), T1, AccessKind::Write);
        assert_eq!(t.next, LState::SharedModified);
        assert!(t.update_candidate);
        assert!(t.report_if_empty);
    }

    #[test]
    fn shared_read_stays_shared() {
        let t = transition(LState::Shared, None, T1, AccessKind::Read);
        assert_eq!(t.next, LState::Shared);
        assert!(t.update_candidate);
        assert!(!t.report_if_empty);
    }

    #[test]
    fn shared_write_escalates() {
        let t = transition(LState::Shared, None, T0, AccessKind::Write);
        assert_eq!(t.next, LState::SharedModified);
        assert!(t.report_if_empty);
    }

    #[test]
    fn shared_modified_is_absorbing() {
        for kind in [AccessKind::Read, AccessKind::Write] {
            let t = transition(LState::SharedModified, None, T1, kind);
            assert_eq!(t.next, LState::SharedModified);
            assert!(t.update_candidate);
            assert!(t.report_if_empty);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for s in [
            LState::Virgin,
            LState::Exclusive,
            LState::Shared,
            LState::SharedModified,
        ] {
            assert_eq!(LState::decode(s.encode()), s);
            assert!(s.encode() <= 3, "must fit 2 hardware bits");
        }
    }

    #[test]
    #[should_panic(expected = "2 bits")]
    fn decode_rejects_wide_values() {
        let _ = LState::decode(4);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", LState::SharedModified), "Shared-Modified");
    }
}
