//! A reduced-scale version of the paper's Table 2 campaign: six
//! SPLASH-2-like applications, a few injected races each, all four
//! detector configurations — in a couple of seconds.
//!
//! Run with: `cargo run --release --example splash_campaign`
//! (add `-- full` for paper-scale: ~30 s)

use hard_repro::harness::experiments::table2;
use hard_repro::harness::CampaignConfig;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let cfg = if full {
        CampaignConfig::default()
    } else {
        CampaignConfig::reduced(0.1, 4)
    };
    println!(
        "running the Table 2 campaign ({} runs/app, {} scale)...\n",
        cfg.runs,
        if full { "full" } else { "reduced" }
    );
    let t = table2::run(&cfg);
    println!("{t}");
    println!(
        "totals: HARD {}/{}  vs  happens-before {}/{}",
        t.hard_total_detected(),
        t.runs * t.rows.len(),
        t.hb_total_detected(),
        t.runs * t.rows.len(),
    );
    let extra = t.hard_total_detected() as f64 / t.hb_total_detected().max(1) as f64;
    println!(
        "HARD detects {:.0}% more injected races than happens-before \
         (the paper reports 20% at full scale).",
        (extra - 1.0) * 100.0
    );
}
