//! Per-granule metadata and the core access transition.
//!
//! [`lockset_access`] is the single function both the ideal detector
//! and the HARD cache policy call on every monitored access: it applies
//! the Figure 2 state transition, intersects the candidate set with the
//! thread's lock set when required, and says whether a race must be
//! reported.

use crate::setrepr::SetRepr;
use crate::state::{transition, LState};
use hard_types::{AccessKind, ThreadId};

/// Metadata attached to one monitored granule (one cache line in the
/// hardware, one variable in the ideal implementation).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GranuleMeta<S> {
    /// The pruning state (2 bits in hardware).
    pub state: LState,
    /// Owning thread while [`LState::Exclusive`]. In hardware this is
    /// implicit (the line lives in the owner's L1); the simulator keeps
    /// it explicit.
    pub owner: Option<ThreadId>,
    /// The candidate set `C(v)`.
    pub candidate: S,
}

impl<S: SetRepr> GranuleMeta<S> {
    /// Fresh metadata as the *ideal* algorithm creates it: Virgin state
    /// and a full candidate set.
    #[must_use]
    pub fn virgin(ctx: S::Ctx) -> GranuleMeta<S> {
        GranuleMeta {
            state: LState::Virgin,
            owner: None,
            candidate: S::full(ctx),
        }
    }

    /// Fresh metadata as the *hardware* creates it on a fetch from
    /// memory: Exclusive state owned by the fetching thread, full
    /// candidate set (paper §3.1).
    #[must_use]
    pub fn fetched(ctx: S::Ctx, owner: ThreadId) -> GranuleMeta<S> {
        GranuleMeta {
            state: LState::Exclusive,
            owner: Some(owner),
            candidate: S::full(ctx),
        }
    }

    /// Barrier pruning (§3.5): discard all pre-barrier access evidence.
    ///
    /// The candidate set returns to "all possible locks" and the
    /// sharing state returns to Virgin, so the next accessor starts a
    /// fresh Exclusive epoch. Resetting only the vector would not
    /// suppress the paper's own Figure 7 example (the post-barrier
    /// thread holds no locks, so its first update would empty the set
    /// regardless); discarding the sharing history implements the
    /// stated intent that pre- and post-barrier accesses are ordered by
    /// happens-before and must not be compared.
    pub fn barrier_reset(&mut self, ctx: S::Ctx) {
        self.candidate.reset_full(ctx);
        self.state = LState::Virgin;
        self.owner = None;
    }
}

/// The synthetic per-thread "dummy lock" used to model join ordering
/// (paper §3.1, citing Choi et al.): a forked thread implicitly holds
/// its dummy lock for its entire life, and the joining parent acquires
/// it at the join, so parent-after-join accesses share a candidate lock
/// with the child's accesses.
///
/// Dummy locks live in a reserved address region no workload allocates
/// from.
#[must_use]
pub fn dummy_lock(t: ThreadId) -> hard_types::LockId {
    hard_types::LockId(0x7FFF_0000 + u64::from(t.0) * 4)
}

/// The fork-time ownership transfer (paper §3.1, citing von Praun &
/// Gross): data the parent initialized is handed to whichever thread
/// touches it next, instead of looking like cross-thread sharing.
/// Granules exclusively owned by `parent` return to Virgin with their
/// candidate set preserved.
pub fn fork_transfer<S: SetRepr>(meta: &mut GranuleMeta<S>, parent: ThreadId) {
    if meta.state == LState::Exclusive && meta.owner == Some(parent) {
        meta.state = LState::Virgin;
        meta.owner = None;
    }
}

/// Result of applying one access to a granule's metadata.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// The candidate set was intersected with the thread lock set and
    /// its value changed. (The hardware broadcasts metadata on shared
    /// lines when this is true.)
    pub candidate_changed: bool,
    /// The access must be reported as a potential race.
    pub race: bool,
}

/// Applies one access by `thread` of kind `kind` to `meta`, using the
/// thread's current lock set `held`.
///
/// Returns whether the candidate set changed and whether a race is
/// reported. This is exactly the paper's per-access algorithm: Figure 2
/// decides if `C(v) ∩= L(t)` runs and if an empty result is reported.
pub fn lockset_access<S: SetRepr + PartialEq>(
    meta: &mut GranuleMeta<S>,
    thread: ThreadId,
    kind: AccessKind,
    held: &S,
) -> AccessOutcome {
    let t = transition(meta.state, meta.owner, thread, kind);
    meta.state = t.next;
    meta.owner = t.next_owner;
    let mut outcome = AccessOutcome {
        candidate_changed: false,
        race: false,
    };
    if t.update_candidate {
        outcome.candidate_changed = meta.candidate.intersect_assign(held);
        if t.report_if_empty && meta.candidate.is_empty_set() {
            outcome.race = true;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use hard_bloom::ExactSet;
    use hard_types::LockId;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    fn held(locks: &[LockId]) -> ExactSet {
        ExactSet::from_locks(locks)
    }

    #[test]
    fn initialization_without_locks_is_silent() {
        let mut m = GranuleMeta::<ExactSet>::virgin(());
        let none = held(&[]);
        for _ in 0..3 {
            let o = lockset_access(&mut m, T0, AccessKind::Write, &none);
            assert!(!o.race);
        }
        assert_eq!(m.state, LState::Exclusive);
        assert!(m.candidate.is_universe(), "C(v) untouched while Exclusive");
    }

    #[test]
    fn consistent_locking_never_reports() {
        let mut m = GranuleMeta::<ExactSet>::virgin(());
        let l = held(&[LockId(0x40)]);
        lockset_access(&mut m, T0, AccessKind::Write, &l);
        let o1 = lockset_access(&mut m, T1, AccessKind::Write, &l);
        assert!(!o1.race);
        assert_eq!(m.state, LState::SharedModified);
        let o2 = lockset_access(&mut m, T0, AccessKind::Read, &l);
        assert!(!o2.race);
    }

    #[test]
    fn missing_lock_is_reported() {
        let mut m = GranuleMeta::<ExactSet>::virgin(());
        lockset_access(&mut m, T0, AccessKind::Write, &held(&[LockId(0x40)]));
        let o = lockset_access(&mut m, T1, AccessKind::Write, &held(&[]));
        assert!(o.race, "write with empty intersection must report");
    }

    #[test]
    fn disjoint_locks_are_reported() {
        // The first access only establishes Exclusive; the second
        // (foreign) access seeds C(v) with the *second* thread's locks;
        // the third access, holding a disjoint lock, empties C(v).
        let mut m = GranuleMeta::<ExactSet>::virgin(());
        lockset_access(&mut m, T0, AccessKind::Write, &held(&[LockId(0x40)]));
        let o1 = lockset_access(&mut m, T1, AccessKind::Write, &held(&[LockId(0x80)]));
        assert!(!o1.race, "C(v) = {{L2}} is not yet empty");
        let o2 = lockset_access(&mut m, T0, AccessKind::Write, &held(&[LockId(0x40)]));
        assert!(o2.race, "no common lock protects the granule");
    }

    #[test]
    fn read_only_sharing_not_reported() {
        let mut m = GranuleMeta::<ExactSet>::virgin(());
        lockset_access(&mut m, T0, AccessKind::Write, &held(&[])); // init
        let o1 = lockset_access(&mut m, T1, AccessKind::Read, &held(&[]));
        assert!(!o1.race);
        assert_eq!(m.state, LState::Shared);
        let o2 = lockset_access(&mut m, T0, AccessKind::Read, &held(&[]));
        assert!(!o2.race, "read-only data needs no locks");
    }

    #[test]
    fn write_after_read_sharing_is_reported() {
        let mut m = GranuleMeta::<ExactSet>::virgin(());
        lockset_access(&mut m, T0, AccessKind::Write, &held(&[])); // init
        lockset_access(&mut m, T1, AccessKind::Read, &held(&[])); // Shared, C(v) = {}
        let o = lockset_access(&mut m, T1, AccessKind::Write, &held(&[]));
        assert!(o.race);
        assert_eq!(m.state, LState::SharedModified);
    }

    #[test]
    fn candidate_changed_flag_tracks_shrinkage() {
        let mut m = GranuleMeta::<ExactSet>::virgin(());
        let l12 = held(&[LockId(0x40), LockId(0x80)]);
        let l1 = held(&[LockId(0x40)]);
        lockset_access(&mut m, T0, AccessKind::Write, &l12); // Exclusive; no update
        let o1 = lockset_access(&mut m, T1, AccessKind::Write, &l12);
        assert!(o1.candidate_changed, "universe -> {{L1, L2}}");
        let o2 = lockset_access(&mut m, T0, AccessKind::Write, &l12);
        assert!(!o2.candidate_changed, "stable candidate set");
        let o3 = lockset_access(&mut m, T1, AccessKind::Write, &l1);
        assert!(o3.candidate_changed, "{{L1, L2}} -> {{L1}}");
        assert!(!o3.race);
    }

    #[test]
    fn barrier_reset_discards_all_evidence() {
        let mut m = GranuleMeta::<ExactSet>::virgin(());
        lockset_access(&mut m, T0, AccessKind::Write, &held(&[]));
        lockset_access(&mut m, T1, AccessKind::Read, &held(&[LockId(4)]));
        assert_eq!(m.state, LState::Shared);
        m.barrier_reset(());
        assert!(m.candidate.is_universe());
        assert_eq!(m.state, LState::Virgin, "sharing history is discarded");
        assert_eq!(m.owner, None);
    }

    #[test]
    fn figure7_pattern_is_silent_after_barrier_reset() {
        // t0 owns the granule before the barrier; after the reset t1's
        // unlocked accesses are a fresh Exclusive epoch: no report.
        let mut m = GranuleMeta::<ExactSet>::virgin(());
        lockset_access(&mut m, T0, AccessKind::Write, &held(&[]));
        m.barrier_reset(());
        let o1 = lockset_access(&mut m, T1, AccessKind::Read, &held(&[]));
        let o2 = lockset_access(&mut m, T1, AccessKind::Write, &held(&[]));
        assert!(!o1.race && !o2.race);
        assert_eq!(m.state, LState::Exclusive);
        assert_eq!(m.owner, Some(T1));
    }

    #[test]
    fn fetched_meta_matches_hardware_init() {
        let m = GranuleMeta::<ExactSet>::fetched((), T1);
        assert_eq!(m.state, LState::Exclusive);
        assert_eq!(m.owner, Some(T1));
        assert!(m.candidate.is_universe());
    }

    #[test]
    fn repeated_race_reports_on_every_violating_access() {
        let mut m = GranuleMeta::<ExactSet>::virgin(());
        lockset_access(&mut m, T0, AccessKind::Write, &held(&[LockId(4)]));
        lockset_access(&mut m, T1, AccessKind::Write, &held(&[]));
        let o = lockset_access(&mut m, T0, AccessKind::Read, &held(&[]));
        assert!(o.race, "Shared-Modified with empty C(v) keeps reporting");
    }
}
