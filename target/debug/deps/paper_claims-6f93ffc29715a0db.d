/root/repo/target/debug/deps/paper_claims-6f93ffc29715a0db.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-6f93ffc29715a0db: tests/paper_claims.rs

tests/paper_claims.rs:
