/root/repo/target/debug/deps/properties-2dd28da1cb5fcb0b.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2dd28da1cb5fcb0b.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
