//! Property tests of the assembled machines.

use hard::{BaselineMachine, HardConfig, HardMachine};
use hard_trace::{run_detector, Program, SchedConfig, Scheduler, ThreadProgram};
use hard_types::{Addr, LockId, SiteId};
use proptest::prelude::*;

fn arb_program() -> impl Strategy<Value = Program> {
    let block = prop_oneof![
        (0u64..16, any::<bool>()).prop_map(|(l, wr)| {
            let addr = Addr(0x1000 + l * 32);
            vec![if wr {
                hard_trace::Op::Write { addr, size: 4, site: SiteId(l as u32) }
            } else {
                hard_trace::Op::Read { addr, size: 4, site: SiteId(l as u32) }
            }]
        }),
        (0u64..3, 0u64..16).prop_map(|(k, l)| {
            let lock = LockId(0x1000_0000 + k * 4);
            let addr = Addr(0x1000 + l * 32);
            vec![
                hard_trace::Op::Lock { lock, site: SiteId(100 + k as u32) },
                hard_trace::Op::Write { addr, size: 4, site: SiteId(l as u32) },
                hard_trace::Op::Unlock { lock, site: SiteId(200 + k as u32) },
            ]
        }),
        (1u32..100).prop_map(|c| vec![hard_trace::Op::Compute { cycles: c }]),
    ];
    let thread = prop::collection::vec(block, 0..12).prop_map(|blocks| {
        let mut tp = ThreadProgram::new();
        for b in blocks {
            for op in b {
                tp.push(op);
            }
        }
        tp
    });
    prop::collection::vec(thread, 2..=4).prop_map(Program::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Monitoring never makes the machine faster: HARD's cycle count is
    /// at least the detection-disabled baseline's on the identical
    /// trace, and the cache behaviour is bit-identical.
    #[test]
    fn monitoring_is_never_free(p in arb_program(), seed in 0u64..4) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 4 }).run(&p);

        let mut base = BaselineMachine::new(HardConfig::default());
        let base_cycles = base.run(&trace);

        let mut hard = HardMachine::new(HardConfig::default());
        run_detector(&mut hard, &trace);

        prop_assert!(hard.total_cycles() >= base_cycles);
        prop_assert_eq!(hard.stats().l1_hits, base.stats().l1_hits);
        prop_assert_eq!(hard.stats().l1_misses, base.stats().l1_misses);
        prop_assert_eq!(hard.stats().l2_misses, base.stats().l2_misses);
        prop_assert_eq!(hard.stats().l2_evictions, base.stats().l2_evictions);
    }

    /// Determinism of the full machine: identical traces produce
    /// identical reports, cycles and statistics.
    #[test]
    fn machines_are_deterministic(p in arb_program(), seed in 0u64..4) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 4 }).run(&p);
        let mut a = HardMachine::new(HardConfig::default());
        let ra = run_detector(&mut a, &trace);
        let mut b = HardMachine::new(HardConfig::default());
        let rb = run_detector(&mut b, &trace);
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(a.total_cycles(), b.total_cycles());
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.bus().transactions(), b.bus().transactions());
    }

    /// Barrier pruning only removes reports, never adds them
    /// (on barrier-free programs the two configurations are identical).
    #[test]
    fn pruning_never_invents_races(p in arb_program(), seed in 0u64..4) {
        let trace = Scheduler::new(SchedConfig { seed, max_quantum: 4 }).run(&p);
        let mut pruned = HardMachine::new(HardConfig::default());
        let rp = run_detector(&mut pruned, &trace);
        let raw_cfg = HardConfig { barrier_pruning: false, ..HardConfig::default() };
        let mut raw = HardMachine::new(raw_cfg);
        let rr = run_detector(&mut raw, &trace);
        // These programs have no barriers, so the configurations agree
        // exactly; with barriers pruning is a subset (checked in the
        // harness ablation).
        prop_assert_eq!(rp, rr);
    }
}
