//! The paper's §7 future work, implemented: combine HARD with the
//! happens-before detector to prune the false alarms lockset raises on
//! synchronization it cannot see — and observe the price.
//!
//! The demo workload mixes (a) a real race, (b) a lock-chain-ordered
//! flag hand-off (false alarm for lockset, correctly silent for
//! happens-before) and (c) Figure 1's lock-ordered race (lockset's
//! unique catch, which the combination surrenders in ordered
//! interleavings).
//!
//! Run with: `cargo run --example hybrid_pruning`

use hard_repro::core::{HardConfig, HybridMachine};
use hard_repro::trace::{run_detector, Detector, Op, Trace, TraceEvent};
use hard_repro::types::{Addr, LockId, SiteId, ThreadId};

fn main() {
    let race = Addr(0x1000); // (a) truly unordered
    let handoff = Addr(0x2000); // (b) ordered through the G chain
    let fig1 = Addr(0x3000); // (c) ordered through the y-lock
    let y = Addr(0x4000);
    let g = LockId(0x1000_0000);
    let ylock = LockId(0x1000_0004);
    let t0 = ThreadId(0);
    let t1 = ThreadId(1);
    let ev = |thread, op| TraceEvent::Op { thread, op };
    let wr = |a| Op::Write {
        addr: a,
        size: 4,
        site: site_of(a),
    };

    fn site_of(a: Addr) -> SiteId {
        SiteId((a.0 / 0x1000) as u32)
    }

    let trace = Trace {
        events: vec![
            // (a) the real race: unordered writes.
            ev(t0, wr(race)),
            ev(t1, wr(race)),
            // (b) hand-off: t0 publishes, both pass through G, t1 consumes.
            ev(t0, wr(handoff)),
            ev(
                t0,
                Op::Lock {
                    lock: g,
                    site: SiteId(10),
                },
            ),
            ev(
                t0,
                Op::Unlock {
                    lock: g,
                    site: SiteId(11),
                },
            ),
            ev(
                t1,
                Op::Lock {
                    lock: g,
                    site: SiteId(12),
                },
            ),
            ev(
                t1,
                Op::Unlock {
                    lock: g,
                    site: SiteId(13),
                },
            ),
            ev(t1, wr(handoff)),
            // (c) Figure 1 in its lock-ordered interleaving.
            ev(t0, wr(fig1)),
            ev(
                t0,
                Op::Lock {
                    lock: ylock,
                    site: SiteId(20),
                },
            ),
            ev(t0, wr(y)),
            ev(
                t0,
                Op::Unlock {
                    lock: ylock,
                    site: SiteId(21),
                },
            ),
            ev(
                t1,
                Op::Lock {
                    lock: ylock,
                    site: SiteId(22),
                },
            ),
            ev(t1, wr(y)),
            ev(
                t1,
                Op::Unlock {
                    lock: ylock,
                    site: SiteId(23),
                },
            ),
            ev(t1, wr(fig1)),
        ],
        num_threads: 2,
    };

    let mut m = HybridMachine::new(HardConfig::default());
    run_detector(&mut m, &trace);

    let label = |a: Addr| match a.0 {
        0x1000 => "true race      ",
        0x2000 => "flag hand-off  ",
        0x3000 => "fig-1 race     ",
        _ => "y (locked)     ",
    };
    println!("variable         HARD alone   HARD ∩ HB");
    for a in [race, handoff, fig1] {
        let hard = m.hard().reports().iter().any(|r| r.addr == a);
        let combined = m.combined_reports().iter().any(|r| r.addr == a);
        println!(
            "{}  {:<11}  {}",
            label(a),
            if hard { "reported" } else { "-" },
            if combined { "reported" } else { "pruned" },
        );
    }
    println!(
        "\nthe combination pruned {} report(s): the hand-off false alarm\n\
         is gone, but so is the lock-ordered Figure 1 race — the trade-off\n\
         the paper's §7 calls 'challenging'.",
        m.pruned()
    );
    assert!(m.combined_reports().iter().any(|r| r.addr == race));
    assert!(m.combined_reports().iter().all(|r| r.addr != handoff));
    assert!(m.combined_reports().iter().all(|r| r.addr != fig1));
}
