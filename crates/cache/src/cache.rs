//! A generic set-associative cache array with LRU replacement.

use crate::cstate::CState;
use crate::geometry::CacheGeometry;
use hard_types::{Addr, HardError};

/// One cache line: identity, coherence state and attached metadata.
#[derive(Clone, Debug)]
pub struct Line<M> {
    /// Line-aligned base address (we store the full address rather than
    /// the tag; the simulator favours clarity over bit-packing).
    pub addr: Addr,
    /// Coherence state (always [`CState::Modified`] or a plain
    /// valid/dirty notion in the L2, which is not a coherence
    /// participant).
    pub state: CState,
    /// The attached metadata (candidate set + LState for HARD,
    /// timestamps for happens-before).
    pub meta: M,
    lru: u64,
}

/// A line evicted to make room for an insertion.
#[derive(Clone, Debug)]
pub struct Evicted<M> {
    /// The victim's line address.
    pub addr: Addr,
    /// The victim's coherence state at eviction.
    pub state: CState,
    /// The victim's metadata (to be written back or dropped).
    pub meta: M,
}

/// A set-associative cache with LRU replacement, generic over per-line
/// metadata.
///
/// Storage is a single flat slot array of `num_sets × ways` entries in
/// which each set occupies a fixed window and keeps its valid lines as
/// a dense prefix (`lens[set]` of them). This replaces the former
/// `Vec<Vec<Line>>` — every set walk is a short contiguous scan with no
/// per-set heap indirection, and the array is allocated once at
/// construction. Within a set the prefix order emulates `Vec` push /
/// `swap_remove` exactly, so victim choice and global iteration order
/// are bit-identical to the nested representation.
#[derive(Clone, Debug)]
pub struct SetAssocCache<M> {
    geom: CacheGeometry,
    slots: Vec<Option<Line<M>>>,
    lens: Vec<u32>,
    tick: u64,
}

impl<M> SetAssocCache<M> {
    /// An empty cache of the given geometry.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> SetAssocCache<M> {
        let sets = geom.num_sets() as usize;
        let ways = geom.ways() as usize;
        SetAssocCache {
            geom,
            slots: (0..sets * ways).map(|_| None).collect(),
            lens: vec![0; sets],
            tick: 0,
        }
    }

    /// The cache's geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Number of currently valid lines.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.lens.iter().map(|&n| n as usize).sum()
    }

    #[inline]
    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The slot range holding `set`'s valid lines (its dense prefix).
    #[inline]
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.geom.ways() as usize;
        base..base + self.lens[set] as usize
    }

    /// Looks up the line containing `addr` without touching LRU state.
    #[must_use]
    pub fn peek(&self, addr: Addr) -> Option<&Line<M>> {
        let line_addr = self.geom.line_of(addr);
        let range = self.set_range(self.geom.set_index(line_addr));
        self.slots[range]
            .iter()
            .flatten()
            .find(|l| l.addr == line_addr)
    }

    /// Looks up the line containing `addr`, refreshing its LRU age.
    #[inline]
    pub fn probe(&mut self, addr: Addr) -> Option<&mut Line<M>> {
        let (line_addr, set) = self.geom.line_and_set(addr);
        self.probe_prepared(line_addr, set)
    }

    /// [`SetAssocCache::probe`] with the line address and set index
    /// already computed (by [`CacheGeometry::line_and_set`] in the
    /// batch kernel's pre-pass). Bumps the LRU tick exactly like
    /// `probe`, so the two are interchangeable bit-for-bit; the only
    /// difference is the hoisted address arithmetic. The set walk is a
    /// single flat slot-array sweep over the set's dense prefix.
    #[inline]
    pub fn probe_prepared(&mut self, line_addr: Addr, set: usize) -> Option<&mut Line<M>> {
        let tick = self.bump();
        let range = self.set_range(set);
        let line = self.slots[range]
            .iter_mut()
            .flatten()
            .find(|l| l.addr == line_addr)?;
        line.lru = tick;
        Some(line)
    }

    /// Inserts a line (which must not already be present), evicting the
    /// LRU victim if the set is full.
    ///
    /// # Errors
    ///
    /// Returns [`HardError::DuplicateLine`] if the line is already
    /// present — the hierarchy must probe first.
    pub fn insert(
        &mut self,
        addr: Addr,
        state: CState,
        meta: M,
    ) -> Result<Option<Evicted<M>>, HardError> {
        let line_addr = self.geom.line_of(addr);
        let ways = self.geom.ways() as usize;
        let tick = self.bump();
        let set = self.geom.set_index(line_addr);
        let range = self.set_range(set);
        if self.slots[range.clone()]
            .iter()
            .flatten()
            .any(|l| l.addr == line_addr)
        {
            return Err(HardError::DuplicateLine { line: line_addr });
        }
        let victim = if range.len() >= ways {
            self.slots[range]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.as_ref().map_or(u64::MAX, |l| l.lru))
                .map(|(vi, _)| vi)
                .map(|vi| {
                    let v = self.swap_remove(set, vi);
                    Evicted {
                        addr: v.addr,
                        state: v.state,
                        meta: v.meta,
                    }
                })
        } else {
            None
        };
        let slot = set * ways + self.lens[set] as usize;
        self.slots[slot] = Some(Line {
            addr: line_addr,
            state,
            meta,
            lru: tick,
        });
        self.lens[set] += 1;
        Ok(victim)
    }

    /// Removes position `i` of `set`'s prefix, backfilling with the
    /// last valid line — the `Vec::swap_remove` dance on the flat
    /// window.
    fn swap_remove(&mut self, set: usize, i: usize) -> Line<M> {
        let base = set * self.geom.ways() as usize;
        let last = self.lens[set] as usize - 1;
        self.slots.swap(base + i, base + last);
        self.lens[set] -= 1;
        self.slots[base + last].take().expect("dense prefix")
    }

    /// Removes the line containing `addr`, returning it.
    pub fn remove(&mut self, addr: Addr) -> Option<Line<M>> {
        let line_addr = self.geom.line_of(addr);
        let set = self.geom.set_index(line_addr);
        let range = self.set_range(set);
        let i = self.slots[range]
            .iter()
            .flatten()
            .position(|l| l.addr == line_addr)?;
        Some(self.swap_remove(set, i))
    }

    /// Iterates over all valid lines.
    pub fn iter(&self) -> impl Iterator<Item = &Line<M>> {
        self.slots.iter().flatten()
    }

    /// Mutably iterates over all valid lines (for metadata flash
    /// operations such as HARD's barrier reset).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Line<M>> {
        self.slots.iter_mut().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u32> {
        // 2 sets × 2 ways of 32-byte lines.
        SetAssocCache::new(CacheGeometry::new(128, 2, 32))
    }

    #[test]
    fn insert_probe_roundtrip() {
        let mut c = small();
        assert!(c
            .insert(Addr(0x20), CState::Exclusive, 7)
            .unwrap()
            .is_none());
        assert_eq!(c.occupancy(), 1);
        let line = c.probe(Addr(0x24)).expect("same line");
        assert_eq!(line.meta, 7);
        assert_eq!(line.state, CState::Exclusive);
        assert!(c.peek(Addr(0x40)).is_none());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines 0x00, 0x40 (with 2 sets of 32B lines,
        // set = (addr/32) & 1).
        c.insert(Addr(0x00), CState::Exclusive, 1).unwrap();
        c.insert(Addr(0x40), CState::Exclusive, 2).unwrap();
        // Touch 0x00 so 0x40 becomes LRU.
        c.probe(Addr(0x00));
        let ev = c
            .insert(Addr(0x80), CState::Exclusive, 3)
            .unwrap()
            .expect("eviction");
        assert_eq!(ev.addr, Addr(0x40));
        assert_eq!(ev.meta, 2);
        assert!(c.peek(Addr(0x00)).is_some());
        assert!(c.peek(Addr(0x80)).is_some());
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        c.insert(Addr(0x00), CState::Exclusive, 1).unwrap();
        c.insert(Addr(0x20), CState::Exclusive, 2).unwrap(); // set 1
        c.insert(Addr(0x40), CState::Exclusive, 3).unwrap(); // set 0
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn remove_returns_line() {
        let mut c = small();
        c.insert(Addr(0x00), CState::Modified, 9).unwrap();
        let l = c.remove(Addr(0x1F)).expect("same line");
        assert_eq!(l.meta, 9);
        assert_eq!(l.state, CState::Modified);
        assert_eq!(c.occupancy(), 0);
        assert!(c.remove(Addr(0x00)).is_none());
    }

    #[test]
    fn double_insert_is_an_error() {
        let mut c = small();
        c.insert(Addr(0x00), CState::Exclusive, 1).unwrap();
        let err = c.insert(Addr(0x04), CState::Exclusive, 2); // same line
        assert_eq!(
            err.err(),
            Some(hard_types::HardError::DuplicateLine { line: Addr(0x00) })
        );
        assert_eq!(c.occupancy(), 1, "the original line is untouched");
    }

    #[test]
    fn probe_prepared_matches_probe() {
        let mut a = small();
        let mut b = small();
        for addr in [0x00u64, 0x20, 0x40, 0x24, 0x80, 0x00] {
            let _ = a.insert(Addr(addr), CState::Exclusive, addr as u32);
            let _ = b.insert(Addr(addr), CState::Exclusive, addr as u32);
            let got = a.probe(Addr(addr + 4)).map(|l| (l.addr, l.meta, l.lru));
            let (line, set) = b.geometry().line_and_set(Addr(addr + 4));
            let want = b.probe_prepared(line, set).map(|l| (l.addr, l.meta, l.lru));
            assert_eq!(got, want, "divergence at {addr:#x}");
        }
        assert_eq!(a.tick, b.tick, "LRU tick sequences must be identical");
    }

    #[test]
    fn iter_mut_allows_flash_updates() {
        let mut c = small();
        c.insert(Addr(0x00), CState::Exclusive, 1).unwrap();
        c.insert(Addr(0x20), CState::Exclusive, 2).unwrap();
        for line in c.iter_mut() {
            line.meta = 0;
        }
        assert!(c.iter().all(|l| l.meta == 0));
    }
}
