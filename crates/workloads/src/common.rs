//! Shared building blocks for the application generators.
//!
//! Every SPLASH-2-like generator composes the same ingredients; this
//! module provides them as emitters over an [`AppBuilder`]. Sites are
//! allocated once per *static* program point and shared across threads
//! (SPLASH-2 workers run the same code), so the harness's source-level
//! alarm counting matches the paper's methodology.

use crate::layout::Layout;
use hard_trace::{Program, ProgramBuilder};
use hard_types::{Addr, BarrierId, LockId, SiteId, ThreadId, Xoshiro256};

/// Workload size multiplier.
///
/// `Full` reproduces paper-scale runs; `Reduced` shrinks iteration and
/// streaming volumes for fast tests and benches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scale {
    /// Paper-scale (the harness default).
    Full,
    /// Multiply volumes by the factor (clamped to at least one
    /// iteration everywhere).
    Reduced(f64),
}

impl Scale {
    /// The multiplication factor.
    #[must_use]
    pub fn factor(self) -> f64 {
        match self {
            Scale::Full => 1.0,
            Scale::Reduced(f) => f,
        }
    }

    /// Scales a count, keeping at least 1.
    #[must_use]
    pub fn apply(self, n: usize) -> usize {
        ((n as f64 * self.factor()).round() as usize).max(1)
    }
}

/// Configuration common to all workload generators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Number of worker threads (the paper runs 4, one per core).
    pub num_threads: usize,
    /// Structure seed: shapes the random choices inside generation
    /// (access orders, cluster placement). Distinct from the
    /// scheduler's interleaving seed.
    pub seed: u64,
    /// Size multiplier.
    pub scale: Scale,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_threads: 4,
            seed: 0,
            scale: Scale::Full,
        }
    }
}

impl WorkloadConfig {
    /// A reduced-scale copy for tests.
    #[must_use]
    pub fn reduced(factor: f64) -> WorkloadConfig {
        WorkloadConfig {
            scale: Scale::Reduced(factor),
            ..WorkloadConfig::default()
        }
    }
}

/// A lock-protected shared variable: the injectable unit.
#[derive(Clone, Copy, Debug)]
pub struct LockedVar {
    /// The variable's address (4-byte word).
    pub addr: Addr,
    /// Its protecting lock.
    pub lock: LockId,
    site_lock: SiteId,
    site_read: SiteId,
    site_write: SiteId,
    site_unlock: SiteId,
}

impl LockedVar {
    /// The variable's static sites as
    /// `(lock, read, write, unlock)` — for generators that need custom
    /// access shapes (e.g. the server's 8-byte session records) while
    /// keeping the SPMD site discipline.
    #[must_use]
    pub fn sites(&self) -> (SiteId, SiteId, SiteId, SiteId) {
        (
            self.site_lock,
            self.site_read,
            self.site_write,
            self.site_unlock,
        )
    }
}

/// A variable whose protecting lock changes between program phases —
/// correct under happens-before (every thread participates in both
/// eras) but a guaranteed lockset false alarm.
#[derive(Clone, Copy, Debug)]
pub struct RotationVar {
    /// The variable.
    pub addr: Addr,
    /// Lock used in early phases.
    pub lock_a: LockId,
    /// Lock used in late phases.
    pub lock_b: LockId,
    site_lock: SiteId,
    site_write: SiteId,
    site_unlock: SiteId,
}

/// A flag hand-off pair: data published through an unsynchronized flag.
/// Invisible to both detectors' sync tracking — a residual false-alarm
/// source for both (paper §5.1 "hand-crafted synchronizations").
#[derive(Clone, Copy, Debug)]
pub struct FlagPair {
    /// The published datum.
    pub data: Addr,
    /// The flag word.
    pub flag: Addr,
    site_wd: SiteId,
    site_wf: SiteId,
    site_rf: SiteId,
    site_rd: SiteId,
}

/// A false-sharing cluster: per-thread variables packed into one cache
/// line at a fixed spacing. Each variable is touched by exactly one
/// thread, so the cluster is silent at granularities below the spacing
/// and alarms at coarser ones (Table 3's mechanism).
#[derive(Clone, Debug)]
pub struct FsCluster {
    /// Base line address.
    pub line: Addr,
    /// Byte spacing between neighbouring variables.
    pub spacing: u64,
    /// `(variable, owning thread)` assignments.
    pub vars: Vec<(Addr, ThreadId)>,
    site_write: SiteId,
    site_read: SiteId,
}

/// A reusable per-thread private streaming region; see
/// [`AppBuilder::stream_region`].
#[derive(Clone, Copy, Debug)]
pub struct StreamRegion {
    /// Base address.
    pub base: Addr,
    /// Region length in bytes (multiple of the 32-byte line).
    pub len: u64,
    site_read: SiteId,
    site_write: SiteId,
}

/// A barrier point with a stable site.
#[derive(Clone, Copy, Debug)]
pub struct BarrierPoint {
    /// The barrier object.
    pub id: BarrierId,
    site: SiteId,
}

/// Builder state threaded through a generator.
#[derive(Debug)]
pub struct AppBuilder {
    /// The program being built.
    pub pb: ProgramBuilder,
    /// Address/site allocation.
    pub layout: Layout,
    /// Structure randomness.
    pub rng: Xoshiro256,
    /// Thread count.
    pub threads: usize,
    /// Size multiplier.
    pub scale: Scale,
    next_barrier: u32,
    stream_sites: Vec<(SiteId, SiteId)>,
}

impl AppBuilder {
    /// A fresh builder for `cfg`.
    #[must_use]
    pub fn new(cfg: &WorkloadConfig) -> AppBuilder {
        AppBuilder {
            pb: ProgramBuilder::new(cfg.num_threads),
            layout: Layout::new(cfg.num_threads),
            rng: Xoshiro256::seed_from_u64(cfg.seed),
            threads: cfg.num_threads,
            scale: cfg.scale,
            next_barrier: 0,
            stream_sites: Vec::new(),
        }
    }

    /// Scales a count by the configured factor.
    #[must_use]
    pub fn scaled(&self, n: usize) -> usize {
        self.scale.apply(n)
    }

    /// Allocates a new lock-protected variable on its own line.
    pub fn locked_var(&mut self) -> LockedVar {
        LockedVar {
            addr: self.layout.isolated_word(),
            lock: self.layout.lock(),
            site_lock: self.layout.site(),
            site_read: self.layout.site(),
            site_write: self.layout.site(),
            site_unlock: self.layout.site(),
        }
    }

    /// Allocates a lock-protected variable at an explicit address
    /// (e.g. inside an array already laid out).
    pub fn locked_var_at(&mut self, addr: Addr) -> LockedVar {
        LockedVar {
            addr,
            lock: self.layout.lock(),
            site_lock: self.layout.site(),
            site_read: self.layout.site(),
            site_write: self.layout.site(),
            site_unlock: self.layout.site(),
        }
    }

    /// Emits `lock; read; write; unlock` on `var` by thread `t` — one
    /// dynamic critical section, the injector's unit.
    pub fn update(&mut self, t: u32, var: &LockedVar) {
        self.pb
            .thread(t)
            .lock(var.lock, var.site_lock)
            .read(var.addr, 4, var.site_read)
            .write(var.addr, 4, var.site_write)
            .unlock(var.lock, var.site_unlock);
    }

    /// Emits a read-only locked access to `var` by `t`.
    pub fn read_locked(&mut self, t: u32, var: &LockedVar) {
        self.pb
            .thread(t)
            .lock(var.lock, var.site_lock)
            .read(var.addr, 4, var.site_read)
            .unlock(var.lock, var.site_unlock);
    }

    /// Allocates a rotation variable.
    pub fn rotation_var(&mut self) -> RotationVar {
        RotationVar {
            addr: self.layout.isolated_word(),
            lock_a: self.layout.lock(),
            lock_b: self.layout.lock(),
            site_lock: self.layout.site(),
            site_write: self.layout.site(),
            site_unlock: self.layout.site(),
        }
    }

    /// Emits an update of a rotation variable by `t`, using the era's
    /// lock.
    pub fn rotation_update(&mut self, t: u32, var: &RotationVar, late_era: bool) {
        let lock = if late_era { var.lock_b } else { var.lock_a };
        self.pb
            .thread(t)
            .lock(lock, var.site_lock)
            .write(var.addr, 4, var.site_write)
            .unlock(lock, var.site_unlock);
    }

    /// Allocates a flag hand-off pair.
    pub fn flag_pair(&mut self) -> FlagPair {
        FlagPair {
            data: self.layout.isolated_word(),
            flag: self.layout.isolated_word(),
            site_wd: self.layout.site(),
            site_wf: self.layout.site(),
            site_rf: self.layout.site(),
            site_rd: self.layout.site(),
        }
    }

    /// Emits the producer half of a flag hand-off.
    pub fn flag_produce(&mut self, t: u32, pair: &FlagPair) {
        self.pb
            .thread(t)
            .write(pair.data, 4, pair.site_wd)
            .write(pair.flag, 4, pair.site_wf);
    }

    /// Emits the consumer half of a flag hand-off.
    pub fn flag_consume(&mut self, t: u32, pair: &FlagPair) {
        self.pb
            .thread(t)
            .read(pair.flag, 4, pair.site_rf)
            .read(pair.data, 4, pair.site_rd);
    }

    /// Allocates a false-sharing cluster with variables every `spacing`
    /// bytes, round-robin across threads.
    ///
    /// # Panics
    ///
    /// Panics unless `spacing` is a power of two in `[4, 16]`.
    pub fn fs_cluster(&mut self, spacing: u64) -> FsCluster {
        assert!(
            spacing.is_power_of_two() && (4..=16).contains(&spacing),
            "spacing must be 4, 8 or 16 bytes"
        );
        let line = self.layout.shared_line();
        let vars = (0..(32 / spacing))
            .map(|i| {
                (
                    Addr(line.0 + i * spacing),
                    ThreadId((i % self.threads as u64) as u32),
                )
            })
            .collect();
        FsCluster {
            line,
            spacing,
            vars,
            site_write: self.layout.site(),
            site_read: self.layout.site(),
        }
    }

    /// Allocates a batch of clusters: `spec` lists `(spacing, count)`
    /// pairs.
    pub fn fs_clusters(&mut self, spec: &[(u64, usize)]) -> Vec<FsCluster> {
        let mut out = Vec::new();
        for &(spacing, count) in spec {
            for _ in 0..count {
                out.push(self.fs_cluster(spacing));
            }
        }
        out
    }

    /// Emits thread `t` touching (write+read) its own variables of
    /// `cluster` once. Used by generators that spread the per-thread
    /// counter updates through the phase, so that the false-sharing
    /// evidence must survive in the cache between distant touches.
    pub fn fs_touch_one(&mut self, cluster: &FsCluster, t: u32) {
        for &(addr, owner) in &cluster.vars {
            if owner.0 == t {
                self.pb.thread(t).write(addr, 4, cluster.site_write).read(
                    addr,
                    4,
                    cluster.site_read,
                );
            }
        }
    }

    /// Builds a per-thread touch schedule for the false-sharing
    /// clusters of one phase: cluster `c` is active only in phase
    /// `c % phases`, and thread `t` touches it at a sweep position
    /// staggered by a quarter sweep per thread. The distance between
    /// two threads' touches of the same line is then a sizable fraction
    /// of the phase's cache traffic, which is what makes the alarm
    /// counts sensitive to the L2 size (Table 5): a small L2 displaces
    /// the granule's metadata before the second owner arrives.
    ///
    /// Returns, for each sweep step, the indices of clusters thread `t`
    /// must touch there.
    #[must_use]
    pub fn fs_schedule(
        &self,
        clusters: &[FsCluster],
        phase: usize,
        phases: usize,
        sweep_len: usize,
        t: u32,
    ) -> Vec<Vec<usize>> {
        let mut per_step: Vec<Vec<usize>> = vec![Vec::new(); sweep_len.max(1)];
        let subset: Vec<usize> = (0..clusters.len())
            .filter(|c| c % phases == phase % phases)
            .collect();
        if subset.is_empty() || sweep_len == 0 {
            return per_step;
        }
        let spread = (sweep_len / subset.len()).max(1);
        let stagger = sweep_len / self.threads.max(1);
        for (j, &c) in subset.iter().enumerate() {
            let pos = (j * spread + t as usize * stagger) % sweep_len;
            per_step[pos].push(c);
        }
        per_step
    }

    /// Emits each owning thread touching (write+read) its own cluster
    /// variable once.
    pub fn fs_touch(&mut self, cluster: &FsCluster) {
        for &(addr, owner) in &cluster.vars {
            self.pb
                .thread(owner.0)
                .write(addr, 4, cluster.site_write)
                .read(addr, 4, cluster.site_read);
        }
    }

    /// Emits an idempotent unprotected write by every thread — a benign
    /// race (all writers store the same value), still reported by both
    /// detectors when unordered.
    pub fn benign_race(&mut self) -> (Addr, SiteId) {
        let addr = self.layout.isolated_word();
        let site = self.layout.site();
        (addr, site)
    }

    /// Emits one benign write by `t`.
    pub fn benign_write(&mut self, t: u32, var: (Addr, SiteId)) {
        self.pb.thread(t).write(var.0, 4, var.1);
    }

    /// Allocates a barrier point.
    pub fn barrier_point(&mut self) -> BarrierPoint {
        let id = BarrierId(self.next_barrier);
        self.next_barrier += 1;
        BarrierPoint {
            id,
            site: self.layout.site(),
        }
    }

    /// Emits a barrier arrival for every thread.
    pub fn arrive_all(&mut self, bp: &BarrierPoint) {
        for t in 0..self.threads as u32 {
            self.pb.thread(t).barrier(bp.id, bp.site);
        }
    }

    /// Allocates a reusable per-thread private array for
    /// [`AppBuilder::stream_over`]. Applications with small working
    /// sets (water, barnes, raytrace) sweep the same region every
    /// phase, so it becomes cache-resident; large-footprint
    /// applications use [`AppBuilder::stream_private`] instead, which
    /// touches fresh memory every time.
    pub fn stream_region(&mut self, t: u32, bytes: u64) -> StreamRegion {
        while self.stream_sites.len() <= t as usize {
            let r = self.layout.site();
            let w = self.layout.site();
            self.stream_sites.push((r, w));
        }
        let (site_read, site_write) = self.stream_sites[t as usize];
        StreamRegion {
            base: self.layout.private(t as usize, bytes.max(32)),
            len: bytes.max(32) / 32 * 32,
            site_read,
            site_write,
        }
    }

    /// Emits a sweep of `bytes` over `region` starting at byte offset
    /// `start` (wrapping), by thread `t`.
    pub fn stream_over(&mut self, t: u32, region: &StreamRegion, start: u64, bytes: u64) {
        let lines_total = region.len / 32;
        let tp = self.pb.thread(t);
        let first = (start / 32) % lines_total;
        for i in 0..(bytes / 32).max(1) {
            let a = Addr(region.base.0 + ((first + i) % lines_total) * 32);
            tp.read(a, 4, region.site_read);
            if i % 4 == 0 {
                tp.write(a, 4, region.site_write);
            }
        }
    }

    /// Emits `bytes` of private streaming (read + occasional write) by
    /// thread `t` at 32-byte stride — cache pressure that displaces
    /// metadata from the L2.
    pub fn stream_private(&mut self, t: u32, bytes: u64) {
        while self.stream_sites.len() <= t as usize {
            let r = self.layout.site();
            let w = self.layout.site();
            self.stream_sites.push((r, w));
        }
        let (site_r, site_w) = self.stream_sites[t as usize];
        let base = self.layout.private(t as usize, bytes.max(32));
        let tp = self.pb.thread(t);
        let lines = (bytes / 32).max(1);
        for i in 0..lines {
            let a = Addr(base.0 + i * 32);
            tp.read(a, 4, site_r);
            if i % 4 == 0 {
                tp.write(a, 4, site_w);
            }
        }
    }

    /// Emits `cycles` of private computation by `t`.
    pub fn compute(&mut self, t: u32, cycles: u32) {
        self.pb.thread(t).compute(cycles);
    }

    /// Finishes the build, checking well-formedness.
    ///
    /// # Panics
    ///
    /// Panics if the generated program fails validation — a generator
    /// bug.
    #[must_use]
    pub fn finish(self) -> Program {
        let p = self.pb.build();
        if let Err(e) = p.validate() {
            panic!("generated program is malformed: {e}");
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hard_trace::{SchedConfig, Scheduler, TraceStats};

    #[test]
    fn scale_math() {
        assert_eq!(Scale::Full.apply(10), 10);
        assert_eq!(Scale::Reduced(0.1).apply(10), 1);
        assert_eq!(Scale::Reduced(0.01).apply(10), 1, "clamped to 1");
        assert_eq!(Scale::Reduced(2.0).apply(10), 20);
    }

    #[test]
    fn update_emits_balanced_sections() {
        let cfg = WorkloadConfig::default();
        let mut b = AppBuilder::new(&cfg);
        let v = b.locked_var();
        for t in 0..4 {
            b.update(t, &v);
        }
        let p = b.finish();
        assert_eq!(p.total_ops(), 16);
        assert_eq!(p.locks_used().len(), 1);
    }

    #[test]
    fn fs_cluster_partitions_a_line() {
        let cfg = WorkloadConfig::default();
        let mut b = AppBuilder::new(&cfg);
        let c = b.fs_cluster(8);
        assert_eq!(c.vars.len(), 4);
        for (i, &(a, _)) in c.vars.iter().enumerate() {
            assert_eq!(a.0, c.line.0 + i as u64 * 8);
        }
        b.fs_touch(&c);
        let p = b.finish();
        assert_eq!(p.total_ops(), 8);
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn fs_cluster_rejects_bad_spacing() {
        let cfg = WorkloadConfig::default();
        let mut b = AppBuilder::new(&cfg);
        let _ = b.fs_cluster(32);
    }

    #[test]
    fn stream_reuses_static_sites() {
        let cfg = WorkloadConfig::default();
        let mut b = AppBuilder::new(&cfg);
        b.stream_private(0, 1024);
        b.stream_private(0, 1024);
        let p = b.finish();
        let trace = Scheduler::new(SchedConfig::default()).run(&p);
        let stats = TraceStats::from_trace(&trace);
        assert_eq!(stats.reads, 64);
        assert_eq!(stats.writes, 16);
        // Two static sites regardless of volume.
        let sites: std::collections::BTreeSet<_> =
            trace.ops().filter_map(|(_, op)| op.site()).collect();
        assert_eq!(sites.len(), 2);
    }

    #[test]
    fn barrier_arrivals_are_balanced() {
        let cfg = WorkloadConfig::default();
        let mut b = AppBuilder::new(&cfg);
        let bp = b.barrier_point();
        b.arrive_all(&bp);
        let p = b.finish();
        assert_eq!(p.validate(), Ok(()));
    }
}
