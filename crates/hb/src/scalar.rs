//! Scalar-clock happens-before, in the style of CORD (Prvulovic,
//! HPCA 2006), which the paper cites as the cost-effective
//! order-recording alternative among its happens-before baselines.
//!
//! Instead of one vector-clock component per thread, every thread
//! carries a single Lamport-style scalar clock and every granule
//! stores one write epoch and one (compressed) read epoch. The
//! ordering test "the earlier access's timestamp is below my clock"
//! is sound in one direction only:
//!
//! * causally ordered accesses always satisfy it (no false positives
//!   relative to true happens-before), but
//! * concurrent accesses may satisfy it *by coincidence*, hiding real
//!   races — the precision cost of the cheaper hardware.
//!
//! [`ScalarHappensBefore`] is the unbounded detector; the differential
//! tests pin the subset relationship against the vector-clock
//! [`crate::IdealHappensBefore`].

use hard_trace::{Detector, Op, RaceReport, TraceEvent};
use hard_types::{AccessKind, Addr, Granularity, LockId, SiteId, ThreadId};
use std::collections::{BTreeMap, BTreeSet};

/// Scalar synchronization clocks: one counter per thread, one per lock.
#[derive(Clone, Debug)]
pub struct ScalarSync {
    threads: Vec<u64>,
    locks: BTreeMap<LockId, u64>,
}

impl ScalarSync {
    /// Initial clocks for `num_threads` threads, all at epoch 1.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    #[must_use]
    pub fn new(num_threads: usize) -> ScalarSync {
        assert!(num_threads > 0, "need at least one thread");
        ScalarSync {
            threads: vec![1; num_threads],
            locks: BTreeMap::new(),
        }
    }

    /// Thread `t`'s current scalar clock.
    #[must_use]
    pub fn clock(&self, t: ThreadId) -> u64 {
        self.threads[t.index()]
    }

    /// Acquire: the acquirer's clock advances past the lock's last
    /// release timestamp (the Lamport receive rule).
    pub fn acquire(&mut self, t: ThreadId, lock: LockId) {
        if let Some(&lc) = self.locks.get(&lock) {
            let c = &mut self.threads[t.index()];
            *c = (*c).max(lc + 1);
        }
    }

    /// Release: stamp the lock and start a new epoch.
    pub fn release(&mut self, t: ThreadId, lock: LockId) {
        let c = &mut self.threads[t.index()];
        self.locks.insert(lock, *c);
        *c += 1;
    }

    /// Barrier: everyone advances past the global maximum.
    pub fn barrier_all(&mut self) {
        let max = self.threads.iter().copied().max().unwrap_or(0);
        for c in &mut self.threads {
            *c = max + 1;
        }
    }

    /// Fork edge.
    pub fn fork(&mut self, parent: ThreadId, child: ThreadId) {
        let pc = self.threads[parent.index()];
        let cc = &mut self.threads[child.index()];
        *cc = (*cc).max(pc + 1);
        self.threads[parent.index()] += 1;
    }

    /// Join edge.
    pub fn join_thread(&mut self, parent: ThreadId, child: ThreadId) {
        let cc = self.threads[child.index()];
        let pc = &mut self.threads[parent.index()];
        *pc = (*pc).max(cc + 1);
    }
}

/// Per-granule scalar history: one write epoch, one compressed read
/// epoch (the most recent read only — CORD-style state compression).
#[derive(Clone, Copy, Debug, Default)]
struct ScalarLine {
    write: Option<(ThreadId, u64)>,
    read: Option<(ThreadId, u64)>,
}

/// Configuration of the scalar detector.
#[derive(Clone, Copy, Debug)]
pub struct ScalarHbConfig {
    /// Number of threads.
    pub num_threads: usize,
    /// Monitoring granularity (32-byte lines by default, like the
    /// hardware baselines).
    pub granularity: Granularity,
}

impl ScalarHbConfig {
    /// Line-granularity configuration for `num_threads` threads.
    #[must_use]
    pub fn new(num_threads: usize) -> ScalarHbConfig {
        ScalarHbConfig {
            num_threads,
            granularity: Granularity::new(32),
        }
    }
}

/// The scalar-clock happens-before detector. See the
/// [module docs](self).
#[derive(Debug)]
pub struct ScalarHappensBefore {
    cfg: ScalarHbConfig,
    sync: ScalarSync,
    granules: BTreeMap<Addr, ScalarLine>,
    reports: Vec<RaceReport>,
    reported: BTreeSet<(Addr, SiteId)>,
}

impl ScalarHappensBefore {
    /// A fresh detector.
    #[must_use]
    pub fn new(cfg: ScalarHbConfig) -> ScalarHappensBefore {
        ScalarHappensBefore {
            sync: ScalarSync::new(cfg.num_threads),
            granules: BTreeMap::new(),
            reports: Vec::new(),
            reported: BTreeSet::new(),
            cfg,
        }
    }

    fn on_access(
        &mut self,
        index: usize,
        thread: ThreadId,
        addr: Addr,
        size: u8,
        kind: AccessKind,
        site: SiteId,
    ) {
        let clock = self.sync.clock(thread);
        let gran = self.cfg.granularity;
        for g in gran.granules_in(addr, u64::from(size)) {
            let line = self.granules.entry(g).or_default();
            let mut race = false;
            if let Some((wt, wts)) = line.write {
                if wt != thread && wts >= clock {
                    race = true;
                }
            }
            if kind.is_write() {
                if let Some((rt, rts)) = line.read {
                    if rt != thread && rts >= clock {
                        race = true;
                    }
                }
                line.write = Some((thread, clock));
            } else {
                line.read = Some((thread, clock));
            }
            if race && self.reported.insert((g, site)) {
                self.reports.push(RaceReport {
                    addr,
                    size,
                    site,
                    thread,
                    kind,
                    event_index: index,
                });
            }
        }
    }
}

impl Detector for ScalarHappensBefore {
    fn name(&self) -> &str {
        "happens-before-scalar"
    }

    fn on_event(&mut self, index: usize, event: &TraceEvent) {
        match *event {
            TraceEvent::Op { thread, op } => match op {
                Op::Read { addr, size, site } => {
                    self.on_access(index, thread, addr, size, AccessKind::Read, site);
                }
                Op::Write { addr, size, site } => {
                    self.on_access(index, thread, addr, size, AccessKind::Write, site);
                }
                Op::Lock { lock, .. } => self.sync.acquire(thread, lock),
                Op::Unlock { lock, .. } => self.sync.release(thread, lock),
                Op::Fork { child, .. } => self.sync.fork(thread, child),
                Op::Join { child, .. } => self.sync.join_thread(thread, child),
                Op::Barrier { .. } | Op::Compute { .. } => {}
            },
            TraceEvent::BarrierComplete { .. } => self.sync.barrier_all(),
        }
    }

    fn reports(&self) -> &[RaceReport] {
        &self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hard_trace::{run_detector, ProgramBuilder, SchedConfig, Scheduler};

    #[test]
    fn scalar_clocks_order_lock_chains() {
        let mut s = ScalarSync::new(2);
        let t0 = ThreadId(0);
        let t1 = ThreadId(1);
        let l = LockId(0x40);
        let before = s.clock(t0);
        s.release(t0, l);
        s.acquire(t1, l);
        assert!(s.clock(t1) > before, "the receive rule advances the clock");
    }

    #[test]
    fn detects_plainly_concurrent_writes() {
        let x = Addr(0x1000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0).write(x, 4, SiteId(1));
        b.thread(1).write(x, 4, SiteId(2));
        let trace = Scheduler::new(SchedConfig::default()).run(&b.build());
        let mut d = ScalarHappensBefore::new(ScalarHbConfig::new(2));
        let r = run_detector(&mut d, &trace);
        assert!(r.iter().any(|r| r.addr == x));
    }

    #[test]
    fn lock_ordered_accesses_are_clean() {
        let mut b = ProgramBuilder::new(2);
        for t in 0..2u32 {
            let tp = b.thread(t);
            for i in 0..6u32 {
                tp.lock(LockId(0x40), SiteId(t * 100 + i))
                    .write(Addr(0x1000), 4, SiteId(5))
                    .unlock(LockId(0x40), SiteId(t * 100 + 50 + i));
            }
        }
        for seed in 0..8 {
            let trace = Scheduler::new(SchedConfig {
                seed,
                max_quantum: 4,
            })
            .run(&b.clone().build());
            let mut d = ScalarHappensBefore::new(ScalarHbConfig::new(2));
            assert!(run_detector(&mut d, &trace).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn scalar_coincidence_hides_a_race_the_vector_clock_sees() {
        // t0 releases an UNRELATED lock (advancing the global scalar
        // supply); t1 then acquires a different lock whose last release
        // stamp is high, inflating t1's clock past t0's write stamp —
        // the scalar test wrongly deems the accesses ordered. Vector
        // clocks keep per-thread components and are not fooled.
        use crate::ideal::{IdealHappensBefore, IdealHbConfig};
        let x = Addr(0x1000);
        let a = LockId(0x40);
        let t0 = ThreadId(0);
        let t1 = ThreadId(1);
        let ev = |thread, op| TraceEvent::Op { thread, op };
        let trace = hard_trace::Trace {
            events: vec![
                // t0 pumps the lock's stamp up.
                ev(
                    t0,
                    Op::Lock {
                        lock: a,
                        site: SiteId(1),
                    },
                ),
                ev(
                    t0,
                    Op::Unlock {
                        lock: a,
                        site: SiteId(2),
                    },
                ),
                ev(
                    t0,
                    Op::Lock {
                        lock: a,
                        site: SiteId(3),
                    },
                ),
                ev(
                    t0,
                    Op::Unlock {
                        lock: a,
                        site: SiteId(4),
                    },
                ),
                // t0's racy write carries its (now advanced) clock.
                ev(
                    t0,
                    Op::Write {
                        addr: x,
                        size: 4,
                        site: SiteId(5),
                    },
                ),
                // t1 acquires the same lock: its scalar clock jumps past
                // t0's write stamp even though no edge orders the write.
                ev(
                    t1,
                    Op::Lock {
                        lock: a,
                        site: SiteId(6),
                    },
                ),
                ev(
                    t1,
                    Op::Unlock {
                        lock: a,
                        site: SiteId(7),
                    },
                ),
                ev(
                    t1,
                    Op::Write {
                        addr: x,
                        size: 4,
                        site: SiteId(8),
                    },
                ),
            ],
            num_threads: 2,
        };
        let mut scalar = ScalarHappensBefore::new(ScalarHbConfig::new(2));
        let rs = run_detector(&mut scalar, &trace);
        let mut vector = IdealHappensBefore::new(IdealHbConfig {
            num_threads: 2,
            granularity: Granularity::new(32),
        });
        let rv = run_detector(&mut vector, &trace);
        assert!(
            rv.iter().any(|r| r.addr == x),
            "the vector clock sees the unordered write pair"
        );
        assert!(
            !rs.iter().any(|r| r.addr == x),
            "the scalar coincidence hides it (CORD's precision cost)"
        );
    }
}
