//! The bloom-filter bit vector and its address mapping (paper Figure 4).

use hard_types::LockId;
use std::fmt;

/// Layout of a HARD bloom-filter vector.
///
/// The vector is divided into `PARTS` (always 4, as in the paper) parts
/// of `part_len` bits each. A lock address contributes
/// `log2(part_len)` consecutive address bits per part, starting at
/// address bit 2 (word-aligned locks make bits 0–1 uninformative); each
/// part's index selects exactly one bit of that part to set.
///
/// The paper's default is the 16-bit layout ([`BloomShape::B16`]:
/// 4 parts × 4 bits, 2 index bits per part, consuming address bits
/// 2–9). The Table 6 study also evaluates a 32-bit layout
/// ([`BloomShape::B32`]: 4 parts × 8 bits, 3 index bits per part,
/// consuming address bits 2–13).
/// The shape is a single word: every derived constant (`full_mask`,
/// the per-part low/high bit masks) is a couple of shifts away from
/// `part_len`, and recomputing them is a handful of fully-pipelined ALU
/// ops. Storing them would quadruple the struct — and a `BloomShape`
/// rides inside every packed line's metadata and every `BloomVector`,
/// so on the streaming workloads each stored byte is multiplied by
/// tens of thousands of cache fills, evictions and writebacks per run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BloomShape {
    part_len: u32,
}

/// Number of parts in every HARD bloom vector (fixed by the paper).
pub const PARTS: u32 = 4;

/// Lowest address bit used by the mapping; bits 0–1 are skipped because
/// lock objects are at least word aligned.
pub const ADDR_LOW_BIT: u32 = 2;

impl BloomShape {
    /// The paper's default 16-bit vector: 4 parts × 4 bits.
    pub const B16: BloomShape = BloomShape::with_part_len(4);

    /// The 32-bit vector of the Table 6 sensitivity study:
    /// 4 parts × 8 bits.
    pub const B32: BloomShape = BloomShape::with_part_len(8);

    /// Creates a shape with 4 parts of `part_len` bits each.
    ///
    /// # Panics
    ///
    /// Panics unless `part_len` is a power of two in `[2, 16]`, which
    /// keeps the whole vector within 64 bits and the index computable
    /// from address bits.
    #[must_use]
    pub fn new(part_len: u32) -> BloomShape {
        assert!(
            part_len.is_power_of_two() && (2..=16).contains(&part_len),
            "part_len must be a power of two in [2, 16], got {part_len}"
        );
        BloomShape::with_part_len(part_len)
    }

    const fn with_part_len(part_len: u32) -> BloomShape {
        BloomShape { part_len }
    }

    /// Bits per part.
    #[must_use]
    pub fn part_len(self) -> u32 {
        self.part_len
    }

    /// Total vector length in bits (what the paper calls the BFVector
    /// size: 16 or 32).
    #[must_use]
    pub fn total_bits(self) -> u32 {
        self.part_len * PARTS
    }

    /// Address bits consumed per part.
    #[must_use]
    pub fn index_bits(self) -> u32 {
        self.part_len.trailing_zeros()
    }

    /// The all-ones vector value ("all possible locks"). Valid for
    /// every legal shape including the 64-bit edge (`64 - total` is 0
    /// there, and a shift by 0 leaves `u64::MAX` intact).
    #[must_use]
    #[inline]
    pub fn full_mask(self) -> u64 {
        u64::MAX >> (64 - self.part_len * PARTS)
    }

    /// Mask with exactly the lowest bit of every part set — one operand
    /// of the zero-field emptiness identity.
    #[must_use]
    #[inline]
    pub fn low_bits(self) -> u64 {
        let pair = 1u64 | (1u64 << self.part_len);
        pair | (pair << (2 * self.part_len))
    }

    /// Mask with exactly the highest bit of every part set — the other
    /// operand of the zero-field emptiness identity.
    #[must_use]
    #[inline]
    pub fn high_bits(self) -> u64 {
        self.low_bits() << (self.part_len - 1)
    }

    /// Mask selecting part `i` (0-based) of the vector. Production code
    /// goes through the branch-free [`BloomShape::has_empty_part`]; the
    /// tests keep this literal per-part view as the reference model.
    #[cfg(test)]
    #[must_use]
    fn part_mask(self, i: u32) -> u64 {
        debug_assert!(i < PARTS);
        let ones = (1u64 << self.part_len) - 1;
        ones << (i * self.part_len)
    }

    /// Whether any part of `bits` is all-zero — the paper's emptiness
    /// test as one branch-free word operation (the hardware is four
    /// parallel NOR gates; this is the zero-field detection identity
    /// `(v - lows) & !v & highs`, where `lows`/`highs` mark the
    /// lowest/highest bit of each part).
    ///
    /// Bits of `bits` outside [`BloomShape::full_mask`] are ignored.
    #[must_use]
    #[inline]
    pub fn has_empty_part(self, bits: u64) -> bool {
        let lows = self.low_bits();
        let highs = lows << (self.part_len - 1);
        bits.wrapping_sub(lows) & !bits & highs != 0
    }

    /// Maps a lock address to its signature: the vector with exactly
    /// one bit set per part (Figure 4).
    #[must_use]
    pub fn signature(self, lock: LockId) -> u64 {
        let idx_bits = self.index_bits();
        let mut sig = 0u64;
        for part in 0..PARTS {
            let idx = (lock.0 >> (ADDR_LOW_BIT as u64 + (part * idx_bits) as u64))
                & ((self.part_len - 1) as u64);
            sig |= 1u64 << (part * self.part_len + idx as u32);
        }
        sig
    }
}

impl Default for BloomShape {
    fn default() -> Self {
        BloomShape::B16
    }
}

impl fmt::Display for BloomShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.total_bits())
    }
}

/// A bloom-filter vector: the hardware BFVector.
///
/// All set operations are branch-free bit logic, mirroring how cheaply
/// the hardware performs them.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BloomVector {
    shape: BloomShape,
    bits: u64,
}

impl BloomVector {
    /// The vector representing the empty set (all bits zero).
    #[must_use]
    pub fn empty(shape: BloomShape) -> BloomVector {
        BloomVector { shape, bits: 0 }
    }

    /// The vector representing "all possible locks" (all bits one).
    ///
    /// This is the value a candidate set is initialised to when a line
    /// is fetched from memory, and the value every vector is flash-reset
    /// to after a barrier (§3.5).
    #[must_use]
    pub fn full(shape: BloomShape) -> BloomVector {
        BloomVector {
            shape,
            bits: shape.full_mask(),
        }
    }

    /// Builds a vector containing exactly the given locks.
    #[must_use]
    pub fn from_locks(shape: BloomShape, locks: &[LockId]) -> BloomVector {
        let mut v = BloomVector::empty(shape);
        for &l in locks {
            v.insert(l);
        }
        v
    }

    /// The layout of this vector.
    #[must_use]
    pub fn shape(self) -> BloomShape {
        self.shape
    }

    /// The raw bit pattern (within [`BloomShape::full_mask`]).
    #[must_use]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Reconstructs a vector from raw bits, e.g. when metadata arrives
    /// in a coherence message.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has bits outside the shape's mask, which would
    /// indicate a corrupted message.
    #[must_use]
    pub fn from_bits(shape: BloomShape, bits: u64) -> BloomVector {
        assert_eq!(
            bits & !shape.full_mask(),
            0,
            "bit pattern {bits:#x} exceeds {shape} vector"
        );
        BloomVector { shape, bits }
    }

    /// Adds a lock: bitwise OR with the lock's signature.
    pub fn insert(&mut self, lock: LockId) {
        self.bits |= self.shape.signature(lock);
    }

    /// Membership test (may report false positives, never false
    /// negatives): all of the lock's signature bits are set.
    #[must_use]
    pub fn contains(self, lock: LockId) -> bool {
        let sig = self.shape.signature(lock);
        self.bits & sig == sig
    }

    /// Set intersection: a single bitwise AND (the operation HARD
    /// performs on every shared access).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ; the hardware fixes one vector width
    /// machine-wide.
    #[must_use]
    pub fn intersect(self, other: &BloomVector) -> BloomVector {
        assert_eq!(self.shape, other.shape, "mismatched bloom shapes");
        BloomVector {
            shape: self.shape,
            bits: self.bits & other.bits,
        }
    }

    /// Set union: a single bitwise OR (used when adding a lock to the
    /// lock register).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn union(self, other: &BloomVector) -> BloomVector {
        assert_eq!(self.shape, other.shape, "mismatched bloom shapes");
        BloomVector {
            shape: self.shape,
            bits: self.bits | other.bits,
        }
    }

    /// The paper's emptiness test: the set is empty iff at least one
    /// part has no bit set. An empty candidate set signals a potential
    /// race.
    ///
    /// The test is exact in one direction: a truly empty set is always
    /// reported empty. Hash collisions can make a truly empty
    /// intersection appear non-empty (a possible missed race, Figure 5),
    /// never the other way around.
    #[must_use]
    pub fn is_empty_set(self) -> bool {
        self.shape.has_empty_part(self.bits)
    }

    /// Resets to "all possible locks" (barrier flash-clear, §3.5).
    pub fn reset_full(&mut self) {
        self.bits = self.shape.full_mask();
    }

    /// Flips one bit of the vector — the fault-injection model of a
    /// particle strike on the BFVector storage cell.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the shape's vector width.
    pub fn flip_bit(&mut self, bit: u32) {
        assert!(
            bit < self.shape.total_bits(),
            "bit {bit} outside a {} vector",
            self.shape
        );
        self.bits ^= 1u64 << bit;
    }
}

impl fmt::Debug for BloomVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BloomVector({}, {:0width$b})",
            self.shape,
            self.bits,
            width = self.shape.total_bits() as usize
        )
    }
}

impl fmt::Binary for BloomVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_have_paper_dimensions() {
        assert_eq!(BloomShape::B16.total_bits(), 16);
        assert_eq!(BloomShape::B16.index_bits(), 2);
        assert_eq!(BloomShape::B32.total_bits(), 32);
        assert_eq!(BloomShape::B32.index_bits(), 3);
        assert_eq!(BloomShape::B16.full_mask(), 0xFFFF);
        assert_eq!(BloomShape::B32.full_mask(), 0xFFFF_FFFF);
    }

    #[test]
    #[should_panic(expected = "part_len")]
    fn shape_rejects_bad_part_len() {
        let _ = BloomShape::new(3);
    }

    #[test]
    fn signature_sets_one_bit_per_part() {
        for addr in [0u64, 0x4, 0xFF0, 0xDEAD_BEE4, !3u64] {
            for shape in [BloomShape::B16, BloomShape::B32] {
                let sig = shape.signature(LockId(addr));
                for part in 0..PARTS {
                    let part_bits =
                        (sig >> (part * shape.part_len())) & ((1u64 << shape.part_len()) - 1);
                    assert_eq!(part_bits.count_ones(), 1, "part {part} of {addr:#x}");
                }
            }
        }
    }

    #[test]
    fn signature_uses_address_bits_2_to_9_for_b16() {
        // Figure 4: bits 2..9 select the vector bits. Changing bits
        // outside that range must not change the signature.
        let shape = BloomShape::B16;
        let base = 0x0000_03FCu64; // bits 2..9 all ones
        assert_eq!(
            shape.signature(LockId(base)),
            shape.signature(LockId(base | 0xFFFF_FC00)),
        );
        assert_eq!(
            shape.signature(LockId(base)),
            shape.signature(LockId(base | 0x3)),
        );
        // ...while changing an in-range bit does.
        assert_ne!(
            shape.signature(LockId(base)),
            shape.signature(LockId(base ^ 0x4)),
        );
    }

    #[test]
    fn empty_and_full() {
        let e = BloomVector::empty(BloomShape::B16);
        assert!(e.is_empty_set());
        assert_eq!(e.bits(), 0);
        let f = BloomVector::full(BloomShape::B16);
        assert!(!f.is_empty_set());
        assert_eq!(f.bits(), 0xFFFF);
    }

    #[test]
    fn insert_then_contains() {
        let mut v = BloomVector::empty(BloomShape::B16);
        let l = LockId(0x1234);
        assert!(!v.contains(l));
        v.insert(l);
        assert!(v.contains(l));
        assert!(!v.is_empty_set());
    }

    #[test]
    fn full_contains_everything() {
        let f = BloomVector::full(BloomShape::B16);
        for a in (0..4096).step_by(4) {
            assert!(f.contains(LockId(a)));
        }
    }

    #[test]
    fn intersect_disjoint_parts_is_empty() {
        // Two locks whose part-0 indices differ produce an empty AND in
        // part 0, so the intersection tests empty.
        let shape = BloomShape::B16;
        let a = BloomVector::from_locks(shape, &[LockId(0x0)]);
        let b = BloomVector::from_locks(shape, &[LockId(0x4)]);
        assert!(a.intersect(&b).is_empty_set());
    }

    #[test]
    fn figure5_collision_hides_empty_intersection() {
        // Reconstruct the paper's Figure 5: C(v) = {L1, L2}, L(t) = {L3}
        // with L3's signature covered bit-by-bit by the union of L1 and
        // L2, so the AND is non-empty in every part even though the true
        // intersection is empty.
        let shape = BloomShape::B16;
        // Part indices (part0..part3) per lock, encoded into addr bits
        // 2..9 (2 bits per part, little end = part 0).
        let mk = |p0: u64, p1: u64, p2: u64, p3: u64| {
            LockId((p0 | (p1 << 2) | (p2 << 4) | (p3 << 6)) << 2)
        };
        let l1 = mk(0, 1, 2, 3);
        let l2 = mk(1, 2, 3, 0);
        let l3 = mk(0, 2, 2, 0); // part-wise covered by l1 ∪ l2
        let candidate = BloomVector::from_locks(shape, &[l1, l2]);
        let held = BloomVector::from_locks(shape, &[l3]);
        let inter = candidate.intersect(&held);
        assert!(
            !inter.is_empty_set(),
            "collision should hide the empty intersection (false negative)"
        );
    }

    #[test]
    fn union_is_or() {
        let shape = BloomShape::B16;
        let a = BloomVector::from_locks(shape, &[LockId(0x10)]);
        let b = BloomVector::from_locks(shape, &[LockId(0x20)]);
        let u = a.union(&b);
        assert!(u.contains(LockId(0x10)));
        assert!(u.contains(LockId(0x20)));
        assert_eq!(u.bits(), a.bits() | b.bits());
    }

    #[test]
    #[should_panic(expected = "mismatched bloom shapes")]
    fn intersect_mixed_shapes_panics() {
        let a = BloomVector::empty(BloomShape::B16);
        let b = BloomVector::empty(BloomShape::B32);
        let _ = a.intersect(&b);
    }

    #[test]
    fn from_bits_roundtrip() {
        let v = BloomVector::from_bits(BloomShape::B16, 0xABCD);
        assert_eq!(v.bits(), 0xABCD);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn from_bits_rejects_out_of_range() {
        let _ = BloomVector::from_bits(BloomShape::B16, 0x1_0000);
    }

    #[test]
    fn reset_full_restores_universe() {
        let mut v = BloomVector::empty(BloomShape::B32);
        v.insert(LockId(0x44));
        v.reset_full();
        assert_eq!(v, BloomVector::full(BloomShape::B32));
    }

    #[test]
    fn flip_bit_is_an_involution() {
        let mut v = BloomVector::full(BloomShape::B16);
        v.flip_bit(5);
        assert_eq!(v.bits(), 0xFFFF & !(1 << 5));
        v.flip_bit(5);
        assert_eq!(v, BloomVector::full(BloomShape::B16));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn flip_bit_rejects_out_of_range() {
        let mut v = BloomVector::empty(BloomShape::B16);
        v.flip_bit(16);
    }

    #[test]
    fn branch_free_emptiness_matches_per_part_scan_exhaustively() {
        // Every 16-bit pattern for B16; the word identity must agree
        // with the literal four-part scan bit for bit.
        let shape = BloomShape::B16;
        for bits in 0..=0xFFFFu64 {
            let scan = (0..PARTS).any(|i| bits & shape.part_mask(i) == 0);
            assert_eq!(shape.has_empty_part(bits), scan, "bits {bits:#06x}");
        }
        // Spot-check the wider shapes, including the 64-bit edge where
        // the top part touches the word boundary.
        for shape in [BloomShape::B32, BloomShape::new(16)] {
            for bits in [
                0u64,
                1,
                shape.full_mask(),
                shape.full_mask() - 1,
                shape.low_bits(),
                !shape.low_bits() & shape.full_mask(),
                0x8000_0001,
                0xAAAA_AAAA_AAAA_AAAA & shape.full_mask(),
            ] {
                let scan = (0..PARTS).any(|i| bits & shape.part_mask(i) == 0);
                assert_eq!(shape.has_empty_part(bits), scan, "{shape} bits {bits:#x}");
            }
        }
    }

    #[test]
    fn emptiness_is_sound_never_misses_true_empty() {
        // A zero vector is always empty; any single-lock vector never is.
        for shape in [BloomShape::B16, BloomShape::B32] {
            assert!(BloomVector::empty(shape).is_empty_set());
            for a in (0..1024).step_by(4) {
                assert!(!BloomVector::from_locks(shape, &[LockId(a)]).is_empty_set());
            }
        }
    }
}
