/root/repo/target/debug/deps/hard_exp-353a3edec9ea4ae8.d: crates/harness/src/bin/hard_exp.rs

/root/repo/target/debug/deps/hard_exp-353a3edec9ea4ae8: crates/harness/src/bin/hard_exp.rs

crates/harness/src/bin/hard_exp.rs:
