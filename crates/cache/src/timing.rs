//! The cycle-cost model behind the Figure 8 overhead experiment.
//!
//! The simulator executes one global event order; timing is layered on
//! top: each core owns a cycle clock that advances by per-operation
//! costs, and all bus transactions serialize on a single shared-bus
//! timeline (snoopy bus). HARD's overhead emerges from (1) metadata
//! broadcasts occupying the bus, (2) candidate-set checks on shared
//! accesses, and (3) lock-register updates on lock/unlock — the paper's
//! three overhead sources, with (1) dominant.

use crate::hierarchy::{EnsureResult, ServedBy};
use hard_types::Cycles;

/// Per-operation cycle costs (Table 1 defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// L1 hit latency.
    pub l1_hit: u64,
    /// L2 hit latency (includes the bus round trip).
    pub l2_hit: u64,
    /// Cache-to-cache transfer latency.
    pub c2c: u64,
    /// Memory latency.
    pub memory: u64,
    /// Bus occupancy of a data transaction (line transfer).
    pub bus_data_occupancy: u64,
    /// Bus occupancy of a control transaction (upgrade/invalidate).
    pub bus_control_occupancy: u64,
    /// Bus occupancy of an 18-bit metadata broadcast (§3.4): small,
    /// control-sized.
    pub meta_broadcast_occupancy: u64,
    /// Extra bus occupancy per data transaction for the 18 metadata
    /// bits piggybacked on every coherence transfer (§3.4) — the
    /// paper's dominant overhead source, scaling with the miss rate.
    pub meta_piggyback_occupancy: u64,
    /// Cycles to update the Lock/Counter Registers on lock or unlock
    /// (HARD only).
    pub lock_register_update: u64,
    /// Cycles to AND the candidate set with the Lock Register and test
    /// emptiness on a shared access (HARD only; overlaps the cache
    /// access in real hardware, so it is charged only on non-L1-hit
    /// paths where the metadata arrives late).
    pub candidate_check: u64,
    /// Cycles charged for a lock or unlock operation itself (the
    /// synchronization library work, identical with and without HARD).
    pub sync_op: u64,
    /// Cycles charged when a core switches to a different thread
    /// (threads may outnumber cores; the OS saves/restores the Lock
    /// and Counter Registers like any other per-thread register).
    pub context_switch: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l1_hit: 3,
            l2_hit: 10,
            c2c: 12,
            memory: 200,
            bus_data_occupancy: 4,
            bus_control_occupancy: 1,
            meta_broadcast_occupancy: 1,
            meta_piggyback_occupancy: 1,
            lock_register_update: 1,
            candidate_check: 1,
            sync_op: 40,
            context_switch: 200,
        }
    }
}

impl LatencyModel {
    /// Service latency of an access, from where it was served.
    #[must_use]
    pub fn service_latency(&self, r: &EnsureResult) -> u64 {
        match r.served_by {
            ServedBy::L1 => self.l1_hit,
            ServedBy::L1Upgrade => self.l1_hit, // upgrade overlaps the write
            ServedBy::Peer => self.c2c,
            ServedBy::L2 => self.l2_hit,
            ServedBy::Memory => self.memory,
        }
    }

    /// Bus occupancy of an access's coherence transactions.
    #[must_use]
    pub fn bus_occupancy(&self, r: &EnsureResult) -> u64 {
        u64::from(r.bus_data) * self.bus_data_occupancy
            + u64::from(r.bus_control) * self.bus_control_occupancy
    }
}

/// The shared snoopy bus as a single-server timeline.
///
/// # Examples
///
/// ```
/// use hard_cache::BusTimeline;
///
/// let mut bus = BusTimeline::new();
/// // Core at cycle 100 takes the bus for 4 cycles.
/// assert_eq!(bus.acquire(100, 4), 100);
/// // A second core at cycle 101 waits until 104.
/// assert_eq!(bus.acquire(101, 4), 104);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusTimeline {
    free_at: u64,
    busy_cycles: u64,
    transactions: u64,
}

impl BusTimeline {
    /// An idle bus at cycle zero.
    #[must_use]
    pub fn new() -> BusTimeline {
        BusTimeline::default()
    }

    /// Requests the bus at local time `now` for `occupancy` cycles;
    /// returns the grant time (≥ `now`). Zero-occupancy requests are
    /// free and return `now`.
    pub fn acquire(&mut self, now: u64, occupancy: u64) -> u64 {
        if occupancy == 0 {
            return now;
        }
        let start = now.max(self.free_at);
        self.free_at = start + occupancy;
        self.busy_cycles += occupancy;
        self.transactions += 1;
        start
    }

    /// Total cycles the bus spent occupied.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of granted transactions.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Bus utilization relative to `horizon` cycles.
    #[must_use]
    pub fn utilization(&self, horizon: Cycles) -> f64 {
        if horizon.0 == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / horizon.0 as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let m = LatencyModel::default();
        assert_eq!(m.l1_hit, 3);
        assert_eq!(m.l2_hit, 10);
        assert_eq!(m.memory, 200);
    }

    #[test]
    fn service_latency_by_level() {
        let m = LatencyModel::default();
        let mk = |served_by| EnsureResult {
            served_by,
            bus_data: 0,
            bus_control: 0,
            refetch_after_loss: false,
        };
        assert_eq!(m.service_latency(&mk(ServedBy::L1)), 3);
        assert_eq!(m.service_latency(&mk(ServedBy::L2)), 10);
        assert_eq!(m.service_latency(&mk(ServedBy::Memory)), 200);
        assert_eq!(m.service_latency(&mk(ServedBy::Peer)), 12);
    }

    #[test]
    fn bus_contention_delays_later_requesters() {
        let mut bus = BusTimeline::new();
        assert_eq!(bus.acquire(0, 4), 0);
        assert_eq!(bus.acquire(0, 4), 4);
        assert_eq!(bus.acquire(100, 4), 100, "idle bus grants immediately");
        assert_eq!(bus.busy_cycles(), 12);
        assert_eq!(bus.transactions(), 3);
    }

    #[test]
    fn zero_occupancy_is_free() {
        let mut bus = BusTimeline::new();
        assert_eq!(bus.acquire(5, 0), 5);
        assert_eq!(bus.transactions(), 0);
    }

    #[test]
    fn utilization_math() {
        let mut bus = BusTimeline::new();
        bus.acquire(0, 50);
        assert!((bus.utilization(Cycles(100)) - 0.5).abs() < 1e-12);
        assert_eq!(bus.utilization(Cycles(0)), 0.0);
    }
}
