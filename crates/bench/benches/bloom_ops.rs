//! Microbenchmarks of HARD's hardware primitives: the operations the
//! paper converts from expensive set manipulation into bit logic.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hard_bloom::{BloomShape, BloomVector, ExactSet, LockRegister};
use hard_types::LockId;
use std::hint::black_box;

fn locks(n: u64) -> Vec<LockId> {
    (0..n).map(|i| LockId(0x1000_0000 + i * 4)).collect()
}

fn bench_signature(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom/signature");
    for shape in [BloomShape::B16, BloomShape::B32] {
        g.bench_function(format!("{shape}"), |b| {
            b.iter(|| shape.signature(black_box(LockId(0xDEAD_BEE4))))
        });
    }
    g.finish();
}

fn bench_set_ops(c: &mut Criterion) {
    let shape = BloomShape::B16;
    let ls = locks(3);
    let a = BloomVector::from_locks(shape, &ls[..2]);
    let b2 = BloomVector::from_locks(shape, &ls[1..]);
    let ea = ExactSet::from_locks(&ls[..2]);
    let eb = ExactSet::from_locks(&ls[1..]);

    let mut g = c.benchmark_group("set/intersect");
    g.bench_function("bloom-16b", |b| {
        b.iter(|| black_box(a).intersect(&black_box(b2)))
    });
    g.bench_function("exact-btree", |b| {
        b.iter(|| black_box(&ea).intersect(black_box(&eb)))
    });
    g.finish();

    let mut g = c.benchmark_group("set/emptiness");
    g.bench_function("bloom-16b", |b| b.iter(|| black_box(a).is_empty_set()));
    g.bench_function("exact-btree", |b| b.iter(|| black_box(&ea).is_empty_set()));
    g.finish();
}

fn bench_lock_register(c: &mut Criterion) {
    let l = LockId(0x40);
    c.bench_function("register/acquire-release", |b| {
        b.iter_batched(
            || LockRegister::new(BloomShape::B16),
            |mut r| {
                r.acquire(black_box(l));
                r.release(black_box(l));
                r
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_signature, bench_set_ops, bench_lock_register);
criterion_main!(benches);
