/root/repo/target/debug/deps/hard_hb-1405c73f23741833.d: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libhard_hb-1405c73f23741833.rmeta: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs Cargo.toml

crates/hb/src/lib.rs:
crates/hb/src/clock.rs:
crates/hb/src/ideal.rs:
crates/hb/src/meta.rs:
crates/hb/src/scalar.rs:
crates/hb/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
