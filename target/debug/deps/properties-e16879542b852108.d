/root/repo/target/debug/deps/properties-e16879542b852108.d: crates/trace/tests/properties.rs

/root/repo/target/debug/deps/properties-e16879542b852108: crates/trace/tests/properties.rs

crates/trace/tests/properties.rs:
