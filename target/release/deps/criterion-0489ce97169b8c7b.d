/root/repo/target/release/deps/criterion-0489ce97169b8c7b.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0489ce97169b8c7b.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0489ce97169b8c7b.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
