//! The per-core Lock Register and Counter Register (paper §3.3).
//!
//! Each processor stores the running thread's lock set in a bloom-filter
//! **Lock Register**. Adding a lock is an OR, but *removing* one cannot
//! simply clear its signature bits: another held lock may hash to the
//! same bit. HARD therefore adds a **Counter Register**: one 2-bit
//! saturating counter per vector bit. Acquire increments the signature
//! bits' counters (saturating); release decrements them and clears a
//! vector bit only when its counter reaches zero.

use crate::vector::{BloomShape, BloomVector};
use hard_types::LockId;
use std::fmt;

/// Maximum value of a 2-bit saturating counter.
pub const COUNTER_MAX: u8 = 3;

/// The per-bit 2-bit saturating counters backing a [`LockRegister`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CounterRegister {
    counters: Vec<u8>,
}

impl CounterRegister {
    /// All-zero counters for a vector of `shape`.
    #[must_use]
    pub fn new(shape: BloomShape) -> CounterRegister {
        CounterRegister {
            counters: vec![0; shape.total_bits() as usize],
        }
    }

    /// Value of counter `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range for the register's shape.
    #[must_use]
    pub fn get(&self, bit: u32) -> u8 {
        self.counters[bit as usize]
    }

    /// Increments counter `bit`, saturating at [`COUNTER_MAX`].
    /// Returns the new value.
    pub fn increment(&mut self, bit: u32) -> u8 {
        let c = &mut self.counters[bit as usize];
        if *c < COUNTER_MAX {
            *c += 1;
        }
        *c
    }

    /// Decrements counter `bit` (floor zero). Returns the new value.
    pub fn decrement(&mut self, bit: u32) -> u8 {
        let c = &mut self.counters[bit as usize];
        if *c > 0 {
            *c -= 1;
        }
        *c
    }

    /// True if every counter is zero (no locks held, absent saturation
    /// artifacts).
    #[must_use]
    pub fn all_zero(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
    }
}

/// A core's thread-lock-set register pair (§3.3).
///
/// # Examples
///
/// ```
/// use hard_bloom::{BloomShape, LockRegister};
/// use hard_types::LockId;
///
/// let mut reg = LockRegister::new(BloomShape::B16);
/// reg.acquire(LockId(0x40));
/// assert!(reg.vector().contains(LockId(0x40)));
/// reg.release(LockId(0x40));
/// assert!(reg.is_empty());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LockRegister {
    vector: BloomVector,
    counters: CounterRegister,
    /// Number of acquires minus releases; used for statistics and
    /// consistency checks, not by the hardware algorithm.
    depth: u32,
}

impl LockRegister {
    /// An empty lock register (no locks held).
    #[must_use]
    pub fn new(shape: BloomShape) -> LockRegister {
        LockRegister {
            vector: BloomVector::empty(shape),
            counters: CounterRegister::new(shape),
            depth: 0,
        }
    }

    /// The current bloom vector (what gets ANDed with candidate sets).
    #[must_use]
    pub fn vector(&self) -> BloomVector {
        self.vector
    }

    /// The backing counters.
    #[must_use]
    pub fn counters(&self) -> &CounterRegister {
        &self.counters
    }

    /// Current nesting depth (held-lock count).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// True when the register holds no locks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vector.bits() == 0
    }

    /// Acquire: OR the lock's signature into the vector and bump the
    /// signature bits' counters.
    pub fn acquire(&mut self, lock: LockId) {
        let sig = self.vector.shape().signature(lock);
        for bit in 0..self.vector.shape().total_bits() {
            if sig & (1u64 << bit) != 0 {
                self.counters.increment(bit);
            }
        }
        self.vector = self
            .vector
            .union(&BloomVector::from_bits(self.vector.shape(), sig));
        self.depth += 1;
    }

    /// Release: decrement the signature bits' counters and clear the
    /// vector bits whose counter reached zero.
    ///
    /// Releasing a lock that was never acquired is a program bug in the
    /// monitored application; the hardware tolerates it (counters floor
    /// at zero) exactly like the real design would.
    pub fn release(&mut self, lock: LockId) {
        let shape = self.vector.shape();
        let sig = shape.signature(lock);
        let mut bits = self.vector.bits();
        for bit in 0..shape.total_bits() {
            if sig & (1u64 << bit) != 0 && self.counters.decrement(bit) == 0 {
                bits &= !(1u64 << bit);
            }
        }
        self.vector = BloomVector::from_bits(shape, bits);
        self.depth = self.depth.saturating_sub(1);
    }

    /// Clears everything (used at thread switch / program start).
    pub fn clear(&mut self) {
        let shape = self.vector.shape();
        *self = LockRegister::new(shape);
    }

    /// Flips one vector bit — the fault-injection model of a particle
    /// strike on the Lock Register.
    ///
    /// The counters are left alone: a real strike hits one storage
    /// cell, and the register's parity bit (modelled by the machine's
    /// corruption bookkeeping) flags the mismatch on the next read.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the register's vector width.
    pub fn flip_vector_bit(&mut self, bit: u32) {
        let mut v = self.vector;
        v.flip_bit(bit);
        self.vector = v;
    }

    /// Rebuilds the register from the OS's software lock shadow — the
    /// recovery path after a parity check catches register corruption.
    /// The shadow lists the thread's currently held locks in
    /// acquisition order (with multiplicity for recursive acquires).
    pub fn rebuild_from(&mut self, held: &[LockId]) {
        self.clear();
        for &l in held {
            self.acquire(l);
        }
    }
}

impl fmt::Debug for LockRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LockRegister(depth={}, vector={:?})",
            self.depth, self.vector
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip() {
        let mut r = LockRegister::new(BloomShape::B16);
        let l = LockId(0x80);
        r.acquire(l);
        assert!(!r.is_empty());
        assert!(r.vector().contains(l));
        assert_eq!(r.depth(), 1);
        r.release(l);
        assert!(r.is_empty());
        assert!(r.counters().all_zero());
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn colliding_locks_survive_partial_release() {
        // Two distinct locks with identical signatures (differ only in
        // address bits outside 2..9): releasing one must keep the
        // other's membership intact thanks to the counters.
        let a = LockId(0x0000_0040);
        let b = LockId(0x1000_0040);
        let shape = BloomShape::B16;
        assert_eq!(shape.signature(a), shape.signature(b));
        let mut r = LockRegister::new(shape);
        r.acquire(a);
        r.acquire(b);
        r.release(a);
        assert!(r.vector().contains(b), "b must survive releasing a");
        r.release(b);
        assert!(r.is_empty());
    }

    #[test]
    fn partially_overlapping_locks() {
        // Locks sharing some but not all bits: releasing one clears only
        // the bits not shared with the other.
        let shape = BloomShape::B16;
        let mk = |p0: u64, p1: u64, p2: u64, p3: u64| {
            LockId((p0 | (p1 << 2) | (p2 << 4) | (p3 << 6)) << 2)
        };
        let a = mk(0, 0, 0, 0);
        let b = mk(0, 1, 2, 3); // shares part-0 bit with a
        let mut r = LockRegister::new(shape);
        r.acquire(a);
        r.acquire(b);
        r.release(a);
        assert!(r.vector().contains(b));
        assert!(
            !r.vector().contains(a) || shape.signature(a) & r.vector().bits() != shape.signature(a)
        );
    }

    #[test]
    fn counter_saturation_is_sticky() {
        // Acquiring the same lock 5 times saturates its counters at 3;
        // releasing 5 times floors at 0. After saturation, 3 releases
        // clear the bits even though 5 acquires happened — exactly the
        // hardware's (rare) imprecision.
        let shape = BloomShape::B16;
        let l = LockId(0x100);
        let mut r = LockRegister::new(shape);
        for _ in 0..5 {
            r.acquire(l);
        }
        for _ in 0..3 {
            r.release(l);
        }
        assert!(
            !r.vector().contains(l),
            "saturated counters under-count: bits clear after 3 releases"
        );
    }

    #[test]
    fn release_unheld_lock_is_tolerated() {
        let mut r = LockRegister::new(BloomShape::B16);
        r.release(LockId(0x4)); // no panic; counters floor at zero
        assert!(r.is_empty());
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn clear_resets_all_state() {
        let mut r = LockRegister::new(BloomShape::B32);
        r.acquire(LockId(0x40));
        r.acquire(LockId(0x80));
        r.clear();
        assert!(r.is_empty());
        assert!(r.counters().all_zero());
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn flip_and_rebuild_roundtrip() {
        let held = [LockId(0x40), LockId(0x80), LockId(0x40)];
        let mut r = LockRegister::new(BloomShape::B16);
        for &l in &held {
            r.acquire(l);
        }
        let pristine = r.clone();
        r.flip_vector_bit(3);
        assert_ne!(r.vector(), pristine.vector(), "the strike lands");
        r.rebuild_from(&held);
        assert_eq!(r, pristine, "shadow rebuild restores the exact state");
    }

    #[test]
    fn counter_register_bounds() {
        let mut c = CounterRegister::new(BloomShape::B16);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.increment(0), 1);
        assert_eq!(c.increment(0), 2);
        assert_eq!(c.increment(0), 3);
        assert_eq!(c.increment(0), 3, "saturates at 3");
        assert_eq!(c.decrement(0), 2);
        assert_eq!(c.decrement(0), 1);
        assert_eq!(c.decrement(0), 0);
        assert_eq!(c.decrement(0), 0, "floors at 0");
    }

    #[test]
    fn nested_distinct_locks() {
        let shape = BloomShape::B16;
        let locks: Vec<LockId> = (0..4).map(|i| LockId(0x40 * (i + 1))).collect();
        let mut r = LockRegister::new(shape);
        for &l in &locks {
            r.acquire(l);
        }
        assert_eq!(r.depth(), 4);
        for &l in &locks {
            assert!(r.vector().contains(l));
        }
        // LIFO release order, as lock-based code typically does.
        for &l in locks.iter().rev() {
            r.release(l);
        }
        assert!(r.is_empty());
        assert!(r.counters().all_zero());
    }
}
