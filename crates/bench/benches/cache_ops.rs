//! Hierarchy throughput: hit/miss/coherence paths of the simulated
//! memory system.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hard_cache::policy::NullFactory;
use hard_cache::{Hierarchy, HierarchyConfig};
use hard_obs::{MemoryRecorder, NoopRecorder, ObsHandle};
use hard_types::{AccessKind, Addr, CoreId};
use std::hint::black_box;
use std::sync::Arc;

fn bench_l1_hit(c: &mut Criterion) {
    let mut h = Hierarchy::new(HierarchyConfig::default(), NullFactory).unwrap();
    h.ensure(CoreId(0), Addr(0x1000), AccessKind::Read).unwrap();
    c.bench_function("cache/l1-hit", |b| {
        b.iter(|| {
            h.ensure(
                black_box(CoreId(0)),
                black_box(Addr(0x1000)),
                AccessKind::Read,
            )
            .unwrap()
        })
    });
}

fn bench_l2_miss_stream(c: &mut Criterion) {
    c.bench_function("cache/cold-stream-1k-lines", |b| {
        b.iter_batched(
            || Hierarchy::new(HierarchyConfig::default(), NullFactory).unwrap(),
            |mut h| {
                for i in 0..1024u64 {
                    h.ensure(CoreId(0), Addr(i * 32), AccessKind::Read).unwrap();
                }
                h
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_coherence_pingpong(c: &mut Criterion) {
    let mut h = Hierarchy::new(HierarchyConfig::default(), NullFactory).unwrap();
    c.bench_function("cache/write-pingpong", |b| {
        b.iter(|| {
            h.ensure(CoreId(0), Addr(0x2000), AccessKind::Write)
                .unwrap();
            h.ensure(CoreId(1), Addr(0x2000), AccessKind::Write)
                .unwrap();
        })
    });
}

/// The observability overhead gate: the cold-stream workload (fills,
/// L2 displacements, metadata-loss accounting — every instrumented
/// hierarchy path) with no recorder, the no-op recorder, and the real
/// counting recorder. Target: `noop` within 3% of `off`; `counting`
/// shows the true cost of enabling metrics.
fn bench_recorder_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache/obs-cold-stream-1k-lines");
    let run = |mut h: Hierarchy<NullFactory>| {
        for i in 0..1024u64 {
            h.ensure(CoreId(0), Addr(i * 32), AccessKind::Read).unwrap();
        }
        h
    };
    g.bench_function("recorder-off", |b| {
        b.iter_batched(
            || Hierarchy::new(HierarchyConfig::default(), NullFactory).unwrap(),
            &run,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("recorder-noop", |b| {
        b.iter_batched(
            || {
                let mut h = Hierarchy::new(HierarchyConfig::default(), NullFactory).unwrap();
                h.set_obs(ObsHandle::new(Arc::new(NoopRecorder)));
                h
            },
            &run,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("recorder-counting", |b| {
        b.iter_batched(
            || {
                let mut h = Hierarchy::new(HierarchyConfig::default(), NullFactory).unwrap();
                h.set_obs(ObsHandle::new(Arc::new(MemoryRecorder::new())));
                h
            },
            &run,
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_l1_hit,
    bench_l2_miss_stream,
    bench_coherence_pingpong,
    bench_recorder_overhead
);
criterion_main!(benches);
