/root/repo/target/debug/deps/radix-5f3a93a04a218180.d: tests/radix.rs Cargo.toml

/root/repo/target/debug/deps/libradix-5f3a93a04a218180.rmeta: tests/radix.rs Cargo.toml

tests/radix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
