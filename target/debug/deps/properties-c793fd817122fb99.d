/root/repo/target/debug/deps/properties-c793fd817122fb99.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c793fd817122fb99.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
