//! Fork/join synchronization and HARD's §3.1 pruning hooks.
//!
//! The paper notes that lockset generates spurious reports for
//! fork/join programs, and that the ownership model (for fork) and
//! dummy locks (for join) "can be incorporated into HARD as well" —
//! this reproduction incorporates them. The demo runs a fork/join
//! pipeline (parent initializes → child transforms → parent consumes
//! after join) with no locks at all, and shows that HARD stays silent
//! while a naive lockset (§3.1 handling disabled by construction:
//! fork/join treated as plain compute) alarms on every hand-off.
//!
//! Run with: `cargo run --example fork_join`

use hard_repro::core::{HardConfig, HardMachine};
use hard_repro::lockset::{IdealLockset, IdealLocksetConfig};
use hard_repro::trace::{
    run_detector, Op, ProgramBuilder, SchedConfig, Scheduler, Trace, TraceEvent,
};
use hard_repro::types::{Addr, SiteId, ThreadId};

fn pipeline() -> hard_repro::trace::Program {
    let input = Addr(0x1000);
    let output = Addr(0x2000);
    let mut b = ProgramBuilder::new(3);
    b.thread(0)
        .write(input, 4, SiteId(1)) // initialize the work item
        .fork(ThreadId(1), SiteId(2))
        .fork(ThreadId(2), SiteId(3))
        .join(ThreadId(1), SiteId(4))
        .join(ThreadId(2), SiteId(5))
        .read(output, 4, SiteId(6)) // consume the result
        .write(output, 4, SiteId(7));
    b.thread(1)
        .read(input, 4, SiteId(8)) // worker 1 reads the input...
        .compute(100);
    b.thread(2)
        .read(input, 4, SiteId(9)) // ...worker 2 too, and publishes
        .write(output, 4, SiteId(10));
    b.build()
}

/// Strips fork/join information, as a detector without §3.1 handling
/// would see the execution (the spawning becomes invisible compute).
fn without_fork_join(trace: &Trace) -> Trace {
    Trace {
        events: trace
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Op { thread, op } => {
                    let op = match *op {
                        Op::Fork { .. } | Op::Join { .. } => Op::Compute { cycles: 1 },
                        other => other,
                    };
                    TraceEvent::Op {
                        thread: *thread,
                        op,
                    }
                }
                other => *other,
            })
            .collect(),
        num_threads: trace.num_threads,
    }
}

fn main() {
    let p = pipeline();
    let mut silent = 0;
    let mut naive_alarms = 0;
    let seeds = 32;
    for seed in 0..seeds {
        let trace = Scheduler::new(SchedConfig {
            seed,
            max_quantum: 4,
        })
        .run(&p);

        let mut hard = HardMachine::new(HardConfig::default());
        if run_detector(&mut hard, &trace).is_empty() {
            silent += 1;
        }

        let naive_trace = without_fork_join(&trace);
        let mut naive = IdealLockset::new(IdealLocksetConfig::default());
        if !run_detector(&mut naive, &naive_trace).is_empty() {
            naive_alarms += 1;
        }
    }
    println!("fork/join pipeline, {seeds} interleavings:");
    println!("  HARD with §3.1 fork/join handling: silent in {silent}/{seeds}");
    println!("  lockset without the handling:      false alarms in {naive_alarms}/{seeds}");
    assert_eq!(silent, seeds, "the race-free pipeline must never alarm");
    assert!(naive_alarms > 0, "the naive detector must show the problem");
    println!("\nownership transfer + dummy locks removed the fork/join false positives.");
}
