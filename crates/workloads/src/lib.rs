//! Synthetic SPLASH-2-like workloads and dynamic race injection.
//!
//! The paper evaluates HARD on six lock-based SPLASH-2 applications
//! (cholesky, barnes, fmm, ocean, water-nsquared, raytrace) with
//! randomly injected races. The originals are C binaries run under
//! SESC; what determines lockset/happens-before behaviour is not their
//! arithmetic but their *synchronization and sharing signature*: which
//! data is protected by which locks, how threads interleave on it, how
//! barriers phase the computation, how variables share cache lines, and
//! how much unrelated data streams through the caches between accesses.
//!
//! Each generator in [`apps`] reproduces one application's signature
//! with the paper-relevant ingredients:
//!
//! * **lock-protected shared updates** — the injectable critical
//!   sections the race injector targets;
//! * **a hot global lock** (task queues, global accumulators) whose
//!   release→acquire chains transitively order distant accesses — the
//!   mechanism that makes happens-before miss races that lockset
//!   catches;
//! * **per-thread streaming** over private data — cache pressure that
//!   displaces metadata (HARD's missed races, Tables 4/5);
//! * **false-sharing clusters** — independently synchronized variables
//!   co-located in one line at controlled spacing (Table 3's
//!   granularity sensitivity);
//! * **lock rotation, flag hand-offs and benign races** — the residual
//!   false-alarm sources of §5.1.
//!
//! [`inject`] implements the paper's §4 bug injection: omit one
//! randomly selected *dynamic* lock/unlock pair and record the accesses
//! it protected as the ground-truth race targets.

pub mod apps;
pub mod common;
pub mod inject;
pub mod layout;

/// Version of the workload generators, part of every trace-corpus
/// cache key. Bump this whenever a change alters the events any
/// generator (or the race injector) produces for a given
/// configuration — stale corpus entries then miss instead of serving
/// traces the current code would no longer generate.
pub const GENERATOR_VERSION: u32 = 1;

pub use apps::App;
pub use common::{Scale, WorkloadConfig};
pub use inject::{
    enumerate_critical_sections, inject_race, inject_wrong_lock, CriticalSection, Injection,
};
pub use layout::Layout;
