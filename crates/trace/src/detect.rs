//! Detector-facing abstractions shared by every race detector in the
//! workspace (HARD, ideal lockset, hardware and ideal happens-before).

use crate::event::{Trace, TraceEvent};
use crate::op::Op;
use crate::packed_event::{PackedTrace, BATCH_EVENTS};
use hard_obs::{CounterId, ObsHandle};
use hard_types::{AccessKind, Addr, SiteId, ThreadId};
use std::fmt;

/// One reported (potential) data race.
///
/// The paper maps dynamic reports back to source code and counts
/// distinct static locations; [`RaceReport::site`] carries the static
/// site of the access that triggered the report so the harness can do
/// the same.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RaceReport {
    /// Address of the access that triggered the report.
    pub addr: Addr,
    /// Size of the triggering access in bytes.
    pub size: u8,
    /// Static site of the triggering access.
    pub site: SiteId,
    /// The accessing thread.
    pub thread: ThreadId,
    /// Whether the triggering access was a read or a write.
    pub kind: AccessKind,
    /// Index of the triggering event in the global trace.
    pub event_index: usize,
}

impl RaceReport {
    /// True if the triggering access overlaps the byte range
    /// `[lo, hi)` — used to match reports against an injected race's
    /// target data.
    #[must_use]
    pub fn overlaps(&self, lo: Addr, hi: Addr) -> bool {
        let a0 = self.addr.0;
        let a1 = a0 + u64::from(self.size);
        a0 < hi.0 && lo.0 < a1
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race: {} {} {}+{} at {} (event {})",
            self.thread, self.kind, self.addr, self.size, self.site, self.event_index
        )
    }
}

/// A dynamic race detector consuming a global event stream.
///
/// All detectors in the workspace observe the *same* trace; this trait
/// is the seam that lets the harness run HARD, happens-before and the
/// ideal variants over identical executions.
pub trait Detector {
    /// Short human-readable detector name for reports.
    fn name(&self) -> &str;

    /// Observes event number `index` of the trace.
    fn on_event(&mut self, index: usize, event: &TraceEvent);

    /// Observes a contiguous run of events whose first global index is
    /// `index`.
    ///
    /// The default forwards to [`Detector::on_event`] one event at a
    /// time; detectors with a vectorized batch kernel override it. An
    /// override must be observably bit-identical to the default loop —
    /// same reports, same statistics, same metadata — batching is a
    /// throughput lever, never a semantic one.
    fn on_batch(&mut self, index: usize, events: &[TraceEvent]) {
        for (i, e) in events.iter().enumerate() {
            self.on_event(index + i, e);
        }
    }

    /// The reports accumulated so far.
    fn reports(&self) -> &[RaceReport];
}

/// Drives `detector` over every event of `trace`, returning the final
/// report list.
///
/// # Examples
///
/// ```
/// use hard_trace::{run_detector, Detector, RaceReport, Trace, TraceEvent};
///
/// /// A detector that counts events and reports nothing.
/// struct Null(usize);
/// impl Detector for Null {
///     fn name(&self) -> &str { "null" }
///     fn on_event(&mut self, _i: usize, _e: &TraceEvent) { self.0 += 1 }
///     fn reports(&self) -> &[RaceReport] { &[] }
/// }
///
/// let trace = Trace { events: vec![], num_threads: 1 };
/// let mut d = Null(0);
/// assert!(run_detector(&mut d, &trace).is_empty());
/// ```
pub fn run_detector<D: Detector + ?Sized>(detector: &mut D, trace: &Trace) -> Vec<RaceReport> {
    for (i, e) in trace.events.iter().enumerate() {
        detector.on_event(i, e);
    }
    detector.reports().to_vec()
}

/// [`run_detector`] over a packed trace: events are decoded one at a
/// time on the stack as the buffer is walked — the `Vec<TraceEvent>`
/// of wide enum records is never materialized.
pub fn run_detector_streamed<D: Detector + ?Sized>(
    detector: &mut D,
    trace: &PackedTrace,
) -> Vec<RaceReport> {
    for (i, e) in trace.iter().enumerate() {
        detector.on_event(i, &e);
    }
    detector.reports().to_vec()
}

/// [`run_detector`] through the batch kernel: events are handed to
/// [`Detector::on_batch`] in [`BATCH_EVENTS`]-sized runs. Produces the
/// same reports as `run_detector` for any conforming detector.
pub fn run_detector_batched<D: Detector + ?Sized>(
    detector: &mut D,
    trace: &Trace,
) -> Vec<RaceReport> {
    let mut index = 0;
    for chunk in trace.events.chunks(BATCH_EVENTS) {
        detector.on_batch(index, chunk);
        index += chunk.len();
    }
    detector.reports().to_vec()
}

/// [`run_detector_streamed`] through the batch kernel: records are
/// decoded [`BATCH_EVENTS`] at a time into one recycled buffer
/// ([`PackedTrace::decode_batch`]) and dispatched via
/// [`Detector::on_batch`].
pub fn run_detector_streamed_batched<D: Detector + ?Sized>(
    detector: &mut D,
    trace: &PackedTrace,
) -> Vec<RaceReport> {
    let mut buf = Vec::with_capacity(BATCH_EVENTS);
    let mut index = 0;
    while trace.decode_batch(index, &mut buf) > 0 {
        detector.on_batch(index, &buf);
        index += buf.len();
    }
    detector.reports().to_vec()
}

/// Classifies one trace event into the observability layer's
/// per-op-class counters. One call per dispatched event; does nothing
/// on an off handle.
pub fn observe_event(obs: &ObsHandle, event: &TraceEvent) {
    obs.counter(CounterId::TraceEvents, 1);
    let class = match event {
        TraceEvent::Op { op, .. } => match op {
            Op::Read { .. } => CounterId::OpsRead,
            Op::Write { .. } => CounterId::OpsWrite,
            Op::Compute { .. } => CounterId::OpsCompute,
            Op::Lock { .. }
            | Op::Unlock { .. }
            | Op::Fork { .. }
            | Op::Join { .. }
            | Op::Barrier { .. } => CounterId::OpsSync,
        },
        TraceEvent::BarrierComplete { .. } => CounterId::OpsSync,
    };
    obs.counter(class, 1);
}

/// [`run_detector`] with trace-level observability: each event is
/// classified into `obs` before dispatch. With an off handle this is
/// exactly `run_detector`.
pub fn run_detector_observed<D: Detector + ?Sized>(
    detector: &mut D,
    trace: &Trace,
    obs: &ObsHandle,
) -> Vec<RaceReport> {
    if !obs.is_on() {
        return run_detector(detector, trace);
    }
    for (i, e) in trace.events.iter().enumerate() {
        observe_event(obs, e);
        detector.on_event(i, e);
    }
    detector.reports().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::sched::{SchedConfig, Scheduler};

    /// Records every (index, event) pair it sees.
    #[derive(Default)]
    struct Recorder(Vec<(usize, TraceEvent)>);

    impl Detector for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn on_event(&mut self, index: usize, event: &TraceEvent) {
            self.0.push((index, *event));
        }
        fn reports(&self) -> &[RaceReport] {
            &[]
        }
    }

    fn sample_trace(events: usize) -> Trace {
        let mut b = ProgramBuilder::new(2);
        for i in 0..events {
            let site = SiteId(i as u32);
            b.thread(i as u32 % 2)
                .write(Addr(0x1000 + (i as u64 % 8) * 4), 4, site);
        }
        Scheduler::new(SchedConfig::default()).run(&b.build())
    }

    #[test]
    fn batched_runs_see_the_same_indexed_events() {
        // Cross the batch boundary: > BATCH_EVENTS events.
        let trace = sample_trace(BATCH_EVENTS + 37);
        let packed = PackedTrace::from_trace(&trace).unwrap();
        let mut scalar = Recorder::default();
        run_detector(&mut scalar, &trace);
        let mut batched = Recorder::default();
        run_detector_batched(&mut batched, &trace);
        assert_eq!(scalar.0, batched.0);
        let mut streamed = Recorder::default();
        run_detector_streamed_batched(&mut streamed, &packed);
        assert_eq!(scalar.0, streamed.0);
    }

    #[test]
    fn decode_batch_windows_tile_iter() {
        let trace = sample_trace(2 * BATCH_EVENTS + 5);
        let packed = PackedTrace::from_trace(&trace).unwrap();
        let all: Vec<TraceEvent> = packed.iter().collect();
        let mut buf = Vec::new();
        let mut start = 0;
        while packed.decode_batch(start, &mut buf) > 0 {
            assert!(buf.len() <= BATCH_EVENTS);
            assert_eq!(buf[..], all[start..start + buf.len()]);
            start += buf.len();
        }
        assert_eq!(start, all.len(), "windows must tile the whole trace");
        assert_eq!(packed.decode_batch(all.len() + 3, &mut buf), 0);
    }

    #[test]
    fn overlap_logic() {
        let r = RaceReport {
            addr: Addr(100),
            size: 4,
            site: SiteId(1),
            thread: ThreadId(0),
            kind: AccessKind::Write,
            event_index: 7,
        };
        assert!(r.overlaps(Addr(100), Addr(104)));
        assert!(r.overlaps(Addr(103), Addr(200)));
        assert!(r.overlaps(Addr(0), Addr(101)));
        assert!(!r.overlaps(Addr(104), Addr(200)));
        assert!(!r.overlaps(Addr(0), Addr(100)));
    }

    #[test]
    fn display_mentions_site_and_event() {
        let r = RaceReport {
            addr: Addr(0x20),
            size: 4,
            site: SiteId(9),
            thread: ThreadId(1),
            kind: AccessKind::Read,
            event_index: 3,
        };
        let s = format!("{r}");
        assert!(s.contains("site9") && s.contains("event 3"), "{s}");
    }
}
