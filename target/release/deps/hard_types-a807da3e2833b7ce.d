/root/repo/target/release/deps/hard_types-a807da3e2833b7ce.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/fault.rs crates/types/src/ids.rs crates/types/src/rng.rs

/root/repo/target/release/deps/libhard_types-a807da3e2833b7ce.rlib: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/fault.rs crates/types/src/ids.rs crates/types/src/rng.rs

/root/repo/target/release/deps/libhard_types-a807da3e2833b7ce.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/fault.rs crates/types/src/ids.rs crates/types/src/rng.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/fault.rs:
crates/types/src/ids.rs:
crates/types/src/rng.rs:
