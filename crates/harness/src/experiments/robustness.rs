//! Methodological robustness: the headline comparison under different
//! scheduler quanta.
//!
//! The paper's results come from whatever interleavings SESC produced;
//! ours from a seeded quantum scheduler. This experiment re-runs the
//! aggregate Table 2 comparison across quantum bounds to show the
//! HARD-vs-happens-before gap is a property of the algorithms, not of
//! one scheduling regime.

use crate::campaign::{injected_trace, probes, score, CampaignConfig};
use crate::detectors::{execute, DetectorKind};
use crate::table::TextTable;
use hard_workloads::App;

/// Aggregate detection totals at one quantum bound.
#[derive(Clone, Copy, Debug)]
pub struct RobustnessRow {
    /// The scheduler's `max_quantum`.
    pub max_quantum: u32,
    /// Total bugs detected by HARD across all apps and runs.
    pub hard: usize,
    /// Total detected by the ideal lockset.
    pub ideal: usize,
    /// Total detected by hardware happens-before.
    pub hb: usize,
    /// Total injected runs.
    pub total: usize,
}

/// The sweep result.
#[derive(Clone, Debug)]
pub struct Robustness {
    /// One row per quantum bound.
    pub rows: Vec<RobustnessRow>,
}

/// The quantum bounds swept.
pub const QUANTA: [u32; 4] = [1, 4, 16, 64];

/// Runs the sweep.
#[must_use]
pub fn run(cfg: &CampaignConfig) -> Robustness {
    let mut rows = Vec::new();
    for &q in &QUANTA {
        let qcfg = CampaignConfig {
            max_quantum: q,
            ..*cfg
        };
        let mut row = RobustnessRow {
            max_quantum: q,
            hard: 0,
            ideal: 0,
            hb: 0,
            total: 0,
        };
        for &app in &App::all() {
            for run_idx in 0..qcfg.runs {
                let (trace, injection) = injected_trace(app, &qcfg, run_idx);
                let pr = probes(&injection);
                row.total += 1;
                if score(
                    &execute(&DetectorKind::hard_default(), &trace, &pr),
                    &injection,
                )
                .is_detected()
                {
                    row.hard += 1;
                }
                if score(
                    &execute(&DetectorKind::lockset_ideal(), &trace, &pr),
                    &injection,
                )
                .is_detected()
                {
                    row.ideal += 1;
                }
                if score(
                    &execute(&DetectorKind::hb_default(), &trace, &pr),
                    &injection,
                )
                .is_detected()
                {
                    row.hb += 1;
                }
            }
        }
        rows.push(row);
    }
    Robustness { rows }
}

impl Robustness {
    /// Renders the sweep.
    #[must_use]
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "max quantum",
            "HARD",
            "lockset-ideal",
            "happens-before",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.max_quantum.to_string(),
                format!("{}/{}", r.hard, r.total),
                format!("{}/{}", r.ideal, r.total),
                format!("{}/{}", r.hb, r.total),
            ]);
        }
        t
    }
}

impl std::fmt::Display for Robustness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockset_advantage_holds_across_schedulers() {
        let cfg = CampaignConfig::reduced(0.08, 2);
        let r = run(&cfg);
        assert_eq!(r.rows.len(), QUANTA.len());
        for row in &r.rows {
            assert!(
                row.hard >= row.hb,
                "quantum {}: HARD {} vs HB {}",
                row.max_quantum,
                row.hard,
                row.hb
            );
            assert!(row.ideal >= row.hard, "quantum {}", row.max_quantum);
        }
    }
}
