//! Ablation detector: bloom-filter candidate sets with *unbounded*
//! metadata storage.
//!
//! HARD makes three approximations to the ideal lockset algorithm
//! (paper §4): (1) line granularity, (2) bloom-filter sets, (3)
//! metadata only for cached data. This detector applies (1) and (2) but
//! not (3); comparing it with [`crate::ideal::IdealLockset`] and the
//! full HARD machine isolates how much detection capability each
//! approximation costs. The paper's claim — verified in the Table 6
//! experiment — is that the 16-bit bloom vector alone misses nothing.

use crate::meta::{dummy_lock, fork_transfer, lockset_access, GranuleMeta};
use hard_bloom::{BloomShape, BloomVector, LockRegister};
use hard_trace::{Detector, Op, RaceReport, TraceEvent};
use hard_types::{AccessKind, Addr, FastHashSet, Granularity, SiteId, ThreadId};
use std::collections::BTreeMap;

/// Configuration of the bloom-table detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BloomLocksetConfig {
    /// Bloom vector layout (16-bit by default).
    pub shape: BloomShape,
    /// Monitoring granularity (32-byte lines by default, like HARD).
    pub granularity: Granularity,
    /// Apply barrier pruning (§3.5).
    pub barrier_pruning: bool,
}

impl Default for BloomLocksetConfig {
    fn default() -> Self {
        BloomLocksetConfig {
            shape: BloomShape::B16,
            granularity: Granularity::new(32),
            barrier_pruning: true,
        }
    }
}

/// Lockset detector with bloom sets and unbounded storage. See the
/// [module docs](self).
#[derive(Debug)]
pub struct BloomLockset {
    cfg: BloomLocksetConfig,
    granules: BTreeMap<Addr, GranuleMeta<BloomVector>>,
    registers: Vec<LockRegister>,
    reports: Vec<RaceReport>,
    reported: FastHashSet<(Addr, SiteId)>,
}

impl BloomLockset {
    /// A fresh detector.
    #[must_use]
    pub fn new(cfg: BloomLocksetConfig) -> BloomLockset {
        BloomLockset {
            cfg,
            granules: BTreeMap::new(),
            registers: Vec::new(),
            reports: Vec::new(),
            reported: FastHashSet::default(),
        }
    }

    /// The detector's configuration.
    #[must_use]
    pub fn config(&self) -> BloomLocksetConfig {
        self.cfg
    }

    fn register_mut(&mut self, t: ThreadId) -> &mut LockRegister {
        while self.registers.len() <= t.index() {
            self.registers.push(LockRegister::new(self.cfg.shape));
        }
        &mut self.registers[t.index()]
    }

    fn on_access(
        &mut self,
        index: usize,
        thread: ThreadId,
        addr: Addr,
        size: u8,
        kind: AccessKind,
        site: SiteId,
    ) {
        let held = self.register_mut(thread).vector();
        let gran = self.cfg.granularity;
        let shape = self.cfg.shape;
        for g in gran.granules_in(addr, u64::from(size)) {
            let meta = self
                .granules
                .entry(g)
                .or_insert_with(|| GranuleMeta::virgin(shape));
            let outcome = lockset_access(meta, thread, kind, &held);
            if outcome.race && self.reported.insert((g, site)) {
                self.reports.push(RaceReport {
                    addr,
                    size,
                    site,
                    thread,
                    kind,
                    event_index: index,
                });
            }
        }
    }
}

impl Detector for BloomLockset {
    fn name(&self) -> &str {
        "lockset-bloom-unbounded"
    }

    fn on_event(&mut self, index: usize, event: &TraceEvent) {
        match *event {
            TraceEvent::Op { thread, op } => match op {
                Op::Read { addr, size, site } => {
                    self.on_access(index, thread, addr, size, AccessKind::Read, site);
                }
                Op::Write { addr, size, site } => {
                    self.on_access(index, thread, addr, size, AccessKind::Write, site);
                }
                Op::Lock { lock, .. } => self.register_mut(thread).acquire(lock),
                Op::Unlock { lock, .. } => self.register_mut(thread).release(lock),
                Op::Fork { child, .. } => {
                    for meta in self.granules.values_mut() {
                        fork_transfer(meta, thread);
                    }
                    self.register_mut(child).acquire(dummy_lock(child));
                }
                Op::Join { child, .. } => {
                    self.register_mut(thread).acquire(dummy_lock(child));
                }
                Op::Barrier { .. } | Op::Compute { .. } => {}
            },
            TraceEvent::BarrierComplete { .. } => {
                if self.cfg.barrier_pruning {
                    let shape = self.cfg.shape;
                    for meta in self.granules.values_mut() {
                        meta.barrier_reset(shape);
                    }
                }
            }
        }
    }

    fn reports(&self) -> &[RaceReport] {
        &self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::{IdealLockset, IdealLocksetConfig};
    use hard_trace::{run_detector, ProgramBuilder, SchedConfig, Scheduler};
    use hard_types::LockId;
    use std::collections::BTreeSet;

    #[test]
    fn detects_plain_missing_lock() {
        // Deterministic event order: the locked writer initializes the
        // granule, then the unlocked writer's foreign access performs
        // the (empty) intersection and must be reported.
        let x = Addr(0x2000);
        let l = LockId(0x40);
        let t0 = hard_types::ThreadId(0);
        let t1 = hard_types::ThreadId(1);
        let trace = hard_trace::Trace {
            events: vec![
                TraceEvent::Op {
                    thread: t0,
                    op: Op::Lock {
                        lock: l,
                        site: SiteId(0),
                    },
                },
                TraceEvent::Op {
                    thread: t0,
                    op: Op::Write {
                        addr: x,
                        size: 4,
                        site: SiteId(1),
                    },
                },
                TraceEvent::Op {
                    thread: t0,
                    op: Op::Unlock {
                        lock: l,
                        site: SiteId(2),
                    },
                },
                TraceEvent::Op {
                    thread: t1,
                    op: Op::Write {
                        addr: x,
                        size: 4,
                        site: SiteId(3),
                    },
                },
            ],
            num_threads: 2,
        };
        let mut d = BloomLockset::new(BloomLocksetConfig::default());
        let reports = run_detector(&mut d, &trace);
        assert!(reports.iter().any(|r| r.overlaps(x, Addr(x.0 + 4))));
    }

    #[test]
    fn agrees_with_ideal_at_same_granularity() {
        // With few locks (no collisions) and matching granularity, the
        // bloom detector reports races at exactly the ideal's granules.
        let mut b = ProgramBuilder::new(2);
        for t in 0..2u32 {
            let tp = b.thread(t);
            for i in 0..8u64 {
                tp.write(Addr(0x1000 + i * 64), 4, SiteId(t * 100 + i as u32));
            }
        }
        let trace = Scheduler::new(SchedConfig {
            seed: 4,
            max_quantum: 3,
        })
        .run(&b.build());
        let mut bloom = BloomLockset::new(BloomLocksetConfig {
            granularity: Granularity::new(4),
            ..BloomLocksetConfig::default()
        });
        let mut ideal = IdealLockset::new(IdealLocksetConfig::default());
        let rb = run_detector(&mut bloom, &trace);
        let ri = run_detector(&mut ideal, &trace);
        let gb: BTreeSet<Addr> = rb
            .iter()
            .map(|r| Granularity::new(4).granule_of(r.addr))
            .collect();
        let gi: BTreeSet<Addr> = ri
            .iter()
            .map(|r| Granularity::new(4).granule_of(r.addr))
            .collect();
        assert_eq!(gb, gi);
    }

    #[test]
    fn figure5_collision_hides_race() {
        // The crafted Figure 5 scenario: the lock held at the racing
        // access collides with the union of the two earlier locks, so
        // the bloom intersection never tests empty and the race is
        // missed — while the ideal detector catches it.
        let mk = |p0: u64, p1: u64, p2: u64, p3: u64| {
            LockId((p0 | (p1 << 2) | (p2 << 4) | (p3 << 6)) << 2)
        };
        let l1 = mk(0, 1, 2, 3);
        let l2 = mk(1, 2, 3, 0);
        let l3 = mk(0, 2, 2, 0); // covered by l1 | l2
        let x = Addr(0x4000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0)
            .lock(l1, SiteId(0))
            .lock(l2, SiteId(1))
            .write(x, 4, SiteId(2))
            .unlock(l2, SiteId(3))
            .unlock(l1, SiteId(4));
        b.thread(1)
            .lock(l3, SiteId(5))
            .write(x, 4, SiteId(6))
            .unlock(l3, SiteId(7));
        let p = b.build();
        // Force t0 first so t1's access performs the empty intersection.
        let trace = Scheduler::new(SchedConfig {
            seed: 0,
            max_quantum: 16,
        })
        .run(&p);

        let mut ideal = IdealLockset::new(IdealLocksetConfig::default());
        let ri = run_detector(&mut ideal, &trace);
        let mut bloom = BloomLockset::new(BloomLocksetConfig::default());
        let rb = run_detector(&mut bloom, &trace);

        let on_x = |rs: &[RaceReport]| rs.iter().any(|r| r.overlaps(x, Addr(x.0 + 4)));
        if on_x(&ri) {
            assert!(
                !on_x(&rb),
                "bloom collision must hide the race the ideal detector sees"
            );
        }
    }

    #[test]
    fn wider_vector_avoids_the_crafted_collision() {
        // The same Figure 5 locks do not collide in the 32-bit layout,
        // because part indices there use 3 address bits.
        let shape = BloomShape::B32;
        let mk = |p0: u64, p1: u64, p2: u64, p3: u64| {
            LockId((p0 | (p1 << 2) | (p2 << 4) | (p3 << 6)) << 2)
        };
        let l1 = mk(0, 1, 2, 3);
        let l2 = mk(1, 2, 3, 0);
        let l3 = mk(0, 2, 2, 0);
        let c = BloomVector::from_locks(shape, &[l1, l2]);
        let h = BloomVector::from_locks(shape, &[l3]);
        assert!(c.intersect(&h).is_empty_set());
    }
}
