/root/repo/target/debug/examples/barrier_pruning-8c676b3d45eff1c9.d: examples/barrier_pruning.rs Cargo.toml

/root/repo/target/debug/examples/libbarrier_pruning-8c676b3d45eff1c9.rmeta: examples/barrier_pruning.rs Cargo.toml

examples/barrier_pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
