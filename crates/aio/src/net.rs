//! Nonblocking TCP wrapped in deadline-aware futures.

use crate::reactor::{reactor, Dir};
use std::future::Future;
use std::io::{Read, Write};
use std::os::fd::AsRawFd;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Instant;

/// An async TCP listener over a nonblocking [`std::net::TcpListener`].
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Wraps a bound std listener, switching it nonblocking.
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` error.
    pub fn from_std(inner: std::net::TcpListener) -> std::io::Result<TcpListener> {
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.inner.local_addr()
    }

    /// Waits for and accepts one connection.
    pub fn accept(&self) -> Accept<'_> {
        Accept { listener: self }
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        reactor().deregister(self.inner.as_raw_fd());
    }
}

/// Future returned by [`TcpListener::accept`].
pub struct Accept<'a> {
    listener: &'a TcpListener,
}

impl Future for Accept<'_> {
    type Output = std::io::Result<(TcpStream, std::net::SocketAddr)>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.listener.inner.accept() {
            Ok((stream, peer)) => Poll::Ready(TcpStream::from_std(stream).map(|s| (s, peer))),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                reactor().register(self.listener.inner.as_raw_fd(), Dir::Read, cx.waker());
                Poll::Pending
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                cx.waker().wake_by_ref();
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

/// An async TCP stream over a nonblocking [`std::net::TcpStream`].
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Wraps a connected std stream, switching it nonblocking.
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` error.
    pub fn from_std(inner: std::net::TcpStream) -> std::io::Result<TcpStream> {
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    /// Reads into `buf`, resolving when any bytes (or EOF) arrive. A
    /// `deadline` in the past or unreached by then resolves to an
    /// [`std::io::ErrorKind::TimedOut`] error — the idle-session
    /// signal.
    pub fn read<'a>(&'a self, buf: &'a mut [u8], deadline: Option<Instant>) -> ReadFut<'a> {
        ReadFut {
            stream: self,
            buf,
            deadline,
        }
    }

    /// Writes some of `buf`, resolving when the kernel accepts bytes.
    pub fn write<'a>(&'a self, buf: &'a [u8], deadline: Option<Instant>) -> WriteFut<'a> {
        WriteFut {
            stream: self,
            buf,
            deadline,
        }
    }

    /// Writes all of `buf`, bounded by `deadline`.
    ///
    /// # Errors
    ///
    /// Propagates write errors; a deadline expiry surfaces as
    /// [`std::io::ErrorKind::TimedOut`].
    pub async fn write_all(
        &self,
        mut buf: &[u8],
        deadline: Option<Instant>,
    ) -> std::io::Result<()> {
        while !buf.is_empty() {
            let n = self.write(buf, deadline).await?;
            if n == 0 {
                return Err(std::io::ErrorKind::WriteZero.into());
            }
            buf = &buf[n..];
        }
        Ok(())
    }
}

impl Drop for TcpStream {
    fn drop(&mut self) {
        reactor().deregister(self.inner.as_raw_fd());
    }
}

fn timed_out() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::TimedOut, "deadline elapsed")
}

/// Future returned by [`TcpStream::read`].
pub struct ReadFut<'a> {
    stream: &'a TcpStream,
    buf: &'a mut [u8],
    deadline: Option<Instant>,
}

impl Future for ReadFut<'_> {
    type Output = std::io::Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        match (&me.stream.inner).read(me.buf) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if let Some(d) = me.deadline {
                    if Instant::now() >= d {
                        return Poll::Ready(Err(timed_out()));
                    }
                    reactor().register_timer(d, cx.waker());
                }
                reactor().register(me.stream.inner.as_raw_fd(), Dir::Read, cx.waker());
                Poll::Pending
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                cx.waker().wake_by_ref();
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

/// Future returned by [`TcpStream::write`].
pub struct WriteFut<'a> {
    stream: &'a TcpStream,
    buf: &'a [u8],
    deadline: Option<Instant>,
}

impl Future for WriteFut<'_> {
    type Output = std::io::Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        match (&me.stream.inner).write(me.buf) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if let Some(d) = me.deadline {
                    if Instant::now() >= d {
                        return Poll::Ready(Err(timed_out()));
                    }
                    reactor().register_timer(d, cx.waker());
                }
                reactor().register(me.stream.inner.as_raw_fd(), Dir::Write, cx.waker());
                Poll::Pending
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                cx.waker().wake_by_ref();
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}
