/root/repo/target/debug/deps/hard_exp-ed0b6fe5461f9790.d: crates/harness/src/bin/hard_exp.rs Cargo.toml

/root/repo/target/debug/deps/libhard_exp-ed0b6fe5461f9790.rmeta: crates/harness/src/bin/hard_exp.rs Cargo.toml

crates/harness/src/bin/hard_exp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
