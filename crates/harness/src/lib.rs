//! Experiment campaigns regenerating every table and figure of the
//! paper's evaluation (§5).
//!
//! Each experiment module produces a structured result plus a rendered
//! ASCII table whose rows match the paper's:
//!
//! | Paper artifact | Module | CLI |
//! |---|---|---|
//! | Table 1 (machine parameters) | [`experiments::table1`] | `hard-exp table1` |
//! | Table 2 (overall effectiveness) | [`experiments::table2`] | `hard-exp table2` |
//! | Table 3 (granularity sweep) | [`experiments::table3`] | `hard-exp table3` |
//! | Tables 4+5 (L2 size sweep) | [`experiments::table45`] | `hard-exp table4` / `table5` |
//! | Table 6 (bloom vector sweep) | [`experiments::table6`] | `hard-exp table6` |
//! | Figure 8 (execution overhead) | [`experiments::fig8`] | `hard-exp fig8` |
//! | §3.2 collision analysis | [`experiments::bloom_analysis`] | `hard-exp bloom` |
//!
//! The shared machinery lives in [`campaign`]: deterministic trace
//! construction, the detector registry ([`detectors::DetectorKind`]),
//! bug-outcome scoring with miss-reason classification, and
//! source-level false-alarm counting.

#![warn(missing_docs)]

pub mod bench;
pub mod campaign;
pub mod chaos;
pub mod checkpoint;
pub mod corpus;
pub mod detectors;
pub mod experiments;
pub mod kernel;
pub mod parallel;
pub mod report;
pub mod runner;
pub mod service;
pub mod table;

pub use bench::BenchRecord;
pub use campaign::{
    alarm_sites, injected_cell, injected_trace, per_app, probes, race_free_cell, race_free_trace,
    score, BugOutcome, CampaignConfig, CellTrace, InjectMode,
};
pub use chaos::{ChaosProxy, ChaosSnapshot, ChaosStats, FaultyStream, NetFaultPlan};
pub use checkpoint::Checkpoint;
pub use corpus::{CorpusCache, CorpusEntry, CorpusStats};
pub use detectors::{execute, execute_observed, DetectorKind, DetectorRun};
pub use kernel::KernelMode;
pub use parallel::{map_cells, TrySubmit, WorkerPool};
pub use report::{OutputFormat, Reporter};
pub use runner::{
    execute_hardened, execute_hardened_cell, execute_hardened_cell_observed,
    execute_hardened_observed, execute_hardened_packed, execute_hardened_packed_observed,
    execute_streamed, RunLimits, RunMetrics, RunOutcome, StreamFeeder,
};
pub use service::{HealthSnapshot, ReportBody, RetryPolicy, RetryStats, Submission};
pub use table::TextTable;
