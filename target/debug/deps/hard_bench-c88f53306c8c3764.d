/root/repo/target/debug/deps/hard_bench-c88f53306c8c3764.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhard_bench-c88f53306c8c3764.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhard_bench-c88f53306c8c3764.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
