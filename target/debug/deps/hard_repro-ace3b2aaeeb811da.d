/root/repo/target/debug/deps/hard_repro-ace3b2aaeeb811da.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhard_repro-ace3b2aaeeb811da.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
