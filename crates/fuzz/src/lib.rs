//! Deterministic mutational fuzzing without cargo-fuzz.
//!
//! The build environment has no registry access, so the usual
//! `cargo fuzz` + libFuzzer stack is unavailable. This crate is the
//! in-tree stand-in: a seeded [`hard_types::Xoshiro256`]-driven
//! mutation loop that hammers a target function with corrupted inputs
//! and treats any panic as a crash. It mirrors the cargo-fuzz CLI
//! surface the CI job would otherwise use:
//!
//! ```text
//! fuzz_wire [--runs N] [--max-total-time SECS] [--seed N]
//!           [--max-len BYTES] [--crash-dir DIR] [--repro FILE] [--quiet]
//! ```
//!
//! Targets must be *total* over `&[u8]`: malformed input may return an
//! error, never panic. When a panic escapes, the offending input is
//! written to `--crash-dir` as `crash-<fnv>.bin` and the process exits
//! nonzero; `--repro FILE` replays a saved crash byte-for-byte.
//!
//! Determinism: a given `(target, seed, runs)` triple explores the
//! same input sequence on every machine, so CI failures reproduce
//! locally with the printed seed. The wall-clock bound
//! (`--max-total-time`, the flag CI's smoke job sets) is the only
//! nondeterministic cut-off, and it only ever *shortens* the run.

#![warn(missing_docs)]

use hard_types::Xoshiro256;
use std::io::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// How a fuzz binary runs: bounds, seed, and the crash-artifact
/// directory.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Mutated inputs to execute (the `--runs` bound).
    pub runs: u64,
    /// Wall-clock bound; the loop stops at whichever of `runs` /
    /// `max_total_time` trips first.
    pub max_total_time: Duration,
    /// Seeds the mutation schedule.
    pub seed: u64,
    /// Largest input the mutator will grow to.
    pub max_len: usize,
    /// Where crashing inputs are written.
    pub crash_dir: PathBuf,
    /// Replay this file once instead of fuzzing.
    pub repro: Option<PathBuf>,
    /// Suppress progress lines (crashes still print).
    pub quiet: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            runs: 200_000,
            max_total_time: Duration::from_secs(60),
            seed: 0x5EED_F022,
            max_len: 4096,
            crash_dir: PathBuf::from("fuzz-crashes"),
            repro: None,
            quiet: false,
        }
    }
}

impl FuzzConfig {
    /// Parses the process arguments.
    ///
    /// # Errors
    ///
    /// Describes the first unknown flag or malformed value.
    pub fn from_args() -> Result<FuzzConfig, String> {
        let mut cfg = FuzzConfig::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
            match a.as_str() {
                "--runs" => {
                    cfg.runs = value("--runs")?
                        .parse()
                        .map_err(|e| format!("bad --runs: {e}"))?;
                }
                "--max-total-time" => {
                    cfg.max_total_time = Duration::from_secs(
                        value("--max-total-time")?
                            .parse()
                            .map_err(|e| format!("bad --max-total-time: {e}"))?,
                    );
                }
                "--seed" => {
                    cfg.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--max-len" => {
                    cfg.max_len = value("--max-len")?
                        .parse()
                        .map_err(|e| format!("bad --max-len: {e}"))?;
                }
                "--crash-dir" => cfg.crash_dir = PathBuf::from(value("--crash-dir")?),
                "--repro" => cfg.repro = Some(PathBuf::from(value("--repro")?)),
                "--quiet" => cfg.quiet = true,
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(cfg)
    }
}

/// Values that historically break length and index arithmetic.
const INTERESTING: [u64; 12] = [
    0,
    1,
    7,
    8,
    15,
    16,
    0x7F,
    0xFF,
    0xFFFF,
    u32::MAX as u64,
    u32::MAX as u64 - 15,
    u64::MAX,
];

/// Applies one random mutation in place.
fn mutate(input: &mut Vec<u8>, rng: &mut Xoshiro256, max_len: usize) {
    match rng.gen_range(7) {
        // Flip one bit.
        0 if !input.is_empty() => {
            let i = rng.gen_index(input.len());
            input[i] ^= 1u8 << rng.gen_range(8);
        }
        // Overwrite one byte.
        1 if !input.is_empty() => {
            let i = rng.gen_index(input.len());
            input[i] = rng.next_u64() as u8;
        }
        // Plant an interesting integer (LE, 1/2/4/8 bytes wide).
        2 if !input.is_empty() => {
            let v = INTERESTING[rng.gen_index(INTERESTING.len())];
            let width = 1usize << rng.gen_range(4);
            let i = rng.gen_index(input.len());
            for (k, b) in v.to_le_bytes().iter().take(width).enumerate() {
                if let Some(slot) = input.get_mut(i + k) {
                    *slot = *b;
                }
            }
        }
        // Truncate.
        3 if !input.is_empty() => {
            input.truncate(rng.gen_index(input.len()));
        }
        // Remove a span.
        4 if input.len() >= 2 => {
            let from = rng.gen_index(input.len() - 1);
            let to = from + 1 + rng.gen_index(input.len() - from - 1).min(32);
            input.drain(from..to);
        }
        // Insert random bytes.
        5 => {
            let at = rng.gen_index(input.len() + 1);
            let n = 1 + rng.gen_index(16);
            for k in 0..n {
                if input.len() >= max_len {
                    break;
                }
                input.insert(at + k, rng.next_u64() as u8);
            }
        }
        // Duplicate a span to the end (grows structure-shaped data).
        _ => {
            if input.is_empty() {
                input.push(rng.next_u64() as u8);
            } else {
                let from = rng.gen_index(input.len());
                let n = (1 + rng.gen_index(64)).min(input.len() - from);
                let span: Vec<u8> = input[from..from + n].to_vec();
                let room = max_len.saturating_sub(input.len());
                input.extend_from_slice(&span[..n.min(room)]);
            }
        }
    }
    input.truncate(max_len);
}

/// 64-bit FNV-1a, for naming crash artifacts content-addressably.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `target` once, capturing any panic.
fn survives(target: &dyn Fn(&[u8]), input: &[u8]) -> Result<(), String> {
    match panic::catch_unwind(AssertUnwindSafe(|| target(input))) {
        Ok(()) => Ok(()),
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into())),
    }
}

/// The fuzz loop every `fuzz_*` binary wraps: parse flags, then mutate
/// the seed corpus against `target` until a bound trips or a panic
/// escapes. Returns the process exit code.
///
/// `seeds` should be well-formed inputs (real corpora, real frames):
/// mutations of valid data reach far deeper into a decoder than random
/// bytes.
pub fn fuzz_main(name: &str, seeds: Vec<Vec<u8>>, target: impl Fn(&[u8])) -> ExitCode {
    let cfg = match FuzzConfig::from_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: {name} [--runs N] [--max-total-time SECS] [--seed N] \
                 [--max-len BYTES] [--crash-dir DIR] [--repro FILE] [--quiet]"
            );
            return ExitCode::FAILURE;
        }
    };

    // The default panic hook prints a backtrace per caught panic; the
    // loop catches thousands on a crashing build, so silence it and
    // report through the crash artifact instead.
    let default_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let code = fuzz_loop(name, &cfg, seeds, &target);
    panic::set_hook(default_hook);
    code
}

fn fuzz_loop(
    name: &str,
    cfg: &FuzzConfig,
    mut pool: Vec<Vec<u8>>,
    target: &dyn Fn(&[u8]),
) -> ExitCode {
    if let Some(path) = &cfg.repro {
        let input = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match survives(target, &input) {
            Ok(()) => {
                println!("{name}: {} did not panic", path.display());
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("{name}: {} PANICS: {msg}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    // The seeds themselves must pass before anything is mutated.
    pool.push(Vec::new());
    for seed_input in &pool {
        if let Err(msg) = survives(target, seed_input) {
            eprintln!("{name}: seed input panics before any mutation: {msg}");
            return crash(name, cfg, seed_input, &msg);
        }
    }

    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let started = Instant::now();
    let mut executed: u64 = 0;
    while executed < cfg.runs && started.elapsed() < cfg.max_total_time {
        let mut input = pool[rng.gen_index(pool.len())].clone();
        for _ in 0..1 + rng.gen_range(8) {
            mutate(&mut input, &mut rng, cfg.max_len);
        }
        if let Err(msg) = survives(target, &input) {
            return crash(name, cfg, &input, &msg);
        }
        executed += 1;
        if !cfg.quiet && executed.is_multiple_of(100_000) {
            eprintln!(
                "{name}: {executed} runs, {:.1}s elapsed",
                started.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "{name}: ok — {executed} runs in {:.1}s (seed {}), no panics",
        started.elapsed().as_secs_f64(),
        cfg.seed
    );
    ExitCode::SUCCESS
}

/// Persists a crashing input and prints the repro command.
fn crash(name: &str, cfg: &FuzzConfig, input: &[u8], msg: &str) -> ExitCode {
    let file = cfg
        .crash_dir
        .join(format!("crash-{:016x}.bin", fnv1a(input)));
    let saved = std::fs::create_dir_all(&cfg.crash_dir)
        .and_then(|()| std::fs::File::create(&file).and_then(|mut f| f.write_all(input)));
    eprintln!("{name}: CRASH after panic: {msg}");
    match saved {
        Ok(()) => eprintln!(
            "{name}: input saved; reproduce with: {name} --repro {}",
            file.display()
        ),
        Err(e) => eprintln!(
            "{name}: could not save crash input ({e}); {} bytes: {:02x?}",
            input.len(),
            &input[..input.len().min(256)]
        ),
    }
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_schedule_is_deterministic() {
        let gen = |seed: u64| {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let mut input = b"HARDSRV1 deterministic".to_vec();
            for _ in 0..64 {
                mutate(&mut input, &mut rng, 128);
            }
            input
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43), "different seeds explore differently");
    }

    #[test]
    fn survives_catches_panics() {
        let boom = |data: &[u8]| {
            assert!(data.first() != Some(&0xAA), "planted crash");
        };
        assert!(survives(&boom, b"ok").is_ok());
        let err = survives(&boom, &[0xAA]).unwrap_err();
        assert!(err.contains("planted crash"), "got: {err}");
    }

    #[test]
    fn mutate_respects_max_len() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut input = vec![0u8; 16];
        for _ in 0..10_000 {
            mutate(&mut input, &mut rng, 64);
            assert!(input.len() <= 64);
        }
    }
}
