/root/repo/target/debug/deps/hard_lockset-d45a53f597540aee.d: crates/lockset/src/lib.rs crates/lockset/src/bloom_table.rs crates/lockset/src/ideal.rs crates/lockset/src/meta.rs crates/lockset/src/setrepr.rs crates/lockset/src/state.rs

/root/repo/target/debug/deps/hard_lockset-d45a53f597540aee: crates/lockset/src/lib.rs crates/lockset/src/bloom_table.rs crates/lockset/src/ideal.rs crates/lockset/src/meta.rs crates/lockset/src/setrepr.rs crates/lockset/src/state.rs

crates/lockset/src/lib.rs:
crates/lockset/src/bloom_table.rs:
crates/lockset/src/ideal.rs:
crates/lockset/src/meta.rs:
crates/lockset/src/setrepr.rs:
crates/lockset/src/state.rs:
