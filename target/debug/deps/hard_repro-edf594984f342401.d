/root/repo/target/debug/deps/hard_repro-edf594984f342401.d: src/lib.rs

/root/repo/target/debug/deps/libhard_repro-edf594984f342401.rlib: src/lib.rs

/root/repo/target/debug/deps/libhard_repro-edf594984f342401.rmeta: src/lib.rs

src/lib.rs:
