//! Workload-pipeline throughput: generation, scheduling, injection and
//! trace serialization.

use criterion::{criterion_group, criterion_main, Criterion};
use hard_trace::{codec, SchedConfig, Scheduler};
use hard_workloads::{inject_race, App, WorkloadConfig};
use std::hint::black_box;

fn cfg() -> WorkloadConfig {
    WorkloadConfig::reduced(0.1)
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload/generate");
    g.sample_size(20);
    for app in [App::WaterNsquared, App::Cholesky] {
        g.bench_function(app.name(), |b| b.iter(|| black_box(app.generate(&cfg()))));
    }
    g.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let p = App::WaterNsquared.generate(&cfg());
    let mut g = c.benchmark_group("workload/schedule");
    g.sample_size(20);
    g.bench_function("water-reduced", |b| {
        b.iter(|| black_box(Scheduler::new(SchedConfig::default()).run(&p)))
    });
    g.finish();
}

fn bench_injection(c: &mut Criterion) {
    let p = App::Barnes.generate(&cfg());
    c.bench_function("workload/inject", |b| {
        b.iter(|| black_box(inject_race(&p, 7)))
    });
}

fn bench_codec(c: &mut Criterion) {
    let p = App::WaterNsquared.generate(&cfg());
    let trace = Scheduler::new(SchedConfig::default()).run(&p);
    let mut buf = Vec::new();
    codec::encode(&trace, &mut buf).unwrap();
    let mut g = c.benchmark_group("trace/codec");
    g.sample_size(20);
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            codec::encode(&trace, &mut out).unwrap();
            out
        })
    });
    g.bench_function("decode", |b| {
        b.iter(|| codec::decode(buf.as_slice()).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_scheduling,
    bench_injection,
    bench_codec
);
criterion_main!(benches);
