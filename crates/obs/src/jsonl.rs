//! Minimal JSON encoding and parsing for the event stream.
//!
//! The workspace has no serde, so the event stream is hand-encoded
//! ([`crate::Event::to_json`]) and this module supplies the matching
//! decoder: enough of JSON to parse what we emit plus a validator the
//! smoke check and CI use to assert the stream is well-formed. It is a
//! strict-enough recursive-descent parser (objects, arrays, strings
//! with escapes, non-negative integers, floats, bools, null) — not a
//! general-purpose JSON library.

use std::collections::BTreeMap;

/// Escapes a string for inclusion inside JSON quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; exact for the u64s we emit below
    /// 2^53, which covers every counter the simulator can reach).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with string keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup; `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an i64, if it is an integral number in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            #[allow(clippy::cast_possible_truncation)]
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

/// Validates one line of the event stream: a JSON object carrying a
/// numeric `seq` and a string `kind`.
///
/// # Errors
///
/// Returns a description of the violated constraint.
pub fn validate_event_line(line: &str) -> Result<(), String> {
    let v = parse(line)?;
    if !matches!(v, Json::Obj(_)) {
        return Err("event line is not a JSON object".to_string());
    }
    v.get("seq")
        .and_then(Json::as_u64)
        .ok_or("missing numeric \"seq\"")?;
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing string \"kind\"")?;
    if kind.is_empty() {
        return Err("empty \"kind\"".to_string());
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar; the input came from &str so
                // boundaries are valid.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut m = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(m));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let v = parse_value(b, pos)?;
        m.insert(key, v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_objects_arrays_and_scalars() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\n\"y\""],"c":-2.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("c"), Some(&Json::Num(-2.5)));
        let Some(Json::Arr(items)) = v.get("b") else {
            panic!("b must be an array");
        };
        assert_eq!(items[0], Json::Bool(true));
        assert_eq!(items[1], Json::Null);
        assert_eq!(items[2], Json::Str("x\n\"y\"".to_string()));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f — λ";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} trailing", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn event_line_validation_checks_envelope() {
        assert!(validate_event_line(r#"{"seq":0,"kind":"race"}"#).is_ok());
        assert!(validate_event_line(r#"{"kind":"race"}"#).is_err());
        assert!(validate_event_line(r#"{"seq":0}"#).is_err());
        assert!(validate_event_line(r#"{"seq":0,"kind":""}"#).is_err());
        assert!(validate_event_line(r#"[1,2]"#).is_err());
    }
}
