//! The `hard-serve` wire protocol: framing and handshake.
//!
//! A detection session travels over a plain TCP byte stream as a
//! fixed 8-byte protocol handshake followed by length-prefixed
//! frames. The protocol is deliberately minimal — no TLS, no
//! multiplexing — because the service sits behind the same trust
//! boundary as the corpus directory it mirrors; what it *is* careful
//! about is hostile framing: every length is bounded before
//! allocation, unknown frame kinds are rejected without consuming
//! the payload, and a truncated stream surfaces as a clean error
//! rather than a hang or a panic.
//!
//! # Handshake
//!
//! The client opens the connection by sending [`WIRE_MAGIC`]
//! (`"HARDSRV1"`); the server echoes the same 8 bytes back. A server
//! receiving any other prefix answers with an [`FrameKind::Error`]
//! frame naming the mismatch and closes. The version digit is part of
//! the magic, so a future `HARDSRV2` client is detected before any
//! frame is parsed.
//!
//! # Frame layout
//!
//! ```text
//! kind     1  byte (see FrameKind)
//! len      4  u32 LE payload length
//! payload  len bytes
//! ```
//!
//! Client → server kinds: [`FrameKind::Begin`] (payload: UTF-8
//! detector label) opens a session, [`FrameKind::Data`] chunks carry
//! the bytes of one `HARDCRP1` corpus stream (any chunking; the
//! session reassembles them), [`FrameKind::End`] closes the session
//! and requests the report, [`FrameKind::Health`] asks for a
//! readiness snapshot without opening a session, and
//! [`FrameKind::Shutdown`] asks the server to drain and exit.
//! Server → client kinds: [`FrameKind::Report`] (payload: JSON report
//! body), [`FrameKind::Error`] (payload: UTF-8 message),
//! [`FrameKind::Busy`] (overload shed; payload from [`encode_busy`]
//! carries a retry-after hint), [`FrameKind::Healthy`] (payload: JSON
//! readiness snapshot), and [`FrameKind::Bye`] (shutdown
//! acknowledged).
//!
//! # Flushing
//!
//! [`write_frame`] buffers: it never flushes the sink, so a client
//! streaming thousands of small `Data` frames through a `BufWriter`
//! pays one syscall per buffer, not one per frame. The cost of that
//! decision is a protocol rule — **flush before you wait**. Every
//! writer that is about to block on the peer's answer (client after
//! `End`, `Health` or `Shutdown`; server after any response frame)
//! must flush explicitly, or both sides deadlock until a timeout
//! fires.
//!
//! The payload checksum is *not* a framing concern: the `HARDCRP1`
//! stream the Data frames carry embeds its own header and payload
//! FNV-1a checksums, which the server verifies on ingest before any
//! detection runs.

use std::io::{Read, Write};

/// Handshake magic; the trailing digit is the protocol version.
pub const WIRE_MAGIC: &[u8; 8] = b"HARDSRV1";

/// Hard upper bound on one frame's payload, defending the reader
/// against absurd length prefixes before any allocation happens.
/// Servers typically configure a tighter per-session byte budget on
/// top of this.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// The frame kinds of protocol version 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: open a session; payload is the UTF-8 detector
    /// label (e.g. `hard`).
    Begin = 0x01,
    /// Client → server: a chunk of the session's `HARDCRP1` stream.
    Data = 0x02,
    /// Client → server: the stream is complete; run detection and
    /// answer with a report.
    End = 0x03,
    /// Client → server: readiness probe; the server answers with a
    /// [`FrameKind::Healthy`] snapshot. Legal at any point between
    /// sessions and does not open one.
    Health = 0x04,
    /// Client → server: stop accepting connections, drain in-flight
    /// sessions and exit.
    Shutdown = 0x0F,
    /// Server → client: the session's JSON report body.
    Report = 0x81,
    /// Server → client: a session or protocol error description.
    Error = 0x82,
    /// Server → client: shutdown acknowledged; the connection closes.
    Bye = 0x83,
    /// Server → client: the server is shedding load and did not run
    /// this session; the payload ([`encode_busy`]) carries a
    /// retry-after hint. Unlike [`FrameKind::Error`], a `Busy` answer
    /// is explicitly transient: the same submission is expected to
    /// succeed after backing off.
    Busy = 0x84,
    /// Server → client: answer to [`FrameKind::Health`]; the payload
    /// is a JSON readiness snapshot.
    Healthy = 0x85,
}

impl FrameKind {
    /// Decodes a kind byte.
    #[must_use]
    pub fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0x01 => Some(FrameKind::Begin),
            0x02 => Some(FrameKind::Data),
            0x03 => Some(FrameKind::End),
            0x04 => Some(FrameKind::Health),
            0x0F => Some(FrameKind::Shutdown),
            0x81 => Some(FrameKind::Report),
            0x82 => Some(FrameKind::Error),
            0x83 => Some(FrameKind::Bye),
            0x84 => Some(FrameKind::Busy),
            0x85 => Some(FrameKind::Healthy),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the frame means.
    pub kind: FrameKind,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with no payload.
    #[must_use]
    pub fn empty(kind: FrameKind) -> Frame {
        Frame {
            kind,
            payload: Vec::new(),
        }
    }

    /// The payload as UTF-8, with invalid sequences replaced — error
    /// and label payloads are for humans, so lossy is the right call.
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed or ended mid-frame.
    Io(std::io::Error),
    /// The peer sent a kind byte outside the protocol.
    UnknownKind(u8),
    /// A length prefix exceeded the permitted payload bound.
    TooLarge {
        /// The announced payload length.
        len: u32,
        /// The bound it violated.
        max: u32,
    },
    /// The handshake bytes were not [`WIRE_MAGIC`].
    BadMagic([u8; 8]),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O: {e}"),
            WireError::UnknownKind(b) => write!(f, "unknown frame kind byte 0x{b:02X}"),
            WireError::TooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte bound"
                )
            }
            WireError::BadMagic(m) => {
                write!(f, "bad handshake {:?} (expected {:?})", m, WIRE_MAGIC)
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl WireError {
    /// True when the error is an I/O timeout (`WouldBlock` /
    /// `TimedOut`, depending on platform) — the idle-session signal
    /// servers turn into a client-visible error frame.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<()> {
    r.read_exact(buf)
}

/// Writes the 8-byte handshake.
///
/// # Errors
///
/// Propagates write errors.
pub fn write_handshake(w: &mut impl Write) -> Result<(), WireError> {
    w.write_all(WIRE_MAGIC)?;
    Ok(())
}

/// Reads and checks the 8-byte handshake.
///
/// # Errors
///
/// [`WireError::BadMagic`] carries the received bytes so the server
/// can name them in its error frame; I/O failures pass through.
pub fn read_handshake(r: &mut impl Read) -> Result<(), WireError> {
    let mut m = [0u8; 8];
    read_exact(r, &mut m)?;
    if &m != WIRE_MAGIC {
        return Err(WireError::BadMagic(m));
    }
    Ok(())
}

/// Writes one frame. Does **not** flush the sink (see the module-level
/// flushing rule): a caller about to wait for the peer's answer must
/// flush explicitly.
///
/// # Errors
///
/// [`WireError::TooLarge`] when the payload exceeds
/// [`MAX_FRAME_BYTES`]; I/O failures pass through.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::TooLarge {
        len: u32::MAX,
        max: MAX_FRAME_BYTES,
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    w.write_all(&[kind as u8])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Encodes a [`FrameKind::Busy`] payload: the machine-readable
/// retry-after hint followed by a human-readable reason.
///
/// The format is a single UTF-8 line, `retry-after-ms=<N>; <reason>`,
/// so the payload stays debuggable in a packet capture while
/// [`decode_busy`] can still recover the hint exactly.
#[must_use]
pub fn encode_busy(retry_after_ms: u64, reason: &str) -> Vec<u8> {
    format!("retry-after-ms={retry_after_ms}; {reason}").into_bytes()
}

/// Decodes a [`FrameKind::Busy`] payload into its retry-after hint (if
/// the peer sent a parseable one) and the human-readable reason.
///
/// Tolerant by design: a payload without the `retry-after-ms=` prefix
/// — say, from a future server speaking a richer dialect — decodes as
/// `(None, whole payload)` so the client can still back off on its own
/// schedule and log the reason.
#[must_use]
pub fn decode_busy(payload: &[u8]) -> (Option<u64>, String) {
    let text = String::from_utf8_lossy(payload).into_owned();
    if let Some(rest) = text.strip_prefix("retry-after-ms=") {
        if let Some((num, reason)) = rest.split_once("; ") {
            if let Ok(ms) = num.parse::<u64>() {
                return (Some(ms), reason.to_string());
            }
        }
    }
    (None, text)
}

/// Reads one frame, bounding the payload at the *smaller* of
/// `max_payload` and [`MAX_FRAME_BYTES`].
///
/// The length prefix is validated before any allocation, so a hostile
/// peer announcing a 4 GiB payload costs five bytes of reading, not
/// an allocation attempt.
///
/// # Errors
///
/// [`WireError::UnknownKind`] for a kind byte outside the protocol,
/// [`WireError::TooLarge`] for an over-bound length prefix, and
/// [`WireError::Io`] for stream failures (including clean EOF between
/// frames, which surfaces as `UnexpectedEof`).
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Frame, WireError> {
    let mut head = [0u8; 5];
    read_exact(r, &mut head)?;
    let kind = FrameKind::from_byte(head[0]).ok_or(WireError::UnknownKind(head[0]))?;
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes"));
    let max = max_payload.min(MAX_FRAME_BYTES);
    if len > max {
        return Err(WireError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload)?;
    Ok(Frame { kind, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_handshake(&mut buf).unwrap();
        write_frame(&mut buf, FrameKind::Begin, b"hard").unwrap();
        write_frame(&mut buf, FrameKind::Data, &[0xAB; 100]).unwrap();
        write_frame(&mut buf, FrameKind::End, b"").unwrap();
        let mut r = Cursor::new(buf);
        read_handshake(&mut r).unwrap();
        let f = read_frame(&mut r, MAX_FRAME_BYTES).unwrap();
        assert_eq!((f.kind, f.text().as_str()), (FrameKind::Begin, "hard"));
        let f = read_frame(&mut r, MAX_FRAME_BYTES).unwrap();
        assert_eq!((f.kind, f.payload.len()), (FrameKind::Data, 100));
        let f = read_frame(&mut r, MAX_FRAME_BYTES).unwrap();
        assert_eq!(f, Frame::empty(FrameKind::End));
        // Stream exhausted: clean EOF surfaces as an I/O error.
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME_BYTES),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn bad_magic_is_reported_with_the_received_bytes() {
        let mut r = Cursor::new(b"HARDSRV9".to_vec());
        let Err(WireError::BadMagic(m)) = read_handshake(&mut r) else {
            panic!("version-9 magic must be rejected");
        };
        assert_eq!(&m, b"HARDSRV9");
    }

    #[test]
    fn unknown_kind_and_oversized_frames_are_rejected() {
        let mut buf = vec![0x7Fu8];
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf), MAX_FRAME_BYTES),
            Err(WireError::UnknownKind(0x7F))
        ));
        let mut buf = vec![FrameKind::Data as u8];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let Err(WireError::TooLarge { len, max }) = read_frame(&mut Cursor::new(buf), 1024) else {
            panic!("a 4 GiB length prefix must be rejected before allocation");
        };
        assert_eq!((len, max), (u32::MAX, 1024));
    }

    #[test]
    fn truncated_payload_is_an_io_error_not_a_hang() {
        let mut buf = vec![FrameKind::Data as u8];
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 10]); // 90 bytes short
        assert!(matches!(
            read_frame(&mut Cursor::new(buf), MAX_FRAME_BYTES),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn every_kind_byte_round_trips() {
        for k in [
            FrameKind::Begin,
            FrameKind::Data,
            FrameKind::End,
            FrameKind::Health,
            FrameKind::Shutdown,
            FrameKind::Report,
            FrameKind::Error,
            FrameKind::Bye,
            FrameKind::Busy,
            FrameKind::Healthy,
        ] {
            assert_eq!(FrameKind::from_byte(k as u8), Some(k));
        }
        assert_eq!(FrameKind::from_byte(0x00), None);
    }

    #[test]
    fn busy_payload_round_trips() {
        let p = encode_busy(250, "detection queue saturated");
        assert_eq!(
            decode_busy(&p),
            (Some(250), "detection queue saturated".to_string())
        );
        // A zero hint is a legal "retry immediately".
        assert_eq!(decode_busy(&encode_busy(0, "x")), (Some(0), "x".into()));
    }

    #[test]
    fn busy_decode_tolerates_foreign_payloads() {
        let (hint, reason) = decode_busy(b"server is grumpy");
        assert_eq!((hint, reason.as_str()), (None, "server is grumpy"));
        // A malformed hint degrades to no-hint, never to a parse error.
        let (hint, _) = decode_busy(b"retry-after-ms=soon; later");
        assert_eq!(hint, None);
        let (hint, _) = decode_busy(b"retry-after-ms=5");
        assert_eq!(hint, None);
    }

    #[test]
    fn write_frame_does_not_flush() {
        // A sink that panics on flush proves the framing layer leaves
        // flush policy to the caller.
        struct NoFlush(Vec<u8>);
        impl Write for NoFlush {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                panic!("write_frame must not flush");
            }
        }
        let mut w = NoFlush(Vec::new());
        write_frame(&mut w, FrameKind::Data, b"abc").unwrap();
        assert_eq!(w.0.len(), 5 + 3);
    }

    #[test]
    fn timeout_classification() {
        let t = WireError::Io(std::io::Error::new(std::io::ErrorKind::WouldBlock, "t"));
        assert!(t.is_timeout());
        let t = WireError::Io(std::io::Error::new(std::io::ErrorKind::TimedOut, "t"));
        assert!(t.is_timeout());
        assert!(!WireError::UnknownKind(1).is_timeout());
    }
}
