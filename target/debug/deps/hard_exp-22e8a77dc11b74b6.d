/root/repo/target/debug/deps/hard_exp-22e8a77dc11b74b6.d: crates/harness/src/bin/hard_exp.rs

/root/repo/target/debug/deps/hard_exp-22e8a77dc11b74b6: crates/harness/src/bin/hard_exp.rs

crates/harness/src/bin/hard_exp.rs:
