//! Content-addressed on-disk trace corpus.
//!
//! Every campaign trace is a pure function of its seeds, so
//! regenerating it on every `hard-exp` invocation — and once per cell
//! within an invocation — is pure waste. The corpus cache keys each
//! trace by an FNV-1a hash of everything that determines it (generator
//! version, application, workload seed, scale, scheduler config,
//! injection mode/seed; see [`crate::campaign`] for the key builders)
//! and persists it in the packed fixed-width encoding
//! ([`hard_trace::packed_event`]) that the streaming replay path
//! consumes directly.
//!
//! # File format (`HARDCRP1`)
//!
//! ```text
//! magic        8  "HARDCRP1"
//! num_threads  4  u32 LE
//! events       8  u64 LE
//! inj_len      4  u32 LE (0: no injection recorded)
//! injection    inj_len bytes (see below)
//! payload_fnv  8  FNV-1a over the record payload
//! header_fnv   8  FNV-1a over every preceding byte
//! records      events * 16 bytes of packed events
//! ```
//!
//! The header (with both checksums) comes first so a reader can
//! validate it and then stream the records through a
//! [`ChunkedReader`] without ever holding the payload in memory,
//! folding [`codec::fnv1a_update`] over the chunks and comparing at
//! the end. Injected runs persist their ground-truth [`Injection`]
//! inline, so a warm cache skips program generation *and* injection
//! selection entirely.
//!
//! Damage never panics and never poisons a campaign: a corrupt or
//! truncated entry is counted, discarded and regenerated. Files in the
//! archival codec formats (`HARDTRC1`/`HARDTRC2`) found under a corpus
//! key are imported through [`codec::decode_lossy`] and accepted only
//! when complete.

use hard_trace::codec;
use hard_trace::packed_event::{ChunkedReader, PackedTrace, DEFAULT_CHUNK_RECORDS, RECORD_BYTES};
use hard_types::hashers::FastHashMap;
use hard_types::{AccessKind, Addr, LockId, ThreadId};
use hard_workloads::{CriticalSection, Injection};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Magic prefix of a corpus file.
pub const CORPUS_MAGIC: &[u8; 8] = b"HARDCRP1";

/// One cached trace: the packed payload plus the injection ground
/// truth for injected runs.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// The packed trace, shared so concurrent cells replay one buffer.
    pub trace: Arc<PackedTrace>,
    /// The injected race's ground truth (`None` for race-free traces).
    pub injection: Option<Injection>,
}

/// Point-in-time cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Keys served from the in-process map.
    pub hits_mem: u64,
    /// Keys served by reading a corpus file.
    pub hits_disk: u64,
    /// Keys that had to be generated.
    pub misses: u64,
    /// Corrupt or truncated files discarded (each also counts as a
    /// miss).
    pub corrupt: u64,
    /// Entries written to disk.
    pub stores: u64,
    /// Failed writes (the entry is still served from memory).
    pub store_errors: u64,
}

impl CorpusStats {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits_mem + self.hits_disk + self.misses
    }
}

/// A content-addressed trace cache over one directory.
pub struct CorpusCache {
    dir: PathBuf,
    mem: Mutex<FastHashMap<u64, CorpusEntry>>,
    hits_mem: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    stores: AtomicU64,
    store_errors: AtomicU64,
}

impl CorpusCache {
    /// A cache rooted at `dir`. The directory is created lazily on the
    /// first store.
    #[must_use]
    pub fn new(dir: PathBuf) -> CorpusCache {
        CorpusCache {
            dir,
            mem: Mutex::new(FastHashMap::default()),
            hits_mem: AtomicU64::new(0),
            hits_disk: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
        }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path for a key string.
    #[must_use]
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.crp", codec::fnv1a(key.as_bytes())))
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> CorpusStats {
        CorpusStats {
            hits_mem: self.hits_mem.load(Ordering::Relaxed),
            hits_disk: self.hits_disk.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
        }
    }

    /// Looks `key` up in memory, then on disk, generating (and
    /// persisting) the trace via `build` on a miss.
    ///
    /// `need_injection` demands an entry with ground truth: a disk
    /// entry without one (e.g. an imported archival trace) is treated
    /// as a miss rather than returned incomplete.
    ///
    /// Returns `None` only when the generated trace cannot be packed
    /// (a thread id beyond the packed encoding's 20-bit field, which no
    /// campaign workload produces) — the caller then falls back to the
    /// materialized path.
    pub fn get_or_create(
        &self,
        key: &str,
        need_injection: bool,
        build: impl FnOnce() -> (hard_trace::Trace, Option<Injection>),
    ) -> Option<CorpusEntry> {
        let hash = codec::fnv1a(key.as_bytes());
        let usable = |e: &CorpusEntry| !need_injection || e.injection.is_some();
        if let Some(entry) = self.mem.lock().expect("corpus map lock").get(&hash) {
            if usable(entry) {
                self.hits_mem.fetch_add(1, Ordering::Relaxed);
                return Some(entry.clone());
            }
        }
        let path = self.path_for(key);
        match load_file(&path) {
            Ok(entry) if usable(&entry) => {
                self.hits_disk.fetch_add(1, Ordering::Relaxed);
                self.mem
                    .lock()
                    .expect("corpus map lock")
                    .insert(hash, entry.clone());
                return Some(entry);
            }
            Ok(_) => {
                // Present but missing the ground truth: regenerate.
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            Err(LoadError::Absent) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            Err(LoadError::Corrupt(_)) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (trace, injection) = build();
        let packed = PackedTrace::from_trace(&trace).ok()?;
        let entry = CorpusEntry {
            trace: Arc::new(packed),
            injection,
        };
        match write_file(&path, &entry.trace, entry.injection.as_ref()) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // A read-only or full disk degrades the cache to
                // in-memory only; the campaign result is unaffected.
                self.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.mem
            .lock()
            .expect("corpus map lock")
            .insert(hash, entry.clone());
        Some(entry)
    }
}

/// Why a corpus file could not be loaded.
#[derive(Debug)]
enum LoadError {
    /// No file at the path (a plain miss).
    Absent,
    /// The file exists but is damaged or unreadable.
    Corrupt(String),
}

/// Reads and fully validates one corpus (or archival codec) file.
fn load_file(path: &Path) -> Result<CorpusEntry, LoadError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(LoadError::Absent),
        Err(e) => return Err(LoadError::Corrupt(e.to_string())),
    };
    if bytes.len() >= 8 && (&bytes[..8] == b"HARDTRC2" || &bytes[..8] == b"HARDTRC1") {
        // An archival trace dropped into the corpus: import it through
        // the lossy decoder, accepting only undamaged streams.
        let lossy =
            codec::decode_lossy(bytes.as_slice()).map_err(|e| LoadError::Corrupt(e.to_string()))?;
        if !lossy.complete {
            return Err(LoadError::Corrupt(format!(
                "archival trace lost {} event(s)",
                lossy.events_lost
            )));
        }
        let packed =
            PackedTrace::from_trace(&lossy.trace).map_err(|e| LoadError::Corrupt(e.to_string()))?;
        return Ok(CorpusEntry {
            trace: Arc::new(packed),
            injection: None,
        });
    }
    let (header, payload_at) = parse_header(&bytes).map_err(LoadError::Corrupt)?;
    let payload = &bytes[payload_at..];
    let expect = usize::try_from(header.events)
        .ok()
        .and_then(|n| n.checked_mul(RECORD_BYTES));
    if expect != Some(payload.len()) {
        return Err(LoadError::Corrupt(format!(
            "payload is {} bytes, header promises {} records",
            payload.len(),
            header.events
        )));
    }
    if codec::fnv1a(payload) != header.payload_fnv {
        return Err(LoadError::Corrupt("payload checksum mismatch".into()));
    }
    let packed = PackedTrace::from_bytes(header.num_threads, payload.to_vec())
        .map_err(|e| LoadError::Corrupt(e.to_string()))?;
    Ok(CorpusEntry {
        trace: Arc::new(packed),
        injection: header.injection,
    })
}

/// The validated header of a corpus file.
pub struct StreamHeader {
    /// Thread count of the recorded program.
    pub num_threads: u32,
    /// Number of packed records in the payload.
    pub events: u64,
    /// The persisted injection ground truth, if any.
    pub injection: Option<Injection>,
    /// FNV-1a the payload must hash to.
    pub payload_fnv: u64,
}

/// Parses and checksums a `HARDCRP1` header, returning it plus the
/// payload offset. Public because `hard-serve` ingests the same
/// format over the wire and must validate the header before detection
/// runs.
///
/// # Errors
///
/// Describes the first corruption found (bad magic, truncation, or a
/// header-checksum mismatch).
pub fn parse_header(bytes: &[u8]) -> Result<(StreamHeader, usize), String> {
    let need = |n: usize| -> Result<(), String> {
        if bytes.len() < n {
            Err(format!("truncated header: {} bytes", bytes.len()))
        } else {
            Ok(())
        }
    };
    need(24)?;
    if &bytes[..8] != CORPUS_MAGIC {
        return Err("bad magic".into());
    }
    let num_threads = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let events = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let inj_len = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes")) as usize;
    let header_end = 24usize
        .checked_add(inj_len)
        .and_then(|n| n.checked_add(16))
        .ok_or("absurd injection length")?;
    need(header_end)?;
    let injection = if inj_len == 0 {
        None
    } else {
        Some(decode_injection(&bytes[24..24 + inj_len])?)
    };
    let payload_fnv = u64::from_le_bytes(
        bytes[24 + inj_len..32 + inj_len]
            .try_into()
            .expect("8 bytes"),
    );
    let header_fnv = u64::from_le_bytes(
        bytes[32 + inj_len..40 + inj_len]
            .try_into()
            .expect("8 bytes"),
    );
    if codec::fnv1a(&bytes[..32 + inj_len]) != header_fnv {
        return Err("header checksum mismatch".into());
    }
    Ok((
        StreamHeader {
            num_threads,
            events,
            injection,
            payload_fnv,
        },
        header_end,
    ))
}

/// Serializes a corpus stream into a byte vector — the exact bytes
/// [`write_file`] puts on disk. Public so in-memory consumers (the
/// chaos campaign's fixtures, the fuzz seeds) can build `HARDCRP1`
/// uploads without touching the filesystem.
#[must_use]
pub fn encode_bytes(trace: &PackedTrace, injection: Option<&Injection>) -> Vec<u8> {
    let inj = injection.map(encode_injection).unwrap_or_default();
    let mut out = Vec::with_capacity(40 + inj.len() + trace.bytes().len());
    out.extend_from_slice(CORPUS_MAGIC);
    out.extend_from_slice(
        &u32::try_from(trace.num_threads())
            .unwrap_or(u32::MAX)
            .to_le_bytes(),
    );
    out.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    out.extend_from_slice(&u32::try_from(inj.len()).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&inj);
    out.extend_from_slice(&codec::fnv1a(trace.bytes()).to_le_bytes());
    let header_fnv = codec::fnv1a(&out);
    out.extend_from_slice(&header_fnv.to_le_bytes());
    out.extend_from_slice(trace.bytes());
    out
}

/// Atomically writes a corpus file: temp file in the same directory,
/// then rename, so a crashed writer never leaves a half entry under a
/// valid name.
///
/// # Errors
///
/// Propagates directory-creation and write errors.
pub fn write_file(
    path: &Path,
    trace: &PackedTrace,
    injection: Option<&Injection>,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, encode_bytes(trace, injection))?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Reads and fully validates one corpus file (helper for tools and
/// tests; campaigns go through [`CorpusCache::get_or_create`]).
///
/// # Errors
///
/// Returns a description of the damage for anything but a pristine
/// file.
pub fn read_file(path: &Path) -> Result<(Arc<PackedTrace>, Option<Injection>), String> {
    match load_file(path) {
        Ok(e) => Ok((e.trace, e.injection)),
        Err(LoadError::Absent) => Err(format!("{} does not exist", path.display())),
        Err(LoadError::Corrupt(why)) => Err(why),
    }
}

/// Opens a corpus file for streaming: validates the header, then hands
/// back a [`ChunkedReader`] positioned at the first record. The caller
/// must fold [`codec::fnv1a_update`] over the chunks and compare with
/// [`StreamHeader::payload_fnv`] once the stream ends.
///
/// # Errors
///
/// Returns a description of any I/O failure or header damage.
pub fn open_streamed(path: &Path) -> Result<(StreamHeader, ChunkedReader), String> {
    let mut f =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    // The header is tiny (tens of bytes); read generously, then reopen
    // the payload at its exact offset via a second handle-free seek.
    let mut head = vec![0u8; 4096];
    let mut filled = 0;
    loop {
        match f.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if filled == head.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        }
    }
    head.truncate(filled);
    let (header, payload_at) = parse_header(&head)?;
    use std::io::Seek;
    f.seek(std::io::SeekFrom::Start(payload_at as u64))
        .map_err(|e| format!("cannot seek {}: {e}", path.display()))?;
    Ok((header, ChunkedReader::spawn(f, DEFAULT_CHUNK_RECORDS)))
}

fn encode_injection(inj: &Injection) -> Vec<u8> {
    let s = &inj.section;
    let mut out = Vec::with_capacity(32 + s.exposed_accesses.len() * 10);
    out.extend_from_slice(&s.thread.0.to_le_bytes());
    out.extend_from_slice(&s.lock.0.to_le_bytes());
    out.extend_from_slice(&(s.lock_index as u64).to_le_bytes());
    out.extend_from_slice(&(s.unlock_index as u64).to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(s.exposed_accesses.len())
            .unwrap_or(u32::MAX)
            .to_le_bytes(),
    );
    for &(addr, size, kind) in &s.exposed_accesses {
        out.extend_from_slice(&addr.0.to_le_bytes());
        out.push(size);
        out.push(match kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
    }
    out
}

fn decode_injection(bytes: &[u8]) -> Result<Injection, String> {
    let take = |at: usize, n: usize| -> Result<&[u8], String> {
        bytes
            .get(at..at + n)
            .ok_or_else(|| "truncated injection blob".to_string())
    };
    let thread = ThreadId(u32::from_le_bytes(take(0, 4)?.try_into().expect("4")));
    let lock = LockId(u64::from_le_bytes(take(4, 8)?.try_into().expect("8")));
    let lock_index = u64::from_le_bytes(take(12, 8)?.try_into().expect("8")) as usize;
    let unlock_index = u64::from_le_bytes(take(20, 8)?.try_into().expect("8")) as usize;
    let n = u32::from_le_bytes(take(28, 4)?.try_into().expect("4")) as usize;
    let mut exposed_accesses = Vec::with_capacity(n.min(1 << 16));
    let mut at = 32;
    for _ in 0..n {
        let rec = take(at, 10)?;
        let addr = Addr(u64::from_le_bytes(rec[..8].try_into().expect("8")));
        let kind = match rec[9] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            other => return Err(format!("bad access kind byte {other}")),
        };
        exposed_accesses.push((addr, rec[8], kind));
        at += 10;
    }
    if at != bytes.len() {
        return Err("trailing bytes after injection blob".into());
    }
    Ok(Injection {
        section: CriticalSection {
            thread,
            lock,
            lock_index,
            unlock_index,
            exposed_accesses,
        },
    })
}

static INSTALLED: RwLock<Option<Arc<CorpusCache>>> = RwLock::new(None);

/// Installs (or, with `None`, removes) the process-global corpus
/// cache consulted by the campaign trace constructors.
pub fn install(cache: Option<Arc<CorpusCache>>) {
    *INSTALLED.write().expect("corpus install lock") = cache;
}

/// The process-global corpus cache, if one is installed.
#[must_use]
pub fn installed() -> Option<Arc<CorpusCache>> {
    INSTALLED.read().expect("corpus install lock").clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hard_trace::{ProgramBuilder, SchedConfig, Scheduler, Trace};
    use hard_types::SiteId;

    fn small_trace() -> Trace {
        let mut b = ProgramBuilder::new(2);
        b.thread(0)
            .lock(LockId(0x40), SiteId(1))
            .write(Addr(0x1000), 4, SiteId(2))
            .unlock(LockId(0x40), SiteId(3));
        b.thread(1).read(Addr(0x1000), 4, SiteId(4)).compute(7);
        Scheduler::new(SchedConfig::default()).run(&b.build())
    }

    fn sample_injection() -> Injection {
        Injection {
            section: CriticalSection {
                thread: ThreadId(1),
                lock: LockId(0x40),
                lock_index: 3,
                unlock_index: 9,
                exposed_accesses: vec![
                    (Addr(0x1000), 4, AccessKind::Write),
                    (Addr(0x1008), 8, AccessKind::Read),
                ],
            },
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hard-corpus-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn file_round_trips_with_and_without_injection() {
        let dir = temp_dir("roundtrip");
        let packed = PackedTrace::from_trace(&small_trace()).unwrap();
        for inj in [None, Some(sample_injection())] {
            let path = dir.join(if inj.is_some() { "a.crp" } else { "b.crp" });
            write_file(&path, &packed, inj.as_ref()).unwrap();
            let (back, back_inj) = read_file(&path).unwrap();
            assert_eq!(*back, packed);
            assert_eq!(back_inj, inj);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_misses_then_hits_in_memory_and_from_disk() {
        let dir = temp_dir("hits");
        let trace = small_trace();
        let cache = CorpusCache::new(dir.clone());
        let built = std::cell::Cell::new(0);
        let build = || {
            built.set(built.get() + 1);
            (trace.clone(), None)
        };
        let a = cache.get_or_create("k", false, build).unwrap();
        assert_eq!(built.get(), 1);
        let b = cache
            .get_or_create("k", false, || unreachable!("memory hit"))
            .unwrap();
        assert_eq!(a.trace, b.trace);
        let s = cache.stats();
        assert_eq!((s.misses, s.hits_mem, s.stores), (1, 1, 1));

        // A fresh cache over the same directory serves from disk.
        let cold = CorpusCache::new(dir.clone());
        let c = cold
            .get_or_create("k", false, || unreachable!("disk hit"))
            .unwrap();
        assert_eq!(c.trace, a.trace);
        assert_eq!(cold.stats().hits_disk, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_bit_flipped_files_regenerate() {
        let dir = temp_dir("damage");
        let trace = small_trace();
        let cache = CorpusCache::new(dir.clone());
        let key = "damaged";
        cache
            .get_or_create(key, true, || (trace.clone(), Some(sample_injection())))
            .unwrap();
        let path = cache.path_for(key);
        let pristine = std::fs::read(&path).unwrap();

        for damage in 0..2 {
            let mut bytes = pristine.clone();
            if damage == 0 {
                bytes.truncate(bytes.len() / 2);
            } else {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x5A;
            }
            std::fs::write(&path, &bytes).unwrap();
            let fresh = CorpusCache::new(dir.clone());
            let entry = fresh
                .get_or_create(key, true, || (trace.clone(), Some(sample_injection())))
                .expect("regenerates instead of failing");
            assert_eq!(entry.trace.to_trace(), trace);
            assert_eq!(entry.injection, Some(sample_injection()));
            let s = fresh.stats();
            assert_eq!((s.corrupt, s.misses), (1, 1), "damage {damage}");
            // And the regeneration repaired the file.
            assert!(read_file(&path).is_ok());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn archival_codec_files_are_imported() {
        let dir = temp_dir("import");
        let trace = small_trace();
        let cache = CorpusCache::new(dir.clone());
        let key = "imported";
        let path = cache.path_for(key);
        std::fs::create_dir_all(&dir).unwrap();
        let mut buf = Vec::new();
        codec::encode(&trace, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let entry = cache
            .get_or_create(key, false, || unreachable!("import serves the codec file"))
            .unwrap();
        assert_eq!(entry.trace.to_trace(), trace);
        assert_eq!(cache.stats().hits_disk, 1);
        // Needing an injection demotes the import to a miss.
        let again = CorpusCache::new(dir.clone());
        let entry = again
            .get_or_create(key, true, || (trace.clone(), Some(sample_injection())))
            .unwrap();
        assert!(entry.injection.is_some());
        assert_eq!(again.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injection_needed_but_absent_is_a_miss_not_an_answer() {
        let dir = temp_dir("needinj");
        let trace = small_trace();
        let cache = CorpusCache::new(dir.clone());
        cache
            .get_or_create("k", false, || (trace.clone(), None))
            .unwrap();
        let entry = cache
            .get_or_create("k", true, || (trace.clone(), Some(sample_injection())))
            .unwrap();
        assert!(entry.injection.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_open_validates_and_yields_the_payload() {
        let dir = temp_dir("stream");
        let packed = PackedTrace::from_trace(&small_trace()).unwrap();
        let path = dir.join("s.crp");
        write_file(&path, &packed, Some(&sample_injection())).unwrap();
        let (header, mut reader) = open_streamed(&path).unwrap();
        assert_eq!(header.num_threads as usize, packed.num_threads());
        assert_eq!(header.events as usize, packed.len());
        assert_eq!(header.injection, Some(sample_injection()));
        let mut fnv = codec::FNV1A_INIT;
        let mut bytes = Vec::new();
        while let Some(chunk) = reader.next_chunk() {
            let chunk = chunk.unwrap();
            fnv = codec::fnv1a_update(fnv, &chunk);
            bytes.extend_from_slice(&chunk);
        }
        assert_eq!(fnv, header.payload_fnv);
        assert_eq!(bytes, packed.bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_install_round_trips() {
        // Sequential with any other test using the global slot; keep
        // the critical section tiny and restore the prior state.
        let prior = installed();
        let dir = temp_dir("global");
        install(Some(Arc::new(CorpusCache::new(dir.clone()))));
        assert!(installed().is_some());
        install(None);
        assert!(installed().is_none());
        install(prior);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
