/root/repo/target/release/deps/hard_cache-88628447e2165206.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/cstate.rs crates/cache/src/directory.rs crates/cache/src/geometry.rs crates/cache/src/hierarchy.rs crates/cache/src/policy.rs crates/cache/src/stats.rs crates/cache/src/timing.rs

/root/repo/target/release/deps/libhard_cache-88628447e2165206.rlib: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/cstate.rs crates/cache/src/directory.rs crates/cache/src/geometry.rs crates/cache/src/hierarchy.rs crates/cache/src/policy.rs crates/cache/src/stats.rs crates/cache/src/timing.rs

/root/repo/target/release/deps/libhard_cache-88628447e2165206.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/cstate.rs crates/cache/src/directory.rs crates/cache/src/geometry.rs crates/cache/src/hierarchy.rs crates/cache/src/policy.rs crates/cache/src/stats.rs crates/cache/src/timing.rs

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/cstate.rs:
crates/cache/src/directory.rs:
crates/cache/src/geometry.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/policy.rs:
crates/cache/src/stats.rs:
crates/cache/src/timing.rs:
