//! Detector-facing abstractions shared by every race detector in the
//! workspace (HARD, ideal lockset, hardware and ideal happens-before).

use crate::event::{Trace, TraceEvent};
use crate::op::Op;
use crate::packed_event::PackedTrace;
use hard_obs::{CounterId, ObsHandle};
use hard_types::{AccessKind, Addr, SiteId, ThreadId};
use std::fmt;

/// One reported (potential) data race.
///
/// The paper maps dynamic reports back to source code and counts
/// distinct static locations; [`RaceReport::site`] carries the static
/// site of the access that triggered the report so the harness can do
/// the same.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RaceReport {
    /// Address of the access that triggered the report.
    pub addr: Addr,
    /// Size of the triggering access in bytes.
    pub size: u8,
    /// Static site of the triggering access.
    pub site: SiteId,
    /// The accessing thread.
    pub thread: ThreadId,
    /// Whether the triggering access was a read or a write.
    pub kind: AccessKind,
    /// Index of the triggering event in the global trace.
    pub event_index: usize,
}

impl RaceReport {
    /// True if the triggering access overlaps the byte range
    /// `[lo, hi)` — used to match reports against an injected race's
    /// target data.
    #[must_use]
    pub fn overlaps(&self, lo: Addr, hi: Addr) -> bool {
        let a0 = self.addr.0;
        let a1 = a0 + u64::from(self.size);
        a0 < hi.0 && lo.0 < a1
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race: {} {} {}+{} at {} (event {})",
            self.thread, self.kind, self.addr, self.size, self.site, self.event_index
        )
    }
}

/// A dynamic race detector consuming a global event stream.
///
/// All detectors in the workspace observe the *same* trace; this trait
/// is the seam that lets the harness run HARD, happens-before and the
/// ideal variants over identical executions.
pub trait Detector {
    /// Short human-readable detector name for reports.
    fn name(&self) -> &str;

    /// Observes event number `index` of the trace.
    fn on_event(&mut self, index: usize, event: &TraceEvent);

    /// The reports accumulated so far.
    fn reports(&self) -> &[RaceReport];
}

/// Drives `detector` over every event of `trace`, returning the final
/// report list.
///
/// # Examples
///
/// ```
/// use hard_trace::{run_detector, Detector, RaceReport, Trace, TraceEvent};
///
/// /// A detector that counts events and reports nothing.
/// struct Null(usize);
/// impl Detector for Null {
///     fn name(&self) -> &str { "null" }
///     fn on_event(&mut self, _i: usize, _e: &TraceEvent) { self.0 += 1 }
///     fn reports(&self) -> &[RaceReport] { &[] }
/// }
///
/// let trace = Trace { events: vec![], num_threads: 1 };
/// let mut d = Null(0);
/// assert!(run_detector(&mut d, &trace).is_empty());
/// ```
pub fn run_detector<D: Detector + ?Sized>(detector: &mut D, trace: &Trace) -> Vec<RaceReport> {
    for (i, e) in trace.events.iter().enumerate() {
        detector.on_event(i, e);
    }
    detector.reports().to_vec()
}

/// [`run_detector`] over a packed trace: events are decoded one at a
/// time on the stack as the buffer is walked — the `Vec<TraceEvent>`
/// of wide enum records is never materialized.
pub fn run_detector_streamed<D: Detector + ?Sized>(
    detector: &mut D,
    trace: &PackedTrace,
) -> Vec<RaceReport> {
    for (i, e) in trace.iter().enumerate() {
        detector.on_event(i, &e);
    }
    detector.reports().to_vec()
}

/// Classifies one trace event into the observability layer's
/// per-op-class counters. One call per dispatched event; does nothing
/// on an off handle.
pub fn observe_event(obs: &ObsHandle, event: &TraceEvent) {
    obs.counter(CounterId::TraceEvents, 1);
    let class = match event {
        TraceEvent::Op { op, .. } => match op {
            Op::Read { .. } => CounterId::OpsRead,
            Op::Write { .. } => CounterId::OpsWrite,
            Op::Compute { .. } => CounterId::OpsCompute,
            Op::Lock { .. }
            | Op::Unlock { .. }
            | Op::Fork { .. }
            | Op::Join { .. }
            | Op::Barrier { .. } => CounterId::OpsSync,
        },
        TraceEvent::BarrierComplete { .. } => CounterId::OpsSync,
    };
    obs.counter(class, 1);
}

/// [`run_detector`] with trace-level observability: each event is
/// classified into `obs` before dispatch. With an off handle this is
/// exactly `run_detector`.
pub fn run_detector_observed<D: Detector + ?Sized>(
    detector: &mut D,
    trace: &Trace,
    obs: &ObsHandle,
) -> Vec<RaceReport> {
    if !obs.is_on() {
        return run_detector(detector, trace);
    }
    for (i, e) in trace.events.iter().enumerate() {
        observe_event(obs, e);
        detector.on_event(i, e);
    }
    detector.reports().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_logic() {
        let r = RaceReport {
            addr: Addr(100),
            size: 4,
            site: SiteId(1),
            thread: ThreadId(0),
            kind: AccessKind::Write,
            event_index: 7,
        };
        assert!(r.overlaps(Addr(100), Addr(104)));
        assert!(r.overlaps(Addr(103), Addr(200)));
        assert!(r.overlaps(Addr(0), Addr(101)));
        assert!(!r.overlaps(Addr(104), Addr(200)));
        assert!(!r.overlaps(Addr(0), Addr(100)));
    }

    #[test]
    fn display_mentions_site_and_event() {
        let r = RaceReport {
            addr: Addr(0x20),
            size: 4,
            site: SiteId(9),
            thread: ThreadId(1),
            kind: AccessKind::Read,
            event_index: 3,
        };
        let s = format!("{r}");
        assert!(s.contains("site9") && s.contains("event 3"), "{s}");
    }
}
