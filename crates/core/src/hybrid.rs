//! The lockset + happens-before combination sketched in the paper's
//! §7 ("we will combine with the happens-before algorithm to prune
//! false alarms caused by other synchronizations").
//!
//! The simple combination runs both hardware detectors over the same
//! execution and reports only the granules flagged by **both**: a
//! lockset alarm on data whose conflicting accesses happens-before can
//! order (lock rotation, hand-crafted synchronization that follows
//! other sync edges) is pruned. The cost is the trade-off the paper
//! anticipates ("challenging to minimize the hardware cost without
//! losing any functionality"): races that the monitored interleaving
//! happened to order are pruned too, surrendering part of lockset's
//! interleaving insensitivity. The `hard-exp ablation` experiment
//! quantifies both sides.

use crate::config::HardConfig;
use crate::hb_machine::{HbMachine, HbMachineConfig};
use crate::machine::HardMachine;
use hard_trace::{Detector, RaceReport, TraceEvent};
use hard_types::{Addr, Granularity};
use std::collections::BTreeSet;

/// The combined detector: HARD's lockset machine and the hardware
/// happens-before machine side by side, intersected per granule.
#[derive(Debug)]
pub struct HybridMachine {
    hard: HardMachine,
    hb: HbMachine,
    granularity: Granularity,
}

impl HybridMachine {
    /// A fresh combined machine; the happens-before side mirrors the
    /// HARD side's cache shape and granularity.
    #[must_use]
    pub fn new(cfg: HardConfig) -> HybridMachine {
        let hb_cfg = HbMachineConfig {
            hierarchy: cfg.hierarchy,
            granularity: cfg.granularity,
            ..HbMachineConfig::default()
        };
        HybridMachine {
            granularity: cfg.granularity,
            hard: HardMachine::new(cfg),
            hb: HbMachine::new(hb_cfg),
        }
    }

    /// Attaches an observability recorder to both underlying machines
    /// (they share it, so counters aggregate across the pair).
    pub fn attach_recorder(&mut self, obs: hard_obs::ObsHandle) {
        self.hard.attach_recorder(obs.clone());
        self.hb.attach_recorder(obs);
    }

    /// The underlying HARD machine.
    #[must_use]
    pub fn hard(&self) -> &HardMachine {
        &self.hard
    }

    /// The underlying happens-before machine.
    #[must_use]
    pub fn hb(&self) -> &HbMachine {
        &self.hb
    }

    /// The pruned (combined) reports: HARD reports whose granule the
    /// happens-before side also flagged.
    #[must_use]
    pub fn combined_reports(&self) -> Vec<RaceReport> {
        let hb_granules: BTreeSet<Addr> = self
            .hb
            .reports()
            .iter()
            .map(|r| self.granularity.granule_of(r.addr))
            .collect();
        self.hard
            .reports()
            .iter()
            .filter(|r| hb_granules.contains(&self.granularity.granule_of(r.addr)))
            .copied()
            .collect()
    }

    /// Number of HARD reports the happens-before side pruned.
    #[must_use]
    pub fn pruned(&self) -> usize {
        self.hard.reports().len() - self.combined_reports().len()
    }
}

impl Detector for HybridMachine {
    fn name(&self) -> &str {
        "hard+hb"
    }

    fn on_event(&mut self, index: usize, event: &TraceEvent) {
        self.hard.on_event(index, event);
        self.hb.on_event(index, event);
    }

    // The trait surfaces the *unpruned* HARD stream (reports must be a
    // borrowed slice); callers wanting the §7 combination use
    // [`HybridMachine::combined_reports`].
    fn reports(&self) -> &[RaceReport] {
        self.hard.reports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hard_trace::{run_detector, Op, ProgramBuilder, SchedConfig, Scheduler};
    use hard_types::{LockId, SiteId};

    #[test]
    fn prunes_chain_ordered_handoff_alarms() {
        // A hand-crafted data hand-off ordered through a lock chain:
        // t0 publishes `data` (unlocked), both threads pass through a
        // critical section on G, then t1 consumes `data` (unlocked).
        // Happens-before sees the release→acquire edge and stays
        // silent; lockset alarms (no common lock on `data`) — exactly
        // the "false alarms caused by other synchronizations" the §7
        // combination prunes.
        let data = Addr(0x2000);
        let g = LockId(0x1000_0000);
        let guarded = Addr(0x3000);
        let t0 = hard_types::ThreadId(0);
        let t1 = hard_types::ThreadId(1);
        let ev = |thread, op| TraceEvent::Op { thread, op };
        let trace = hard_trace::Trace {
            events: vec![
                ev(
                    t0,
                    Op::Write {
                        addr: data,
                        size: 4,
                        site: SiteId(1),
                    },
                ),
                ev(
                    t0,
                    Op::Lock {
                        lock: g,
                        site: SiteId(2),
                    },
                ),
                ev(
                    t0,
                    Op::Write {
                        addr: guarded,
                        size: 4,
                        site: SiteId(3),
                    },
                ),
                ev(
                    t0,
                    Op::Unlock {
                        lock: g,
                        site: SiteId(4),
                    },
                ),
                ev(
                    t1,
                    Op::Lock {
                        lock: g,
                        site: SiteId(5),
                    },
                ),
                ev(
                    t1,
                    Op::Write {
                        addr: guarded,
                        size: 4,
                        site: SiteId(6),
                    },
                ),
                ev(
                    t1,
                    Op::Unlock {
                        lock: g,
                        site: SiteId(7),
                    },
                ),
                ev(
                    t1,
                    Op::Read {
                        addr: data,
                        size: 4,
                        site: SiteId(8),
                    },
                ),
                ev(
                    t1,
                    Op::Write {
                        addr: data,
                        size: 4,
                        site: SiteId(9),
                    },
                ),
            ],
            num_threads: 2,
        };
        let mut m = HybridMachine::new(HardConfig::default());
        run_detector(&mut m, &trace);
        assert!(
            m.hard().reports().iter().any(|r| r.addr == data),
            "lockset alone must alarm on the hand-off"
        );
        assert!(
            m.combined_reports().iter().all(|r| r.addr != data),
            "the combination prunes the ordered hand-off"
        );
        assert!(m.pruned() > 0);
    }

    #[test]
    fn keeps_true_unordered_races() {
        let x = Addr(0x2000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0).write(x, 4, SiteId(1));
        b.thread(1).write(x, 4, SiteId(2));
        let trace = Scheduler::new(SchedConfig::default()).run(&b.build());
        let mut m = HybridMachine::new(HardConfig::default());
        run_detector(&mut m, &trace);
        assert!(
            m.combined_reports().iter().any(|r| r.addr == x),
            "both sides flag a genuinely unordered race"
        );
    }

    #[test]
    fn surrenders_interleaving_insensitivity() {
        // Figure 1 again: in an interleaving where the y-lock orders
        // the x accesses, lockset catches the race but the combination
        // prunes it — the documented §7 trade-off.
        let x = Addr(0x2000);
        let y = Addr(0x3000);
        let lock = LockId(0x1000_0000);
        let mut b = ProgramBuilder::new(2);
        b.thread(0)
            .write(x, 4, SiteId(1))
            .lock(lock, SiteId(2))
            .write(y, 4, SiteId(3))
            .unlock(lock, SiteId(4));
        b.thread(1)
            .lock(lock, SiteId(5))
            .write(y, 4, SiteId(6))
            .unlock(lock, SiteId(7))
            .write(x, 4, SiteId(8));
        let p = b.build();
        let mut pruned_somewhere = false;
        for seed in 0..32 {
            let trace = Scheduler::new(SchedConfig {
                seed,
                max_quantum: 2,
            })
            .run(&p);
            let mut m = HybridMachine::new(HardConfig::default());
            run_detector(&mut m, &trace);
            let hard_hit = m.hard().reports().iter().any(|r| r.addr == x);
            let combined_hit = m.combined_reports().iter().any(|r| r.addr == x);
            assert!(hard_hit, "seed {seed}: lockset is insensitive");
            if !combined_hit {
                pruned_somewhere = true;
            }
        }
        assert!(
            pruned_somewhere,
            "some interleaving must order the race and lose it to pruning"
        );
    }
}
