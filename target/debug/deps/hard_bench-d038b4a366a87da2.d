/root/repo/target/debug/deps/hard_bench-d038b4a366a87da2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hard_bench-d038b4a366a87da2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
