/root/repo/target/debug/deps/bloom_ops-7bd213fd2ad94cc7.d: crates/bench/benches/bloom_ops.rs Cargo.toml

/root/repo/target/debug/deps/libbloom_ops-7bd213fd2ad94cc7.rmeta: crates/bench/benches/bloom_ops.rs Cargo.toml

crates/bench/benches/bloom_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
