//! Raw Linux syscall surface for the reactor.
//!
//! The build environment has no registry access, so there is no
//! `libc` crate to lean on. The std runtime already links the system
//! C library, which makes these four symbols (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`) resolvable through a plain
//! `extern "C"` block — the same trick the vendored `proptest` and
//! `criterion` stand-ins use for their host needs. Everything here is
//! Linux-specific by design: the serve tier deploys on Linux, and the
//! rest of the workspace already assumes `/proc` for RSS probes.

use std::os::raw::{c_int, c_uint};

/// Mirror of the kernel's `struct epoll_event`. On x86-64 the kernel
/// ABI packs it to byte alignment; other 64-bit targets use natural
/// alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` / `EPOLLOUT` / ...).
    pub events: u32,
    /// Caller-chosen cookie — this reactor stores the fd.
    pub data: u64,
}

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

/// Drains the eventfd counter (nonblocking; a would-block is "already
/// drained").
pub fn drain_eventfd(fd: c_int) {
    let mut buf = [0u8; 8];
    unsafe {
        let _ = read(fd, buf.as_mut_ptr(), buf.len());
    }
}

/// Bumps the eventfd counter, interrupting a reactor blocked in
/// `epoll_wait`.
pub fn signal_eventfd(fd: c_int) {
    let one = 1u64.to_ne_bytes();
    unsafe {
        let _ = write(fd, one.as_ptr(), one.len());
    }
}

/// Creates a close-on-exec epoll instance.
pub fn create_epoll() -> std::io::Result<c_int> {
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(std::io::Error::last_os_error());
    }
    Ok(fd)
}

/// Creates the nonblocking eventfd the reactor uses to interrupt its
/// own `epoll_wait` when a timer moves the next deadline earlier.
pub fn create_eventfd() -> std::io::Result<c_int> {
    let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
    if fd < 0 {
        return Err(std::io::Error::last_os_error());
    }
    Ok(fd)
}

/// `epoll_ctl` wrapper; `events == 0` with `EPOLL_CTL_DEL` ignores a
/// missing registration (the fd may already be closed).
pub fn ctl(epfd: c_int, op: c_int, fd: c_int, events: u32) -> std::io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: fd as u64,
    };
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        let err = std::io::Error::last_os_error();
        if op == EPOLL_CTL_DEL {
            return Ok(()); // racing a close is fine
        }
        return Err(err);
    }
    Ok(())
}

/// Blocks for events; `timeout_ms < 0` waits indefinitely.
pub fn wait(epfd: c_int, events: &mut [EpollEvent], timeout_ms: c_int) -> std::io::Result<usize> {
    let rc = unsafe {
        epoll_wait(
            epfd,
            events.as_mut_ptr(),
            c_int::try_from(events.len()).unwrap_or(c_int::MAX),
            timeout_ms,
        )
    };
    if rc < 0 {
        let err = std::io::Error::last_os_error();
        if err.kind() == std::io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}
