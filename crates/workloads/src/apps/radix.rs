//! radix: parallel radix sort — the application the paper singles out
//! in its Table 6 discussion: "for all test applications, the maximum
//! sizes of candidate sets and lock sets are 1, except radix which has
//! maximum candidate set size and lock set size of 3."
//!
//! The generator reproduces exactly that property: histogram cells are
//! updated under a *three-deep* lock nest (a global rank lock, a digit
//! group lock, and a bucket lock), so their candidate sets stabilize at
//! three locks and the per-core Lock Register must track three
//! simultaneous signatures — exercising the 2-bit Counter Register and
//! the §3.2 collision model at `m = 3`, where the 16-bit vector's
//! missed-race probability is ~11 % rather than ~0.4 %.
//!
//! Like [`super::server`], radix is not part of [`super::App::all`]:
//! the six-application tables stay the paper's.

use crate::common::{AppBuilder, WorkloadConfig};
use hard_trace::Program;

/// Generates the radix-like program.
#[must_use]
pub fn generate(cfg: &WorkloadConfig) -> Program {
    let mut b = AppBuilder::new(cfg);
    let threads = b.threads as u32;

    let global = b.layout.lock(); // rank phase lock
    let groups: Vec<_> = (0..4).map(|_| b.layout.lock()).collect();
    let buckets: Vec<_> = (0..16).map(|_| b.layout.lock()).collect();
    // One histogram cell per bucket, on its own line.
    let cells: Vec<_> = (0..16).map(|_| b.layout.isolated_word()).collect();
    let site_lock_g = b.layout.site();
    let site_lock_grp = b.layout.site();
    let site_lock_b = b.layout.site();
    let site_rd = b.layout.site();
    let site_wr = b.layout.site();
    let site_unl_b = b.layout.site();
    let site_unl_grp = b.layout.site();
    let site_unl_g = b.layout.site();

    // A single-lock rank counter: the injectable section.
    let rank = b.locked_var();

    let phases = 3;
    let keys_per_thread = b.scaled(32);
    let stream_chunk = (b.scaled(16 * 1024 / 32) as u64).max(32);
    let barriers: Vec<_> = (0..phases).map(|_| b.barrier_point()).collect();

    for bp in &barriers {
        for t in 0..threads {
            b.read_locked(t, &rank);
        }
        for t in 0..threads {
            for _ in 0..keys_per_thread {
                // Pick a digit: bucket index and its group.
                let bi = b.rng.gen_index(16);
                let gi = bi / 4;
                let cell = cells[bi];
                // The three-deep nest: global → group → bucket.
                b.pb.thread(t)
                    .lock(global, site_lock_g)
                    .lock(groups[gi], site_lock_grp)
                    .lock(buckets[bi], site_lock_b)
                    .read(cell, 4, site_rd)
                    .write(cell, 4, site_wr)
                    .unlock(buckets[bi], site_unl_b)
                    .unlock(groups[gi], site_unl_grp)
                    .unlock(global, site_unl_g);
                b.stream_private(t, stream_chunk);
                b.compute(t, 15);
            }
            b.update(t, &rank);
        }
        b.arrive_all(bp);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hard_trace::{SchedConfig, Scheduler, TraceStats};

    #[test]
    fn lock_sets_reach_depth_three() {
        let p = generate(&WorkloadConfig::reduced(0.2));
        assert_eq!(p.validate(), Ok(()));
        let trace = Scheduler::new(SchedConfig::default()).run(&p);
        let s = TraceStats::from_trace(&trace);
        assert_eq!(s.max_lock_nesting, 3, "the paper's radix property");
        assert!(
            s.distinct_locks >= 21,
            "global + 4 groups + 16 buckets + rank"
        );
    }

    #[test]
    fn candidate_sets_stabilize_at_three_locks() {
        use hard_lockset_test::*;
        // Run the ideal detector and check a histogram cell's final
        // candidate set has exactly the three nest locks.
        let p = generate(&WorkloadConfig::reduced(0.2));
        let trace = Scheduler::new(SchedConfig {
            seed: 1,
            max_quantum: 4,
        })
        .run(&p);
        assert_candidate_sizes(&trace);
    }

    /// Minimal shim: the lockset crate is not a dependency of
    /// hard-workloads, so the candidate-set assertion lives in the
    /// cross-crate tests (`tests/radix.rs`); here we only re-check the
    /// structural nesting.
    mod hard_lockset_test {
        use hard_trace::{Op, Trace, TraceEvent};

        pub fn assert_candidate_sizes(trace: &Trace) {
            // Structural proxy: some access happens while three locks
            // are held.
            let mut held = vec![0usize; trace.num_threads];
            let mut deep_access = false;
            for e in &trace.events {
                if let TraceEvent::Op { thread, op } = e {
                    match op {
                        Op::Lock { .. } => held[thread.index()] += 1,
                        Op::Unlock { .. } => held[thread.index()] -= 1,
                        Op::Read { .. } | Op::Write { .. } if held[thread.index()] == 3 => {
                            deep_access = true;
                        }
                        _ => {}
                    }
                }
            }
            assert!(deep_access, "accesses under a three-lock nest must exist");
        }
    }

    #[test]
    fn rank_is_injectable() {
        let p = generate(&WorkloadConfig::reduced(0.2));
        for seed in 0..3 {
            let (injected, info) = crate::inject::inject_race(&p, seed).unwrap();
            assert_eq!(injected.validate(), Ok(()), "seed {seed}");
            assert!(!info.section.exposed_accesses.is_empty());
        }
    }
}
