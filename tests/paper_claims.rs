//! The paper's headline claims, checked end-to-end at reduced scale.
//!
//! Full-scale numbers (10 runs/app, paper-size workloads) are recorded
//! in EXPERIMENTS.md; these tests keep the *claims* true under `cargo
//! test` in seconds.

use hard_repro::bloom::analysis::cr_whole;
use hard_repro::harness::experiments::{fig8, table2, table6};
use hard_repro::harness::CampaignConfig;

fn cfg() -> CampaignConfig {
    CampaignConfig::reduced(0.1, 4)
}

#[test]
fn hard_detects_at_least_as_many_bugs_as_happens_before() {
    let t = table2::run(&cfg());
    assert!(
        t.hard_total_detected() >= t.hb_total_detected(),
        "HARD {} vs HB {}",
        t.hard_total_detected(),
        t.hb_total_detected()
    );
    // And the gap is real, not a tie (the paper reports 20% more).
    assert!(
        t.hard_total_detected() > t.hb_total_detected(),
        "the lockset advantage must be visible"
    );
}

#[test]
fn ideal_lockset_detects_everything() {
    let t = table2::run(&cfg());
    for r in &t.rows {
        assert_eq!(
            r.hard_ideal.detected, t.runs,
            "{}: ideal lockset detects all injected bugs (paper: 60/60)",
            r.app
        );
    }
}

#[test]
fn hard_misses_are_displacement_misses() {
    let t = table2::run(&cfg());
    for r in &t.rows {
        assert_eq!(
            r.hard.missed_other, 0,
            "{}: every default-HARD miss must be attributable to L2 \
             displacement (paper §5.1)",
            r.app
        );
    }
}

#[test]
fn overhead_is_within_the_papers_band() {
    let f = fig8::run(&cfg());
    for r in &f.rows {
        let pct = r.overhead() * 100.0;
        assert!(
            (0.0..=5.0).contains(&pct),
            "{}: overhead {pct:.2}% outside the plausible band",
            r.app
        );
    }
    assert!(
        f.max_overhead() > 0.0,
        "HARD is not free; some overhead must register"
    );
}

#[test]
fn bloom_vector_size_does_not_affect_detection() {
    let t = table6::run(&cfg());
    for r in &t.rows {
        assert_eq!(r.bugs_16, r.bugs_32, "{}", r.app);
    }
}

#[test]
fn sixteen_bit_vector_meets_the_collision_guideline() {
    // §3.2: missed-race probability ≤ 1% for the common single-lock
    // candidate sets.
    assert!(cr_whole(4, 1) < 0.01);
}
