/root/repo/target/debug/deps/fork_join-e60c0f21d83d7274.d: tests/fork_join.rs Cargo.toml

/root/repo/target/debug/deps/libfork_join-e60c0f21d83d7274.rmeta: tests/fork_join.rs Cargo.toml

tests/fork_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
