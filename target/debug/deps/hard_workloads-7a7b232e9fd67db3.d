/root/repo/target/debug/deps/hard_workloads-7a7b232e9fd67db3.d: crates/workloads/src/lib.rs crates/workloads/src/apps/mod.rs crates/workloads/src/apps/barnes.rs crates/workloads/src/apps/cholesky.rs crates/workloads/src/apps/fmm.rs crates/workloads/src/apps/ocean.rs crates/workloads/src/apps/radix.rs crates/workloads/src/apps/raytrace.rs crates/workloads/src/apps/server.rs crates/workloads/src/apps/water.rs crates/workloads/src/common.rs crates/workloads/src/inject.rs crates/workloads/src/layout.rs Cargo.toml

/root/repo/target/debug/deps/libhard_workloads-7a7b232e9fd67db3.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps/mod.rs crates/workloads/src/apps/barnes.rs crates/workloads/src/apps/cholesky.rs crates/workloads/src/apps/fmm.rs crates/workloads/src/apps/ocean.rs crates/workloads/src/apps/radix.rs crates/workloads/src/apps/raytrace.rs crates/workloads/src/apps/server.rs crates/workloads/src/apps/water.rs crates/workloads/src/common.rs crates/workloads/src/inject.rs crates/workloads/src/layout.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/apps/mod.rs:
crates/workloads/src/apps/barnes.rs:
crates/workloads/src/apps/cholesky.rs:
crates/workloads/src/apps/fmm.rs:
crates/workloads/src/apps/ocean.rs:
crates/workloads/src/apps/radix.rs:
crates/workloads/src/apps/raytrace.rs:
crates/workloads/src/apps/server.rs:
crates/workloads/src/apps/water.rs:
crates/workloads/src/common.rs:
crates/workloads/src/inject.rs:
crates/workloads/src/layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
