/root/repo/target/debug/deps/hard_bench-424cb8f6a6ae76e8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhard_bench-424cb8f6a6ae76e8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
