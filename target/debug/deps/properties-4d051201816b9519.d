/root/repo/target/debug/deps/properties-4d051201816b9519.d: crates/hb/tests/properties.rs

/root/repo/target/debug/deps/properties-4d051201816b9519: crates/hb/tests/properties.rs

crates/hb/tests/properties.rs:
