//! Fuzzes the `HARDCRP1` corpus-header parser
//! ([`hard_harness::corpus::parse_header`]).
//!
//! This is the first code that touches bytes a client uploads to
//! `hard-serve`, so it is the natural place for a length-field
//! overflow or a truncation panic to hide. Invariants: arbitrary bytes
//! produce `Err`, never a panic, and an accepted header's payload
//! offset stays inside the input.

use hard_harness::corpus::{encode_bytes, parse_header};
use hard_trace::PackedTrace;
use std::process::ExitCode;

fn target(data: &[u8]) {
    if let Ok((header, payload_at)) = parse_header(data) {
        assert!(
            payload_at <= data.len(),
            "accepted header points past the input"
        );
        // Field reads must have been bounds-checked, not wrapped.
        let _ = header.num_threads;
        let _ = header.events;
    }
}

/// A real corpus (header + payload), exactly what the integration
/// tests upload — the mutator corrupts it from a valid starting point.
fn seeds() -> Vec<Vec<u8>> {
    let cfg = hard_harness::CampaignConfig::reduced(0.02, 1);
    let (trace, injection) =
        hard_harness::campaign::injected_trace(hard_workloads::App::Ocean, &cfg, 0);
    let packed = PackedTrace::from_trace(&trace).expect("workload trace packs");
    let with_injection = encode_bytes(&packed, Some(&injection));
    let without = encode_bytes(&packed, None);
    vec![with_injection, without]
}

fn main() -> ExitCode {
    hard_fuzz::fuzz_main("fuzz_corpus_header", seeds(), target)
}
