/root/repo/target/debug/deps/properties-7267930132aedf33.d: crates/bloom/tests/properties.rs

/root/repo/target/debug/deps/properties-7267930132aedf33: crates/bloom/tests/properties.rs

crates/bloom/tests/properties.rs:
