/root/repo/target/debug/deps/detectors-77b4d0d2823293b6.d: crates/bench/benches/detectors.rs

/root/repo/target/debug/deps/detectors-77b4d0d2823293b6: crates/bench/benches/detectors.rs

crates/bench/benches/detectors.rs:
