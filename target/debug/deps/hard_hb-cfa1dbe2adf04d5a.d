/root/repo/target/debug/deps/hard_hb-cfa1dbe2adf04d5a.d: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs

/root/repo/target/debug/deps/libhard_hb-cfa1dbe2adf04d5a.rlib: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs

/root/repo/target/debug/deps/libhard_hb-cfa1dbe2adf04d5a.rmeta: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs

crates/hb/src/lib.rs:
crates/hb/src/clock.rs:
crates/hb/src/ideal.rs:
crates/hb/src/meta.rs:
crates/hb/src/scalar.rs:
crates/hb/src/sync.rs:
