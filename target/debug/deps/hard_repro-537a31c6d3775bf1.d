/root/repo/target/debug/deps/hard_repro-537a31c6d3775bf1.d: src/lib.rs

/root/repo/target/debug/deps/hard_repro-537a31c6d3775bf1: src/lib.rs

src/lib.rs:
