//! The closed metric taxonomy.
//!
//! Metric identity is a dense enum rather than string keys so the hot
//! path is an array index, never a hash lookup, and so the exposition
//! endpoint can enumerate every metric even when its value is zero.
//! Names follow Prometheus conventions (`_total` suffix on counters)
//! and are part of the repo's documented surface (`DESIGN.md` §6).

/// Monotonic counters incremented by the machines and the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum CounterId {
    /// Per-granule candidate-set evaluations (`lockset_access` calls).
    CandidateChecks,
    /// Evaluations whose candidate intersection emptied — the raw
    /// race signal before site-level deduplication.
    CandidateEmpties,
    /// Deduplicated race reports pushed by a machine.
    RacesReported,
    /// Lock Register acquire operations.
    LockAcquires,
    /// Lock Register release operations.
    LockReleases,
    /// Barrier flash-reset sweeps (§3.5 pruning), one per barrier.
    BarrierResets,
    /// Granules conservatively reset to all-ones after a parity
    /// detection (fault degradation path).
    ConservativeResets,
    /// Lock registers rebuilt from the software shadow.
    RegisterRebuilds,
    /// Piggybacked metadata broadcasts delivered on the bus (§3.4).
    BroadcastsSent,
    /// Broadcasts silently lost to an injected fault.
    BroadcastsDropped,
    /// Broadcasts deferred by an injected fault.
    BroadcastsDelayed,
    /// L1 miss fills (from L2 or memory).
    CacheFills,
    /// L2 evictions (capacity or spurious displacement).
    L2Displacements,
    /// Valid metadata sectors lost to those evictions (§3.6).
    MetaLossLines,
    /// Line refetches that found their metadata previously lost.
    RefetchesAfterLoss,
    /// Trace events dispatched to an observed detector.
    TraceEvents,
    /// Read accesses in the observed trace.
    OpsRead,
    /// Write accesses in the observed trace.
    OpsWrite,
    /// Synchronization events (lock/unlock/fork/join/barrier).
    OpsSync,
    /// Compute delay events.
    OpsCompute,
    /// Races reported by the happens-before assist machine.
    HbRaces,
    /// TCP connections accepted by `hard-serve`.
    ServeConnections,
    /// Detection sessions completed successfully (a `Report` frame was
    /// written).
    ServeSessions,
    /// Sessions that ended in a client-visible `Error` frame (bad
    /// frame, corrupt stream, limit violation, timeout).
    ServeErrors,
    /// Connections refused because the server was at its session or
    /// in-flight byte limit.
    ServeRejected,
    /// Sessions answered from the report cache without running
    /// detection.
    ServeCacheHits,
    /// Payload bytes accepted into sessions (post-framing).
    ServeBytesIn,
    /// Sessions shed with a `Busy` frame instead of being admitted
    /// (queue saturation, session-slot exhaustion, or in-flight byte
    /// budget exhaustion).
    ServeShed,
    /// Health/readiness probe frames answered.
    ServeHealthProbes,
    /// Client-side submit re-attempts (every attempt after the first,
    /// whether provoked by a `Busy` shed, an I/O failure, or a
    /// server-reported session error).
    ServeRetryAttempts,
    /// Client-side submissions that exhausted their retry budget
    /// without a `Report` frame.
    ServeRetryExhausted,
}

impl CounterId {
    /// Every counter, in declaration (= index) order.
    pub const ALL: [CounterId; 31] = [
        CounterId::CandidateChecks,
        CounterId::CandidateEmpties,
        CounterId::RacesReported,
        CounterId::LockAcquires,
        CounterId::LockReleases,
        CounterId::BarrierResets,
        CounterId::ConservativeResets,
        CounterId::RegisterRebuilds,
        CounterId::BroadcastsSent,
        CounterId::BroadcastsDropped,
        CounterId::BroadcastsDelayed,
        CounterId::CacheFills,
        CounterId::L2Displacements,
        CounterId::MetaLossLines,
        CounterId::RefetchesAfterLoss,
        CounterId::TraceEvents,
        CounterId::OpsRead,
        CounterId::OpsWrite,
        CounterId::OpsSync,
        CounterId::OpsCompute,
        CounterId::HbRaces,
        CounterId::ServeConnections,
        CounterId::ServeSessions,
        CounterId::ServeErrors,
        CounterId::ServeRejected,
        CounterId::ServeCacheHits,
        CounterId::ServeBytesIn,
        CounterId::ServeShed,
        CounterId::ServeHealthProbes,
        CounterId::ServeRetryAttempts,
        CounterId::ServeRetryExhausted,
    ];

    /// Number of counters; sizes the recorder's atomic array.
    pub const COUNT: usize = CounterId::ALL.len();

    /// Dense index for array storage.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable Prometheus-style metric name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::CandidateChecks => "hard_candidate_checks_total",
            CounterId::CandidateEmpties => "hard_candidate_empties_total",
            CounterId::RacesReported => "hard_races_reported_total",
            CounterId::LockAcquires => "hard_lock_acquires_total",
            CounterId::LockReleases => "hard_lock_releases_total",
            CounterId::BarrierResets => "hard_barrier_resets_total",
            CounterId::ConservativeResets => "hard_conservative_resets_total",
            CounterId::RegisterRebuilds => "hard_register_rebuilds_total",
            CounterId::BroadcastsSent => "hard_meta_broadcasts_total",
            CounterId::BroadcastsDropped => "hard_broadcasts_dropped_total",
            CounterId::BroadcastsDelayed => "hard_broadcasts_delayed_total",
            CounterId::CacheFills => "hard_cache_fills_total",
            CounterId::L2Displacements => "hard_l2_displacements_total",
            CounterId::MetaLossLines => "hard_meta_loss_lines_total",
            CounterId::RefetchesAfterLoss => "hard_refetches_after_loss_total",
            CounterId::TraceEvents => "hard_trace_events_total",
            CounterId::OpsRead => "hard_ops_read_total",
            CounterId::OpsWrite => "hard_ops_write_total",
            CounterId::OpsSync => "hard_ops_sync_total",
            CounterId::OpsCompute => "hard_ops_compute_total",
            CounterId::HbRaces => "hard_hb_races_total",
            CounterId::ServeConnections => "hard_serve_connections_total",
            CounterId::ServeSessions => "hard_serve_sessions_total",
            CounterId::ServeErrors => "hard_serve_errors_total",
            CounterId::ServeRejected => "hard_serve_rejected_total",
            CounterId::ServeCacheHits => "hard_serve_cache_hits_total",
            CounterId::ServeBytesIn => "hard_serve_bytes_in_total",
            CounterId::ServeShed => "hard_serve_shed_total",
            CounterId::ServeHealthProbes => "hard_serve_health_probes_total",
            CounterId::ServeRetryAttempts => "hard_serve_retry_attempts_total",
            CounterId::ServeRetryExhausted => "hard_serve_retry_exhausted_total",
        }
    }
}

/// Value-distribution histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum HistId {
    /// Bloom candidate-vector population (set bits) observed at each
    /// candidate check — the paper's filter-saturation signal.
    BloomPopulation,
    /// Lock Register nesting depth after each lock operation.
    LockDepth,
    /// Events per completed `hard-serve` detection session.
    ServeSessionEvents,
}

impl HistId {
    /// Every histogram, in declaration (= index) order.
    pub const ALL: [HistId; 3] = [
        HistId::BloomPopulation,
        HistId::LockDepth,
        HistId::ServeSessionEvents,
    ];

    /// Number of histograms; sizes the recorder's cell array.
    pub const COUNT: usize = HistId::ALL.len();

    /// Dense index for array storage.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable Prometheus-style metric name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            HistId::BloomPopulation => "hard_bloom_population_bits",
            HistId::LockDepth => "hard_lock_depth",
            HistId::ServeSessionEvents => "hard_serve_session_events",
        }
    }

    /// Upper bucket bounds (inclusive, `le`); an implicit `+Inf`
    /// bucket follows the last bound.
    #[must_use]
    pub const fn bounds(self) -> &'static [u64] {
        match self {
            HistId::BloomPopulation => &[0, 1, 2, 4, 8, 16, 32, 64],
            HistId::LockDepth => &[0, 1, 2, 3, 4, 8],
            HistId::ServeSessionEvents => {
                &[0, 1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 23, 1 << 26]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_are_dense_and_ordered() {
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(CounterId::COUNT, CounterId::ALL.len());
    }

    #[test]
    fn names_are_unique_and_prometheus_shaped() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate counter name");
        for c in CounterId::ALL {
            assert!(c.name().starts_with("hard_"));
            assert!(c.name().ends_with("_total"));
        }
        for h in HistId::ALL {
            assert_eq!(h.index(), h as usize);
            assert!(h.name().starts_with("hard_"));
            assert!(!h.bounds().is_empty());
            assert!(h.bounds().windows(2).all(|w| w[0] < w[1]));
        }
    }
}
