//! Full-scale golden regressions: the exact numbers recorded in
//! EXPERIMENTS.md. Everything is seeded, so these are bit-reproducible
//! — but they take a couple of minutes, so they are `#[ignore]`d by
//! default. Run with:
//!
//! ```bash
//! cargo test --release --test full_scale -- --ignored
//! ```

use hard_repro::harness::experiments::{fig8, table2, table3};
use hard_repro::harness::CampaignConfig;
use hard_repro::workloads::App;

#[test]
#[ignore = "full-scale campaign (~1 min in release)"]
fn table2_headline_numbers() {
    let t = table2::run(&CampaignConfig::default());
    assert_eq!(t.hard_total_detected(), 56, "HARD total");
    assert_eq!(t.hb_total_detected(), 45, "happens-before total");
    for r in &t.rows {
        assert_eq!(r.hard_ideal.detected, 10, "{}: ideal lockset", r.app);
        assert_eq!(
            r.hard.missed_other, 0,
            "{}: HARD misses must be displacement misses",
            r.app
        );
    }
    // The recorded per-app false-alarm counts.
    let alarms: Vec<(App, usize)> = t.rows.iter().map(|r| (r.app, r.hard.alarms)).collect();
    assert_eq!(
        alarms,
        vec![
            (App::Cholesky, 66),
            (App::Barnes, 43),
            (App::Fmm, 58),
            (App::Ocean, 29),
            (App::WaterNsquared, 4),
            (App::Raytrace, 36),
        ]
    );
}

#[test]
#[ignore = "full-scale granularity sweep (~2 min in release)"]
fn table3_recorded_rows() {
    let t = table3::run(&CampaignConfig::default());
    let row = |app: App| t.rows.iter().find(|r| r.app == app).unwrap();
    // Bugs constant across granularities for every app.
    for r in &t.rows {
        assert!(
            r.hard_bugs.iter().all(|&b| b == r.hard_bugs[0]),
            "{}",
            r.app
        );
        assert!(r.hb_bugs.iter().all(|&b| b == r.hb_bugs[0]), "{}", r.app);
    }
    // The recorded alarm staircases.
    assert_eq!(row(App::Cholesky).hard_alarms, [24, 36, 54, 66]);
    assert_eq!(row(App::Ocean).hard_alarms, [1, 1, 1, 29]);
    assert_eq!(row(App::WaterNsquared).hard_alarms, [0, 0, 2, 4]);
}

#[test]
#[ignore = "full-scale timing runs (~10 s in release)"]
fn fig8_overhead_band() {
    let f = fig8::run(&CampaignConfig::default());
    for r in &f.rows {
        let pct = r.overhead() * 100.0;
        assert!(
            (0.5..3.5).contains(&pct),
            "{}: overhead {pct:.2}% left the recorded band",
            r.app
        );
    }
    assert!(f.max_overhead() * 100.0 < 3.0);
}
