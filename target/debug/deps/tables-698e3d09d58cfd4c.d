/root/repo/target/debug/deps/tables-698e3d09d58cfd4c.d: crates/bench/benches/tables.rs

/root/repo/target/debug/deps/tables-698e3d09d58cfd4c: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
