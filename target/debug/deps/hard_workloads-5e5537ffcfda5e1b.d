/root/repo/target/debug/deps/hard_workloads-5e5537ffcfda5e1b.d: crates/workloads/src/lib.rs crates/workloads/src/apps/mod.rs crates/workloads/src/apps/barnes.rs crates/workloads/src/apps/cholesky.rs crates/workloads/src/apps/fmm.rs crates/workloads/src/apps/ocean.rs crates/workloads/src/apps/radix.rs crates/workloads/src/apps/raytrace.rs crates/workloads/src/apps/server.rs crates/workloads/src/apps/water.rs crates/workloads/src/common.rs crates/workloads/src/inject.rs crates/workloads/src/layout.rs

/root/repo/target/debug/deps/libhard_workloads-5e5537ffcfda5e1b.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps/mod.rs crates/workloads/src/apps/barnes.rs crates/workloads/src/apps/cholesky.rs crates/workloads/src/apps/fmm.rs crates/workloads/src/apps/ocean.rs crates/workloads/src/apps/radix.rs crates/workloads/src/apps/raytrace.rs crates/workloads/src/apps/server.rs crates/workloads/src/apps/water.rs crates/workloads/src/common.rs crates/workloads/src/inject.rs crates/workloads/src/layout.rs

/root/repo/target/debug/deps/libhard_workloads-5e5537ffcfda5e1b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps/mod.rs crates/workloads/src/apps/barnes.rs crates/workloads/src/apps/cholesky.rs crates/workloads/src/apps/fmm.rs crates/workloads/src/apps/ocean.rs crates/workloads/src/apps/radix.rs crates/workloads/src/apps/raytrace.rs crates/workloads/src/apps/server.rs crates/workloads/src/apps/water.rs crates/workloads/src/common.rs crates/workloads/src/inject.rs crates/workloads/src/layout.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps/mod.rs:
crates/workloads/src/apps/barnes.rs:
crates/workloads/src/apps/cholesky.rs:
crates/workloads/src/apps/fmm.rs:
crates/workloads/src/apps/ocean.rs:
crates/workloads/src/apps/radix.rs:
crates/workloads/src/apps/raytrace.rs:
crates/workloads/src/apps/server.rs:
crates/workloads/src/apps/water.rs:
crates/workloads/src/common.rs:
crates/workloads/src/inject.rs:
crates/workloads/src/layout.rs:
