//! A generic set-associative cache array with LRU replacement.

use crate::cstate::CState;
use crate::geometry::CacheGeometry;
use hard_types::{Addr, HardError};
use std::mem::MaybeUninit;

/// One cache line: identity, coherence state and attached metadata.
#[derive(Clone, Debug)]
pub struct Line<M> {
    /// Line-aligned base address (we store the full address rather than
    /// the tag; the simulator favours clarity over bit-packing).
    pub addr: Addr,
    /// Coherence state (always [`CState::Modified`] or a plain
    /// valid/dirty notion in the L2, which is not a coherence
    /// participant).
    pub state: CState,
    /// The attached metadata (candidate set + LState for HARD,
    /// timestamps for happens-before).
    pub meta: M,
    lru: u64,
}

impl<M> Line<M> {
    /// The line's LRU stamp (the cache tick of its last touch).
    /// Exposed read-only so parity tests can pin replacement state
    /// across the scalar and batched probe paths.
    #[must_use]
    pub fn lru(&self) -> u64 {
        self.lru
    }
}

/// A line evicted to make room for an insertion.
#[derive(Clone, Debug)]
pub struct Evicted<M> {
    /// The victim's line address.
    pub addr: Addr,
    /// The victim's coherence state at eviction.
    pub state: CState,
    /// The victim's metadata (to be written back or dropped).
    pub meta: M,
}

/// The tag value of an empty slot. Never collides with a real line:
/// line addresses are aligned to `line_bytes ≥ 2`, so their low bit is
/// zero while `u64::MAX` is odd.
const TAG_EMPTY: u64 = u64::MAX;

/// A set-associative cache with LRU replacement, generic over per-line
/// metadata.
///
/// Storage is a single flat slot array of `num_sets × ways` entries in
/// which each set occupies a fixed window and keeps its valid lines as
/// a dense prefix (`lens[set]` of them). This replaces the former
/// `Vec<Vec<Line>>` — every set walk is a short contiguous scan with no
/// per-set heap indirection, and the array is allocated once at
/// construction. Within a set the prefix order emulates `Vec` push /
/// `swap_remove` exactly, so victim choice and global iteration order
/// are bit-identical to the nested representation.
///
/// Line identity and recency are mirrored into two dense `u64` arrays
/// (`tags`, `lrus`) kept in lockstep with the slots: a probe resolves
/// the tag match and a full-set insert resolves its LRU victim by
/// scanning one CPU cache line of packed words instead of striding
/// across `Line<M>` structs that can span hundreds of bytes each once
/// detection metadata is attached. `Line::lru` remains the
/// authoritative stamp (the parity tests pin it); the mirror is pure
/// acceleration and carries no independent state.
///
/// The slot array itself is *uninitialized capacity*: a slot holds a
/// live line **iff** its mirror tag is not [`TAG_EMPTY`] (equivalently,
/// iff it lies inside its set's dense prefix). This avoids writing —
/// and page-faulting — megabytes of empty `Line` storage every time a
/// machine is constructed, which a campaign does once per detector per
/// cell; sets the trace never touches never materialize at all. Every
/// read of a slot is gated on its tag, and [`Drop`]/[`Clone`] walk the
/// tags so exactly the live lines are freed or duplicated.
pub struct SetAssocCache<M> {
    geom: CacheGeometry,
    slots: Vec<MaybeUninit<Line<M>>>,
    tags: Vec<u64>,
    lrus: Vec<u64>,
    lens: Vec<u32>,
    tick: u64,
}

impl<M> SetAssocCache<M> {
    /// An empty cache of the given geometry.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> SetAssocCache<M> {
        let sets = geom.num_sets() as usize;
        let ways = geom.ways() as usize;
        SetAssocCache {
            geom,
            slots: Self::uninit_slots(sets * ways),
            tags: vec![TAG_EMPTY; sets * ways],
            lrus: vec![0; sets * ways],
            lens: vec![0; sets],
            tick: 0,
        }
    }

    /// `n` slots of uninitialized capacity — the backing array is
    /// reserved but never written, so construction costs O(1) work
    /// (plus the tag/LRU mirror memsets, 16 bytes per slot).
    fn uninit_slots(n: usize) -> Vec<MaybeUninit<Line<M>>> {
        let mut v = Vec::with_capacity(n);
        // SAFETY: `MaybeUninit` imposes no initialization requirement,
        // so exposing uninitialized capacity is sound. Reads are gated
        // by the struct invariant (live iff tag != TAG_EMPTY).
        unsafe { v.set_len(n) };
        v
    }

    /// Shared reference to a live slot.
    ///
    /// Internal contract: callers must have established that
    /// `self.tags[slot] != TAG_EMPTY`.
    #[inline]
    fn slot_ref(&self, slot: usize) -> &Line<M> {
        debug_assert_ne!(self.tags[slot], TAG_EMPTY);
        // SAFETY: a non-empty tag marks a live slot (struct invariant).
        unsafe { self.slots[slot].assume_init_ref() }
    }

    /// Mutable reference to a live slot (same contract as `slot_ref`).
    #[inline]
    fn slot_mut(&mut self, slot: usize) -> &mut Line<M> {
        debug_assert_ne!(self.tags[slot], TAG_EMPTY);
        // SAFETY: a non-empty tag marks a live slot (struct invariant).
        unsafe { self.slots[slot].assume_init_mut() }
    }

    /// The cache's geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Number of currently valid lines.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.lens.iter().map(|&n| n as usize).sum()
    }

    #[inline]
    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The slot range holding `set`'s valid lines (its dense prefix).
    #[inline]
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.geom.ways() as usize;
        base..base + self.lens[set] as usize
    }

    /// Looks up the line containing `addr` without touching LRU state.
    #[must_use]
    pub fn peek(&self, addr: Addr) -> Option<&Line<M>> {
        let line_addr = self.geom.line_of(addr);
        let range = self.set_range(self.geom.set_index(line_addr));
        let i = self.tags[range.clone()]
            .iter()
            .position(|&t| t == line_addr.0)?;
        Some(self.slot_ref(range.start + i))
    }

    /// Looks up the line containing `addr`, refreshing its LRU age.
    #[inline]
    pub fn probe(&mut self, addr: Addr) -> Option<&mut Line<M>> {
        let (line_addr, set) = self.geom.line_and_set(addr);
        self.probe_prepared(line_addr, set)
    }

    /// [`SetAssocCache::probe`] with the line address and set index
    /// already computed (by [`CacheGeometry::line_and_set`] in the
    /// batch kernel's pre-pass). Bumps the LRU tick exactly like
    /// `probe`, so the two are interchangeable bit-for-bit; the only
    /// difference is the hoisted address arithmetic. The set walk is a
    /// single flat slot-array sweep over the set's dense prefix.
    #[inline]
    pub fn probe_prepared(&mut self, line_addr: Addr, set: usize) -> Option<&mut Line<M>> {
        let tick = self.bump();
        let range = self.set_range(set);
        let i = self.tags[range.clone()]
            .iter()
            .position(|&t| t == line_addr.0)?;
        let slot = range.start + i;
        self.lrus[slot] = tick;
        let line = self.slot_mut(slot);
        line.lru = tick;
        Some(line)
    }

    /// [`SetAssocCache::probe`] returning the hit slot index instead
    /// of the line: one tag scan with the identical LRU charge (bump,
    /// then stamp on a hit), after which the caller can inspect and
    /// mutate the line through the tick-neutral slot accessors
    /// ([`SetAssocCache::peek_slot`],
    /// [`SetAssocCache::slot_line_mut`]) without paying a second scan.
    pub fn probe_slot(&mut self, addr: Addr) -> Option<usize> {
        let (line_addr, set) = self.geom.line_and_set(addr);
        let tick = self.bump();
        let range = self.set_range(set);
        let i = self.tags[range.clone()]
            .iter()
            .position(|&t| t == line_addr.0)?;
        let slot = range.start + i;
        self.lrus[slot] = tick;
        self.slot_mut(slot).lru = tick;
        Some(slot)
    }

    /// The cache's LRU tick (total probe/insert bumps so far). The
    /// batched-path parity tests compare tick values to prove the fused
    /// probe charges exactly what the scalar probe pair does.
    #[must_use]
    pub fn lru_tick(&self) -> u64 {
        self.tick
    }

    /// One scan charged as *two* consecutive probes: the batched access
    /// path replaces the scalar `ensure`-probe + metadata-probe pair
    /// (both of which bump the tick and, on a hit, stamp the line with
    /// the bumped value) with a single walk.
    ///
    /// On a hit the tick advances by 2 and the line's LRU is stamped
    /// with the final value — exactly the end state of two back-to-back
    /// hitting probes, whose intermediate stamp is dead (immediately
    /// overwritten, observable by nothing). On a miss the tick advances
    /// by 1, matching the single failed `ensure` probe (the metadata
    /// probe then happens separately, after the fill). Returns the
    /// absolute slot index alongside the line so the caller can memoize
    /// the hit for the same-core/same-line fast path.
    #[inline]
    pub fn probe_fused(&mut self, line_addr: Addr, set: usize) -> Option<(usize, &mut Line<M>)> {
        let range = self.set_range(set);
        let hit = self.tags[range.clone()]
            .iter()
            .position(|&t| t == line_addr.0);
        match hit {
            Some(i) => {
                self.tick += 2;
                let tick = self.tick;
                let slot = range.start + i;
                self.lrus[slot] = tick;
                let line = self.slot_mut(slot);
                line.lru = tick;
                Some((slot, line))
            }
            None => {
                self.tick += 1;
                None
            }
        }
    }

    /// Reads slot `slot` without touching LRU state — the validation
    /// half of the hot-slot fast path (`None` past the dense prefix or
    /// out of range).
    #[must_use]
    #[inline]
    pub fn peek_slot(&self, slot: usize) -> Option<&Line<M>> {
        if *self.tags.get(slot)? == TAG_EMPTY {
            return None;
        }
        Some(self.slot_ref(slot))
    }

    /// Touches a slot already validated by [`SetAssocCache::peek_slot`]
    /// with the same two-probe LRU charge as
    /// [`SetAssocCache::probe_fused`], skipping the set walk entirely.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty — the caller must have validated it.
    #[inline]
    pub fn touch_slot_fused(&mut self, slot: usize) -> &mut Line<M> {
        assert_ne!(self.tags[slot], TAG_EMPTY, "validated hot slot");
        self.tick += 2;
        let tick = self.tick;
        self.lrus[slot] = tick;
        let line = self.slot_mut(slot);
        line.lru = tick;
        line
    }

    /// Mutable access to a slot without any LRU charge (re-borrowing a
    /// line whose probe cost was already paid this access).
    #[inline]
    pub fn slot_line_mut(&mut self, slot: usize) -> Option<&mut Line<M>> {
        if *self.tags.get(slot)? == TAG_EMPTY {
            return None;
        }
        Some(self.slot_mut(slot))
    }

    /// Inserts a line (which must not already be present), evicting the
    /// LRU victim if the set is full.
    ///
    /// # Errors
    ///
    /// Returns [`HardError::DuplicateLine`] if the line is already
    /// present — the hierarchy must probe first.
    pub fn insert(
        &mut self,
        addr: Addr,
        state: CState,
        meta: M,
    ) -> Result<Option<Evicted<M>>, HardError> {
        let line_addr = self.geom.line_of(addr);
        let ways = self.geom.ways() as usize;
        let tick = self.bump();
        let set = self.geom.set_index(line_addr);
        let range = self.set_range(set);
        if self.tags[range.clone()].contains(&line_addr.0) {
            return Err(HardError::DuplicateLine { line: line_addr });
        }
        let victim = if range.len() >= ways {
            // Victim choice reads the packed recency mirror; ties are
            // impossible (the tick strictly increases), so "first
            // minimum" agrees with a scan of the line structs.
            self.lrus[range]
                .iter()
                .enumerate()
                .min_by_key(|&(_, &lru)| lru)
                .map(|(vi, _)| vi)
                .map(|vi| {
                    let v = self.swap_remove(set, vi);
                    Evicted {
                        addr: v.addr,
                        state: v.state,
                        meta: v.meta,
                    }
                })
        } else {
            None
        };
        let slot = set * ways + self.lens[set] as usize;
        self.tags[slot] = line_addr.0;
        self.lrus[slot] = tick;
        // Overwriting a `MaybeUninit` never drops the old contents;
        // this slot was vacant (past the prefix), so there is nothing
        // to drop.
        self.slots[slot] = MaybeUninit::new(Line {
            addr: line_addr,
            state,
            meta,
            lru: tick,
        });
        self.lens[set] += 1;
        Ok(victim)
    }

    /// Removes position `i` of `set`'s prefix, backfilling with the
    /// last valid line — the `Vec::swap_remove` dance on the flat
    /// window.
    fn swap_remove(&mut self, set: usize, i: usize) -> Line<M> {
        let base = set * self.geom.ways() as usize;
        let last = self.lens[set] as usize - 1;
        self.slots.swap(base + i, base + last);
        self.tags.swap(base + i, base + last);
        self.lrus.swap(base + i, base + last);
        debug_assert_ne!(self.tags[base + last], TAG_EMPTY);
        self.tags[base + last] = TAG_EMPTY;
        self.lrus[base + last] = 0;
        self.lens[set] -= 1;
        // SAFETY: both positions were inside the dense prefix (live),
        // and the vacated slot's tag is now TAG_EMPTY, so ownership of
        // the line moves out exactly once.
        unsafe {
            std::mem::replace(&mut self.slots[base + last], MaybeUninit::uninit()).assume_init()
        }
    }

    /// Removes the line containing `addr`, returning it.
    pub fn remove(&mut self, addr: Addr) -> Option<Line<M>> {
        let line_addr = self.geom.line_of(addr);
        let set = self.geom.set_index(line_addr);
        let range = self.set_range(set);
        let i = self.tags[range].iter().position(|&t| t == line_addr.0)?;
        Some(self.swap_remove(set, i))
    }

    /// Iterates over all valid lines (in flat slot order, exactly the
    /// order the former `Option`-based array yielded).
    pub fn iter(&self) -> impl Iterator<Item = &Line<M>> {
        self.slots
            .iter()
            .zip(&self.tags)
            .filter(|(_, t)| **t != TAG_EMPTY)
            // SAFETY: a non-empty tag marks a live slot (struct
            // invariant).
            .map(|(s, _)| unsafe { s.assume_init_ref() })
    }

    /// Mutably iterates over all valid lines (for metadata flash
    /// operations such as HARD's barrier reset).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Line<M>> {
        self.slots
            .iter_mut()
            .zip(&self.tags)
            .filter(|(_, t)| **t != TAG_EMPTY)
            // SAFETY: a non-empty tag marks a live slot (struct
            // invariant).
            .map(|(s, _)| unsafe { s.assume_init_mut() })
    }
}

impl<M> Drop for SetAssocCache<M> {
    fn drop(&mut self) {
        if !std::mem::needs_drop::<Line<M>>() {
            return;
        }
        for (s, t) in self.slots.iter_mut().zip(&self.tags) {
            if *t != TAG_EMPTY {
                // SAFETY: a non-empty tag marks a live slot; each live
                // line is dropped exactly once here.
                unsafe { s.assume_init_drop() };
            }
        }
    }
}

impl<M: Clone> Clone for SetAssocCache<M> {
    fn clone(&self) -> SetAssocCache<M> {
        let mut slots = Self::uninit_slots(self.slots.len());
        for (i, t) in self.tags.iter().enumerate() {
            if *t != TAG_EMPTY {
                slots[i] = MaybeUninit::new(self.slot_ref(i).clone());
            }
        }
        SetAssocCache {
            geom: self.geom,
            slots,
            tags: self.tags.clone(),
            lrus: self.lrus.clone(),
            lens: self.lens.clone(),
            tick: self.tick,
        }
    }
}

impl<M: std::fmt::Debug> std::fmt::Debug for SetAssocCache<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("geom", &self.geom)
            .field("occupancy", &self.occupancy())
            .field("tick", &self.tick)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u32> {
        // 2 sets × 2 ways of 32-byte lines.
        SetAssocCache::new(CacheGeometry::new(128, 2, 32))
    }

    #[test]
    fn insert_probe_roundtrip() {
        let mut c = small();
        assert!(c
            .insert(Addr(0x20), CState::Exclusive, 7)
            .unwrap()
            .is_none());
        assert_eq!(c.occupancy(), 1);
        let line = c.probe(Addr(0x24)).expect("same line");
        assert_eq!(line.meta, 7);
        assert_eq!(line.state, CState::Exclusive);
        assert!(c.peek(Addr(0x40)).is_none());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines 0x00, 0x40 (with 2 sets of 32B lines,
        // set = (addr/32) & 1).
        c.insert(Addr(0x00), CState::Exclusive, 1).unwrap();
        c.insert(Addr(0x40), CState::Exclusive, 2).unwrap();
        // Touch 0x00 so 0x40 becomes LRU.
        c.probe(Addr(0x00));
        let ev = c
            .insert(Addr(0x80), CState::Exclusive, 3)
            .unwrap()
            .expect("eviction");
        assert_eq!(ev.addr, Addr(0x40));
        assert_eq!(ev.meta, 2);
        assert!(c.peek(Addr(0x00)).is_some());
        assert!(c.peek(Addr(0x80)).is_some());
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        c.insert(Addr(0x00), CState::Exclusive, 1).unwrap();
        c.insert(Addr(0x20), CState::Exclusive, 2).unwrap(); // set 1
        c.insert(Addr(0x40), CState::Exclusive, 3).unwrap(); // set 0
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn remove_returns_line() {
        let mut c = small();
        c.insert(Addr(0x00), CState::Modified, 9).unwrap();
        let l = c.remove(Addr(0x1F)).expect("same line");
        assert_eq!(l.meta, 9);
        assert_eq!(l.state, CState::Modified);
        assert_eq!(c.occupancy(), 0);
        assert!(c.remove(Addr(0x00)).is_none());
    }

    #[test]
    fn double_insert_is_an_error() {
        let mut c = small();
        c.insert(Addr(0x00), CState::Exclusive, 1).unwrap();
        let err = c.insert(Addr(0x04), CState::Exclusive, 2); // same line
        assert_eq!(
            err.err(),
            Some(hard_types::HardError::DuplicateLine { line: Addr(0x00) })
        );
        assert_eq!(c.occupancy(), 1, "the original line is untouched");
    }

    #[test]
    fn probe_prepared_matches_probe() {
        let mut a = small();
        let mut b = small();
        for addr in [0x00u64, 0x20, 0x40, 0x24, 0x80, 0x00] {
            let _ = a.insert(Addr(addr), CState::Exclusive, addr as u32);
            let _ = b.insert(Addr(addr), CState::Exclusive, addr as u32);
            let got = a.probe(Addr(addr + 4)).map(|l| (l.addr, l.meta, l.lru));
            let (line, set) = b.geometry().line_and_set(Addr(addr + 4));
            let want = b.probe_prepared(line, set).map(|l| (l.addr, l.meta, l.lru));
            assert_eq!(got, want, "divergence at {addr:#x}");
        }
        assert_eq!(a.tick, b.tick, "LRU tick sequences must be identical");
    }

    #[test]
    fn probe_fused_matches_two_consecutive_probes() {
        let mut a = small();
        let mut b = small();
        for addr in [0x00u64, 0x20, 0x40, 0x24, 0x80, 0x00, 0x44] {
            let _ = a.insert(Addr(addr), CState::Exclusive, addr as u32);
            let _ = b.insert(Addr(addr), CState::Exclusive, addr as u32);
            let (line, set) = a.geometry().line_and_set(Addr(addr + 4));
            // Scalar recipe: the ensure probe then the metadata probe.
            let first = a.probe_prepared(line, set).map(|l| l.addr);
            let got = if first.is_some() {
                a.probe_prepared(line, set).map(|l| (l.addr, l.meta, l.lru))
            } else {
                None
            };
            let want = b
                .probe_fused(line, set)
                .map(|(_, l)| (l.addr, l.meta, l.lru));
            assert_eq!(got, want, "divergence at {addr:#x}");
            // On a miss the scalar path's second probe only happens
            // after a fill; model that by skipping it above, so the
            // tick must match probe-for-probe here.
            assert_eq!(a.tick, b.tick, "LRU tick divergence at {addr:#x}");
        }
    }

    #[test]
    fn touch_slot_fused_matches_probe_fused_on_the_same_slot() {
        let mut a = small();
        let mut b = small();
        a.insert(Addr(0x00), CState::Exclusive, 1).unwrap();
        b.insert(Addr(0x00), CState::Exclusive, 1).unwrap();
        let (line, set) = a.geometry().line_and_set(Addr(0x04));
        let (slot, _) = b.probe_fused(line, set).expect("hit");
        a.probe_fused(line, set);
        // Re-touch: scan path vs memoized hot-slot path.
        let la = a.probe_fused(line, set).map(|(_, l)| l.lru).expect("hit");
        assert_eq!(b.peek_slot(slot).map(|l| l.addr), Some(line));
        let lb = b.touch_slot_fused(slot).lru;
        assert_eq!(la, lb);
        assert_eq!(a.tick, b.tick);
    }

    #[test]
    fn iter_mut_allows_flash_updates() {
        let mut c = small();
        c.insert(Addr(0x00), CState::Exclusive, 1).unwrap();
        c.insert(Addr(0x20), CState::Exclusive, 2).unwrap();
        for line in c.iter_mut() {
            line.meta = 0;
        }
        assert!(c.iter().all(|l| l.meta == 0));
    }
}
