//! Multithreaded program model and deterministic interleaving.
//!
//! The HARD evaluation is *execution driven*: detectors observe the
//! stream of memory accesses and synchronization operations a
//! multithreaded program performs. This crate provides:
//!
//! * [`op::Op`] / [`program::Program`] — the per-thread operation lists
//!   produced by the workload generators (every operation carries a
//!   static [`hard_types::SiteId`] so alarms can be mapped back to
//!   "source code" as the paper does);
//! * [`sched::Scheduler`] — a seeded scheduler that interleaves the
//!   threads into one global, totally ordered [`event::TraceEvent`]
//!   stream while honouring lock blocking and barrier semantics. A given
//!   `(program, seed)` pair always produces the same trace, so HARD,
//!   happens-before and the ideal detectors can be compared on
//!   *identical executions* (paper §5.1);
//! * [`codec`] — a small binary format for persisting traces;
//! * [`stats::TraceStats`] — summary statistics used by tests and the
//!   harness;
//! * [`wire`] — the length-prefixed frame protocol spoken by the
//!   `hard-serve` network service and its clients.
//!
//! # Examples
//!
//! ```
//! use hard_trace::program::ProgramBuilder;
//! use hard_trace::sched::{SchedConfig, Scheduler};
//! use hard_types::{Addr, LockId, SiteId};
//!
//! let mut b = ProgramBuilder::new(2);
//! b.thread(0).lock(LockId(0x40), SiteId(1))
//!     .write(Addr(0x1000), 4, SiteId(2))
//!     .unlock(LockId(0x40), SiteId(3));
//! b.thread(1).lock(LockId(0x40), SiteId(4))
//!     .read(Addr(0x1000), 4, SiteId(5))
//!     .unlock(LockId(0x40), SiteId(6));
//! let program = b.build();
//! let trace = Scheduler::new(SchedConfig::default()).run(&program);
//! assert_eq!(trace.events.len(), 6);
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod detect;
pub mod event;
pub mod op;
pub mod packed_event;
pub mod program;
pub mod sched;
pub mod stats;
pub mod wire;

pub use detect::{
    observe_event, run_detector, run_detector_batched, run_detector_observed,
    run_detector_streamed, run_detector_streamed_batched, Detector, RaceReport,
};
pub use event::{Trace, TraceEvent};
pub use op::Op;
pub use packed_event::{Chunk, ChunkedReader, PackError, PackedEvent, PackedTrace, BATCH_EVENTS};
pub use program::{Program, ProgramBuilder, ThreadProgram};
pub use sched::{SchedConfig, Scheduler};
pub use stats::TraceStats;
