//! Table 2: overall effectiveness of HARD vs. happens-before, default
//! and ideal, on six applications with 10 injected races each.

use crate::campaign::{
    alarm_sites, injected_cell, probes, race_free_cell, score, BugOutcome, CampaignConfig,
};
use crate::detectors::DetectorKind;
use crate::runner::{execute_hardened_cell, RunLimits, RunOutcome};
use crate::table::TextTable;
use hard_workloads::App;

/// Per-detector tallies for one application.
#[derive(Clone, Copy, Debug, Default)]
pub struct DetectorTally {
    /// Bugs detected out of [`Table2::runs`].
    pub detected: usize,
    /// Misses attributable to L2 displacement of the metadata.
    pub missed_displaced: usize,
    /// Other misses.
    pub missed_other: usize,
    /// Source-level false alarms on the race-free run.
    pub alarms: usize,
}

/// One application row.
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// The application.
    pub app: App,
    /// HARD, default configuration.
    pub hard: DetectorTally,
    /// Ideal lockset.
    pub hard_ideal: DetectorTally,
    /// Hardware happens-before.
    pub hb: DetectorTally,
    /// Ideal happens-before.
    pub hb_ideal: DetectorTally,
}

/// The full Table 2 result.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Rows in the paper's application order.
    pub rows: Vec<Table2Row>,
    /// Injected runs per application.
    pub runs: usize,
}

/// The four Table 2 detector configurations.
#[must_use]
pub fn detector_set() -> [DetectorKind; 4] {
    [
        DetectorKind::hard_default(),
        DetectorKind::lockset_ideal(),
        DetectorKind::hb_default(),
        DetectorKind::hb_ideal(),
    ]
}

/// One unit of campaign work: `run` is `None` for the race-free
/// (false-alarm) execution, `Some(i)` for injected run `i`. The trace
/// is generated once per cell and all four detectors observe it.
fn compute_cell(app: App, run: Option<usize>, cfg: &CampaignConfig) -> [DetectorTally; 4] {
    let kinds = detector_set();
    let mut tallies = [DetectorTally::default(); 4];
    match run {
        None => {
            let rf = race_free_cell(app, cfg);
            for (k, tally) in kinds.iter().zip(tallies.iter_mut()) {
                let out = execute_hardened_cell(k, &rf, &[], RunLimits::unlimited());
                let RunOutcome::Ok(dr, _) = out else {
                    unreachable!("fault-free unlimited runs always complete");
                };
                tally.alarms = alarm_sites(&dr).len();
            }
        }
        Some(run_idx) => {
            let (trace, injection) = injected_cell(app, cfg, run_idx);
            let pr = probes(&injection);
            for (k, tally) in kinds.iter().zip(tallies.iter_mut()) {
                let out = execute_hardened_cell(k, &trace, &pr, RunLimits::unlimited());
                let RunOutcome::Ok(dr, _) = out else {
                    unreachable!("fault-free unlimited runs always complete");
                };
                match score(&dr, &injection) {
                    BugOutcome::Detected => tally.detected += 1,
                    BugOutcome::MissedDisplaced => tally.missed_displaced += 1,
                    BugOutcome::Missed => tally.missed_other += 1,
                }
            }
        }
    }
    tallies
}

impl DetectorTally {
    fn merge(&mut self, other: &DetectorTally) {
        self.detected += other.detected;
        self.missed_displaced += other.missed_displaced;
        self.missed_other += other.missed_other;
        self.alarms += other.alarms;
    }
}

/// Runs the Table 2 campaign on the cell pool: one cell per
/// `(application, run)` pair (plus the race-free alarm cell per app),
/// fanned out over `cfg.jobs` workers and merged in cell order — the
/// result is bit-identical for every worker count.
#[must_use]
pub fn run(cfg: &CampaignConfig) -> Table2 {
    let apps = App::all();
    let mut cells: Vec<(App, Option<usize>)> = Vec::with_capacity(apps.len() * (cfg.runs + 1));
    for &app in &apps {
        cells.push((app, None));
        for run_idx in 0..cfg.runs {
            cells.push((app, Some(run_idx)));
        }
    }
    let results = crate::parallel::map_cells(cfg.jobs, &cells, |_, &(app, run)| {
        compute_cell(app, run, cfg)
    });
    let per_app = cfg.runs + 1;
    let rows = apps
        .iter()
        .enumerate()
        .map(|(ai, &app)| {
            let mut tallies = [DetectorTally::default(); 4];
            for cell in &results[ai * per_app..(ai + 1) * per_app] {
                for (t, c) in tallies.iter_mut().zip(cell) {
                    t.merge(c);
                }
            }
            Table2Row {
                app,
                hard: tallies[0],
                hard_ideal: tallies[1],
                hb: tallies[2],
                hb_ideal: tallies[3],
            }
        })
        .collect();
    Table2 {
        rows,
        runs: cfg.runs,
    }
}

impl Table2 {
    /// Total bugs detected by HARD (default) across applications.
    #[must_use]
    pub fn hard_total_detected(&self) -> usize {
        self.rows.iter().map(|r| r.hard.detected).sum()
    }

    /// Total bugs detected by happens-before (default).
    #[must_use]
    pub fn hb_total_detected(&self) -> usize {
        self.rows.iter().map(|r| r.hb.detected).sum()
    }

    /// Renders in the paper's layout.
    #[must_use]
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "application",
            "HARD bugs",
            "HARD alarms",
            "HARD-ideal bugs",
            "HARD-ideal alarms",
            "HB bugs",
            "HB alarms",
            "HB-ideal bugs",
            "HB-ideal alarms",
        ]);
        for r in &self.rows {
            let frac = |d: usize| format!("{d}/{}", self.runs);
            t.row(vec![
                r.app.name().into(),
                frac(r.hard.detected),
                r.hard.alarms.to_string(),
                frac(r.hard_ideal.detected),
                r.hard_ideal.alarms.to_string(),
                frac(r.hb.detected),
                r.hb.alarms.to_string(),
                frac(r.hb_ideal.detected),
                r.hb_ideal.alarms.to_string(),
            ]);
        }
        t
    }
}

impl std::fmt::Display for Table2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_campaign_has_paper_shape() {
        let cfg = CampaignConfig::reduced(0.1, 4);
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 6);
        // Headline claims at reduced scale: HARD detects at least as
        // many bugs as happens-before overall, and the ideal variants
        // dominate their defaults.
        assert!(t.hard_total_detected() >= t.hb_total_detected());
        for r in &t.rows {
            assert!(r.hard_ideal.detected >= r.hard.detected, "{}", r.app);
            assert!(r.hb_ideal.detected >= r.hb.detected, "{}", r.app);
        }
        let rendered = t.render().to_string();
        assert!(rendered.contains("water-nsquared"));
    }
}
