/root/repo/target/debug/examples/fork_join-c98c241fcdb53b89.d: examples/fork_join.rs Cargo.toml

/root/repo/target/debug/examples/libfork_join-c98c241fcdb53b89.rmeta: examples/fork_join.rs Cargo.toml

examples/fork_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
