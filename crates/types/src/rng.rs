//! Deterministic pseudo-random number generation.
//!
//! The reproduction's experiment campaigns ("10 runs, each time
//! injecting different data races") must be exactly reproducible from a
//! seed, independent of external crate versions. This module implements
//! xoshiro256** (Blackman & Vigna) seeded through SplitMix64, the same
//! construction used by many simulators.

/// A deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use hard_types::Xoshiro256;
/// let mut a = Xoshiro256::seed_from_u64(42);
/// let mut b = Xoshiro256::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // SplitMix64 cannot produce four zero outputs from any seed, but
        // guard anyway: the all-zero state is the one fixed point.
        debug_assert!(s.iter().any(|&w| w != 0));
        Xoshiro256 { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, n)`.
    ///
    /// Uses Lemire's unbiased multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range upper bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Splits off an independent generator, advancing `self`.
    ///
    /// Used to hand one sub-stream per simulated thread so the event
    /// order inside one thread does not depend on the other threads.
    pub fn fork(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_panics() {
        Xoshiro256::seed_from_u64(0).gen_range(0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-1.0));
        assert!(rng.gen_bool(2.0));
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(sorted, expect);
        assert_ne!(
            v, expect,
            "a 100-element shuffle fixing everything is astronomically unlikely"
        );
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let one = [42u8];
        assert_eq!(rng.choose(&one), Some(&42));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Xoshiro256::seed_from_u64(13);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
