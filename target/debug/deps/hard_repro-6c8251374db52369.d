/root/repo/target/debug/deps/hard_repro-6c8251374db52369.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhard_repro-6c8251374db52369.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
