/root/repo/target/debug/deps/hard_obs-500a5e3ed1863ca4.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/exposition.rs crates/obs/src/handle.rs crates/obs/src/jsonl.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs Cargo.toml

/root/repo/target/debug/deps/libhard_obs-500a5e3ed1863ca4.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/exposition.rs crates/obs/src/handle.rs crates/obs/src/jsonl.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/exposition.rs:
crates/obs/src/handle.rs:
crates/obs/src/jsonl.rs:
crates/obs/src/metric.rs:
crates/obs/src/recorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
