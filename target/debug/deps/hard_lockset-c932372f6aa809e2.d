/root/repo/target/debug/deps/hard_lockset-c932372f6aa809e2.d: crates/lockset/src/lib.rs crates/lockset/src/bloom_table.rs crates/lockset/src/ideal.rs crates/lockset/src/meta.rs crates/lockset/src/setrepr.rs crates/lockset/src/state.rs

/root/repo/target/debug/deps/libhard_lockset-c932372f6aa809e2.rlib: crates/lockset/src/lib.rs crates/lockset/src/bloom_table.rs crates/lockset/src/ideal.rs crates/lockset/src/meta.rs crates/lockset/src/setrepr.rs crates/lockset/src/state.rs

/root/repo/target/debug/deps/libhard_lockset-c932372f6aa809e2.rmeta: crates/lockset/src/lib.rs crates/lockset/src/bloom_table.rs crates/lockset/src/ideal.rs crates/lockset/src/meta.rs crates/lockset/src/setrepr.rs crates/lockset/src/state.rs

crates/lockset/src/lib.rs:
crates/lockset/src/bloom_table.rs:
crates/lockset/src/ideal.rs:
crates/lockset/src/meta.rs:
crates/lockset/src/setrepr.rs:
crates/lockset/src/state.rs:
