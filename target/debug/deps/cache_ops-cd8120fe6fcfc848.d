/root/repo/target/debug/deps/cache_ops-cd8120fe6fcfc848.d: crates/bench/benches/cache_ops.rs

/root/repo/target/debug/deps/cache_ops-cd8120fe6fcfc848: crates/bench/benches/cache_ops.rs

crates/bench/benches/cache_ops.rs:
