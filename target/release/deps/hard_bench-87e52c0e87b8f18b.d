/root/repo/target/release/deps/hard_bench-87e52c0e87b8f18b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhard_bench-87e52c0e87b8f18b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhard_bench-87e52c0e87b8f18b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
