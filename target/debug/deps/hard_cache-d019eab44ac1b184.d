/root/repo/target/debug/deps/hard_cache-d019eab44ac1b184.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/cstate.rs crates/cache/src/directory.rs crates/cache/src/geometry.rs crates/cache/src/hierarchy.rs crates/cache/src/policy.rs crates/cache/src/stats.rs crates/cache/src/timing.rs

/root/repo/target/debug/deps/libhard_cache-d019eab44ac1b184.rlib: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/cstate.rs crates/cache/src/directory.rs crates/cache/src/geometry.rs crates/cache/src/hierarchy.rs crates/cache/src/policy.rs crates/cache/src/stats.rs crates/cache/src/timing.rs

/root/repo/target/debug/deps/libhard_cache-d019eab44ac1b184.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/cstate.rs crates/cache/src/directory.rs crates/cache/src/geometry.rs crates/cache/src/hierarchy.rs crates/cache/src/policy.rs crates/cache/src/stats.rs crates/cache/src/timing.rs

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/cstate.rs:
crates/cache/src/directory.rs:
crates/cache/src/geometry.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/policy.rs:
crates/cache/src/stats.rs:
crates/cache/src/timing.rs:
