/root/repo/target/debug/deps/bloom_ops-5b178ad74144d620.d: crates/bench/benches/bloom_ops.rs Cargo.toml

/root/repo/target/debug/deps/libbloom_ops-5b178ad74144d620.rmeta: crates/bench/benches/bloom_ops.rs Cargo.toml

crates/bench/benches/bloom_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
