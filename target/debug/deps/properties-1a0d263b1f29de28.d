/root/repo/target/debug/deps/properties-1a0d263b1f29de28.d: crates/hb/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1a0d263b1f29de28.rmeta: crates/hb/tests/properties.rs Cargo.toml

crates/hb/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
