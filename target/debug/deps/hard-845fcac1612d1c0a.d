/root/repo/target/debug/deps/hard-845fcac1612d1c0a.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/directory_machine.rs crates/core/src/hb_machine.rs crates/core/src/hybrid.rs crates/core/src/machine.rs crates/core/src/metadata.rs crates/core/src/software.rs

/root/repo/target/debug/deps/libhard-845fcac1612d1c0a.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/directory_machine.rs crates/core/src/hb_machine.rs crates/core/src/hybrid.rs crates/core/src/machine.rs crates/core/src/metadata.rs crates/core/src/software.rs

/root/repo/target/debug/deps/libhard-845fcac1612d1c0a.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/directory_machine.rs crates/core/src/hb_machine.rs crates/core/src/hybrid.rs crates/core/src/machine.rs crates/core/src/metadata.rs crates/core/src/software.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/directory_machine.rs:
crates/core/src/hb_machine.rs:
crates/core/src/hybrid.rs:
crates/core/src/machine.rs:
crates/core/src/metadata.rs:
crates/core/src/software.rs:
