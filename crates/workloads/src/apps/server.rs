//! server: a request-serving application in the style of the paper's
//! §7 future work ("we plan to evaluate HARD for more applications
//! especially server programs, such as apache and mysql").
//!
//! Unlike the barrier-phased SPLASH-2 kernels, the server uses
//! fork/join threading: a dispatcher forks worker threads, feeds them
//! through a locked request queue, and joins them at shutdown. Workers
//! update per-session state under per-session locks (8-byte record
//! fields), bump global statistics under a hot lock, and run on
//! cache-resident connection buffers. A shutdown flag is published
//! without synchronization — the residual hand-crafted-sync alarm.
//!
//! Not part of [`super::App::all`]: the six-application tables stay
//! exactly the paper's; the server campaign is the separate
//! `hard-exp server` experiment.

use crate::common::{AppBuilder, WorkloadConfig};
use hard_trace::Program;
use hard_types::ThreadId;

/// Generates the server-like program.
///
/// # Panics
///
/// Panics if `cfg.num_threads < 2` (a dispatcher plus at least one
/// worker).
#[must_use]
pub fn generate(cfg: &WorkloadConfig) -> Program {
    assert!(
        cfg.num_threads >= 2,
        "server needs a dispatcher and workers"
    );
    let mut b = AppBuilder::new(cfg);
    let threads = b.threads as u32;
    let workers = threads - 1;

    let queue = b.locked_var(); // request queue head
    let stats = b.locked_var(); // served-request counter
    let sessions: Vec<_> = (0..12).map(|_| b.locked_var()).collect();
    let shutdown = b.flag_pair(); // unsynchronized shutdown publication
    let clusters = b.fs_clusters(&[(4, 2), (8, 2)]); // per-worker counters

    let requests = b.scaled(24);
    let buffer_chunk = (b.scaled(8 * 1024) as u64).max(32) / 32 * 32;
    let buffers: Vec<_> = (1..threads)
        .map(|w| b.stream_region(w, buffer_chunk.max(32) * 4))
        .collect();

    // Dispatcher: fork the pool, enqueue the work, then wait for every
    // worker and read the final statistics.
    let fork_site = b.layout.site();
    let join_site = b.layout.site();
    for w in 1..threads {
        b.pb.thread(0).fork(ThreadId(w), fork_site);
    }
    for _ in 0..requests {
        b.update(0, &queue);
    }
    b.flag_produce(0, &shutdown);
    for w in 1..threads {
        b.pb.thread(0).join(ThreadId(w), join_site);
    }
    b.read_locked(0, &stats);

    // Workers: pop requests, touch the session state, account, and
    // sweep their connection buffer.
    for w in 1..threads {
        let mut order: Vec<usize> = (0..sessions.len()).collect();
        b.rng.shuffle(&mut order);
        let per_worker = requests / workers as usize;
        let mut sweep = 0u64;
        for (k, &si) in order.iter().cycle().take(per_worker.max(1)).enumerate() {
            b.update(w, &queue); // pop
            let session = sessions[si];
            // The session record: an 8-byte field updated under the
            // session lock.
            b.pb.thread(w)
                .lock(session.lock, b_site(&session))
                .read(session.addr, 8, r_site(&session))
                .write(session.addr, 8, w_site(&session))
                .unlock(session.lock, u_site(&session));
            b.update(w, &stats);
            let buf = buffers[(w - 1) as usize];
            b.stream_over(w, &buf, sweep, buffer_chunk);
            sweep += buffer_chunk;
            b.compute(w, 150);
            if k % 4 == 0 {
                for c in &clusters.clone() {
                    b.fs_touch_one(c, w);
                }
            }
        }
        b.flag_consume(w, &shutdown);
    }
    b.finish()
}

// LockedVar's site fields are private to `common`; the server reuses
// its public pieces through these helpers so the session record can do
// 8-byte accesses (update() is fixed at 4 bytes).
fn b_site(v: &crate::common::LockedVar) -> hard_types::SiteId {
    v.sites().0
}
fn r_site(v: &crate::common::LockedVar) -> hard_types::SiteId {
    v.sites().1
}
fn w_site(v: &crate::common::LockedVar) -> hard_types::SiteId {
    v.sites().2
}
fn u_site(v: &crate::common::LockedVar) -> hard_types::SiteId {
    v.sites().3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{enumerate_critical_sections, inject_race};
    use hard_trace::{SchedConfig, Scheduler, TraceStats};

    #[test]
    fn generates_a_valid_fork_join_program() {
        let p = generate(&WorkloadConfig::reduced(0.3));
        assert_eq!(p.validate(), Ok(()));
        let trace = Scheduler::new(SchedConfig::default()).run(&p);
        let s = TraceStats::from_trace(&trace);
        assert_eq!(s.forks, 3, "the dispatcher forks three workers");
        assert_eq!(s.joins, 3);
        assert_eq!(s.barrier_completes, 0, "servers don't barrier");
        assert!(s.locks > 20);
    }

    #[test]
    fn sessions_are_injectable() {
        let p = generate(&WorkloadConfig::reduced(0.3));
        let cs = enumerate_critical_sections(&p).unwrap();
        assert!(cs.len() > 10);
        for seed in 0..3 {
            let (injected, info) = inject_race(&p, seed).unwrap();
            assert_eq!(injected.validate(), Ok(()), "seed {seed}");
            assert!(!info.section.exposed_accesses.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::reduced(0.3);
        assert_eq!(generate(&cfg), generate(&cfg));
    }
}
