//! Property-based tests of the happens-before machinery.

use hard_hb::{hb_access, LineClocks, SyncClocks, VectorClock};
use hard_types::{AccessKind, LockId, ThreadId};
use proptest::prelude::*;

fn arb_clock(width: usize) -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u64..20, width..=width).prop_map(move |vals| {
        let mut c = VectorClock::new(vals.len());
        for (i, v) in vals.iter().enumerate() {
            for _ in 0..*v {
                c.tick(ThreadId(i as u32));
            }
        }
        c
    })
}

/// Sync operations drawn for the lattice simulation.
#[derive(Clone, Debug)]
enum SyncOp {
    Acquire(u32, u8),
    Release(u32, u8),
    Fork(u32, u32),
    Join(u32, u32),
    Barrier,
}

fn arb_sync_ops() -> impl Strategy<Value = Vec<SyncOp>> {
    let op = prop_oneof![
        (0u32..3, 0u8..2).prop_map(|(t, l)| SyncOp::Acquire(t, l)),
        (0u32..3, 0u8..2).prop_map(|(t, l)| SyncOp::Release(t, l)),
        (0u32..3, 0u32..3).prop_map(|(a, b)| SyncOp::Fork(a, b)),
        (0u32..3, 0u32..3).prop_map(|(a, b)| SyncOp::Join(a, b)),
        Just(SyncOp::Barrier),
    ];
    prop::collection::vec(op, 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Join is the lattice supremum: both operands happen-before it.
    #[test]
    fn join_is_an_upper_bound(a in arb_clock(3), b in arb_clock(3)) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.happens_before(&j));
        prop_assert!(b.happens_before(&j));
    }

    /// Join is commutative, associative and idempotent.
    #[test]
    fn join_lattice_laws(a in arb_clock(3), b in arb_clock(3), c in arb_clock(3)) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba, "commutative");

        let mut ab_c = ab.clone();
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");

        let mut aa = a.clone();
        aa.join(&a);
        prop_assert_eq!(&aa, &a, "idempotent");
    }

    /// happens_before is a partial order: reflexive, antisymmetric
    /// (equal clocks), transitive.
    #[test]
    fn happens_before_is_a_partial_order(
        a in arb_clock(3),
        b in arb_clock(3),
        c in arb_clock(3),
    ) {
        prop_assert!(a.happens_before(&a), "reflexive");
        if a.happens_before(&b) && b.happens_before(&a) {
            prop_assert_eq!(&a, &b, "antisymmetric");
        }
        if a.happens_before(&b) && b.happens_before(&c) {
            prop_assert!(a.happens_before(&c), "transitive");
        }
    }

    /// Thread clocks are monotone under every synchronization
    /// operation: nobody's knowledge ever decreases.
    #[test]
    fn sync_clocks_are_monotone(ops in arb_sync_ops()) {
        let mut s = SyncClocks::new(3);
        let mut prev: Vec<VectorClock> =
            (0..3).map(|t| s.thread(ThreadId(t)).clone()).collect();
        for op in ops {
            match op {
                SyncOp::Acquire(t, l) => s.acquire(ThreadId(t), LockId(u64::from(l) * 4)),
                SyncOp::Release(t, l) => s.release(ThreadId(t), LockId(u64::from(l) * 4)),
                SyncOp::Fork(a, b) if a != b && b != 0 => s.fork(ThreadId(a), ThreadId(b)),
                SyncOp::Join(a, b) if a != b => s.join_thread(ThreadId(a), ThreadId(b)),
                SyncOp::Barrier => s.barrier_all(),
                _ => {}
            }
            for t in 0..3 {
                let now = s.thread(ThreadId(t));
                prop_assert!(
                    prev[t as usize].happens_before(now),
                    "thread {t} clock went backwards"
                );
                prev[t as usize] = now.clone();
            }
        }
    }

    /// The race check is symmetric in outcome: for a write-write pair,
    /// whichever access is checked second, a race is flagged iff the
    /// clocks are concurrent.
    #[test]
    fn write_write_race_iff_concurrent(a in arb_clock(2), b in arb_clock(2)) {
        let t0 = ThreadId(0);
        let t1 = ThreadId(1);
        // Give each access a distinct owner epoch so epochs are
        // meaningful (epoch = own component; skip degenerate zeros).
        let mut a = a;
        let mut b = b;
        a.tick(t0);
        b.tick(t1);

        let mut m = LineClocks::new(2);
        hb_access(&mut m, t0, &a, AccessKind::Write);
        let out = hb_access(&mut m, t1, &b, AccessKind::Write);
        // a's write is ordered before b's iff a's own epoch is known
        // to b.
        let ordered = b.epoch_before(t0, a.get(t0));
        prop_assert_eq!(out.race_with_write, !ordered);
    }
}
