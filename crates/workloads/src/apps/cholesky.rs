//! cholesky: sparse Cholesky factorization.
//!
//! Signature: a hot task-queue head protected by a global lock (all
//! threads pop tasks constantly), per-panel locks protecting matrix
//! panel headers (each thread updates a couple of panels per phase in
//! its own order), a large streaming footprint (the panel data proper),
//! and substantial false sharing among per-thread counters packed into
//! shared lines. Few barriers. In the paper, cholesky shows high false
//! alarms (91 at 32 B), interleaving-sensitive happens-before misses
//! (6/10 detected) and one HARD displacement miss (9/10).

use crate::common::{AppBuilder, WorkloadConfig};
use hard_trace::Program;

/// Generates the cholesky-like program.
#[must_use]
pub fn generate(cfg: &WorkloadConfig) -> Program {
    let mut b = AppBuilder::new(cfg);
    let threads = b.threads as u32;

    let queue = b.locked_var(); // task-queue head: hot global lock
    let panels: Vec<_> = (0..24).map(|_| b.locked_var()).collect();
    let rotations: Vec<_> = (0..8).map(|_| b.rotation_var()).collect();
    let era_gate = b.locked_var(); // orders the lock-rotation eras
    let flags: Vec<_> = (0..6).map(|_| b.flag_pair()).collect();
    let benign: Vec<_> = (0..4).map(|_| b.benign_race()).collect();
    let clusters = b.fs_clusters(&[(4, 6), (8, 9), (16, 10)]);

    let phases = 4;
    let updates_per_panel = b.scaled(2);
    let queue_pops = b.scaled(8);
    let stream_chunk = (b.scaled(416 * 1024 / (24 * 2 + 8)) as u64).max(32);
    let barriers: Vec<_> = (0..phases).map(|_| b.barrier_point()).collect();

    for (phase, bp) in barriers.iter().enumerate() {
        // Warm-up: every thread reads each panel header under its lock
        // before the factorization work of the phase begins.
        for panel in &panels {
            for t in 0..threads {
                b.read_locked(t, panel);
            }
        }
        for t in 0..threads {
            b.read_locked(t, &queue);
            b.read_locked(t, &era_gate);
        }
        // Factorization: pop a task, update panels in a thread-specific
        // order, stream through the panel's numeric data.
        let sweep_len = panels.len() * updates_per_panel;
        for t in 0..threads {
            let mut order: Vec<usize> = (0..panels.len()).collect();
            b.rng.shuffle(&mut order);
            let sched = b.fs_schedule(&clusters, phase, phases, sweep_len, t);
            let mut pops_done = 0;
            for (step, &pi) in order.iter().cycle().take(sweep_len).enumerate() {
                if step % 3 == 0 && pops_done < queue_pops {
                    b.update(t, &queue);
                    pops_done += 1;
                }
                let panel = panels[pi];
                b.update(t, &panel);
                b.stream_private(t, stream_chunk);
                b.compute(t, 20);
                // Per-thread supernode counters false-share lines; the
                // schedule staggers owners by a quarter sweep.
                for ci in sched[step].clone() {
                    let c = clusters[ci].clone();
                    b.fs_touch_one(&c, t);
                }
            }
        }
        // Column ownership handoff rotates its lock mid-phase; the
        // era gate keeps the rotation happens-before-ordered.
        for r in &rotations {
            for t in 0..threads {
                b.rotation_update(t, r, false);
            }
        }
        for t in 0..threads {
            b.update(t, &era_gate);
        }
        for r in &rotations {
            for t in 0..threads {
                b.rotation_update(t, r, true);
            }
        }
        // Hand-crafted completion flags and benign progress markers.
        for (i, f) in flags.iter().enumerate() {
            let producer = (i as u32) % threads;
            let consumer = (producer + 1) % threads;
            b.flag_produce(producer, f);
            b.flag_consume(consumer, f);
        }
        for &v in &benign {
            for t in 0..threads {
                b.benign_write(t, v);
            }
        }
        b.arrive_all(bp);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::enumerate_critical_sections;
    use hard_trace::{SchedConfig, Scheduler, TraceStats};

    #[test]
    fn has_the_cholesky_signature() {
        let p = generate(&WorkloadConfig::reduced(0.05));
        let trace = Scheduler::new(SchedConfig::default()).run(&p);
        let s = TraceStats::from_trace(&trace);
        assert!(s.distinct_locks > 25, "queue + panels + rotation locks");
        assert_eq!(s.barrier_completes, 4, "four phases");
        assert!(s.locks > 500, "lock-dense");
        let cs = enumerate_critical_sections(&p).unwrap();
        assert!(cs.len() > 100);
    }

    #[test]
    fn full_scale_footprint_pressures_the_l2() {
        let p = generate(&WorkloadConfig::default());
        let trace = Scheduler::new(SchedConfig::default()).run(&p);
        let s = TraceStats::from_trace(&trace);
        // The stream touches one word per 32-byte line, so the touched
        // *line* footprint is ~8x the word footprint: >256KB of words
        // means >2MB of lines through the 1MB L2.
        assert!(
            s.footprint_bytes > 256 * 1024,
            "word footprint {} too small to pressure the 1MB L2",
            s.footprint_bytes
        );
    }
}
