/root/repo/target/debug/examples/splash_campaign-9a51714ce5cd25e2.d: examples/splash_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libsplash_campaign-9a51714ce5cd25e2.rmeta: examples/splash_campaign.rs Cargo.toml

examples/splash_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
