/root/repo/target/debug/deps/hard_hb-1bb611894a526587.d: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs

/root/repo/target/debug/deps/hard_hb-1bb611894a526587: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs

crates/hb/src/lib.rs:
crates/hb/src/clock.rs:
crates/hb/src/ideal.rs:
crates/hb/src/meta.rs:
crates/hb/src/scalar.rs:
crates/hb/src/sync.rs:
