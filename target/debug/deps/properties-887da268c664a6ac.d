/root/repo/target/debug/deps/properties-887da268c664a6ac.d: crates/trace/tests/properties.rs

/root/repo/target/debug/deps/properties-887da268c664a6ac: crates/trace/tests/properties.rs

crates/trace/tests/properties.rs:
