/root/repo/target/debug/deps/properties-1c7e54a5829d60b5.d: crates/cache/tests/properties.rs

/root/repo/target/debug/deps/properties-1c7e54a5829d60b5: crates/cache/tests/properties.rs

crates/cache/tests/properties.rs:
