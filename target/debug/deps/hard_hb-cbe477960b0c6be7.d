/root/repo/target/debug/deps/hard_hb-cbe477960b0c6be7.d: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libhard_hb-cbe477960b0c6be7.rmeta: crates/hb/src/lib.rs crates/hb/src/clock.rs crates/hb/src/ideal.rs crates/hb/src/meta.rs crates/hb/src/scalar.rs crates/hb/src/sync.rs Cargo.toml

crates/hb/src/lib.rs:
crates/hb/src/clock.rs:
crates/hb/src/ideal.rs:
crates/hb/src/meta.rs:
crates/hb/src/scalar.rs:
crates/hb/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
