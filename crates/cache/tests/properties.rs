//! Property-based tests for the memory hierarchy's invariants.

use hard_cache::policy::MetaFactory;
use hard_cache::{CacheGeometry, Hierarchy, HierarchyConfig};
use hard_types::{AccessKind, Addr, CoreId};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
struct SeqFactory;

impl MetaFactory for SeqFactory {
    type Meta = u64;

    fn fresh(&self, core: CoreId) -> u64 {
        u64::from(core.0) + 1
    }
}

fn tiny() -> HierarchyConfig {
    HierarchyConfig {
        num_cores: 3,
        l1: CacheGeometry::new(128, 2, 32),
        l2: CacheGeometry::new(512, 2, 32),
    }
}

fn arb_accesses() -> impl Strategy<Value = Vec<(u32, u64, bool)>> {
    // (core, line index over a small hot range, is_write)
    prop::collection::vec((0u32..3, 0u64..24, any::<bool>()), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inclusion: every valid L1 line is present in the L2.
    #[test]
    fn inclusion_invariant(accs in arb_accesses()) {
        let mut h = Hierarchy::new(tiny(), SeqFactory).unwrap();
        for (c, l, w) in accs {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let addr = Addr(l * 32);
            h.ensure(CoreId(c), addr, kind).unwrap();
            // After every step the requester holds the line...
            prop_assert!(h.meta(CoreId(c), addr).is_some());
        }
    }

    /// Coherence: if any L1 copy is M or E, it is the only copy; S
    /// copies may be plural. Checked after every single access.
    #[test]
    fn single_writer_invariant(accs in arb_accesses()) {
        let mut h = Hierarchy::new(tiny(), SeqFactory).unwrap();
        for (c, l, w) in accs {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            h.ensure(CoreId(c), Addr(l * 32), kind).unwrap();
            for la in 0..24u64 {
                let addr = Addr(la * 32);
                let states: Vec<_> = (0..3)
                    .filter_map(|cc| h.l1_state(CoreId(cc), addr))
                    .collect();
                if states.iter().any(|s| s.is_exclusive_kind()) {
                    prop_assert_eq!(
                        states.len(),
                        1,
                        "M/E copy of {:?} coexists with others: {:?}",
                        addr,
                        states
                    );
                }
            }
        }
    }

    /// A write by core A followed by any access from core B always
    /// yields B a copy carrying A-era metadata (piggyback), never a
    /// freshly fabricated one — unless the line was displaced from the
    /// L2 in between.
    #[test]
    fn metadata_piggybacks_on_transfer(l in 0u64..8, wb in any::<bool>()) {
        let mut h = Hierarchy::new(tiny(), SeqFactory).unwrap();
        let addr = Addr(l * 32);
        h.ensure(CoreId(0), addr, AccessKind::Write).unwrap();
        *h.meta_mut(CoreId(0), addr).unwrap() = 0xABCD;
        let kind = if wb { AccessKind::Write } else { AccessKind::Read };
        h.ensure(CoreId(1), addr, kind).unwrap();
        prop_assert_eq!(h.meta(CoreId(1), addr), Some(&0xABCD));
    }

    /// Statistics are consistent: hits + misses equals accesses, and
    /// each ensure call counts exactly one access.
    #[test]
    fn stats_add_up(accs in arb_accesses()) {
        let mut h = Hierarchy::new(tiny(), SeqFactory).unwrap();
        let n = accs.len() as u64;
        for (c, l, w) in accs {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            h.ensure(CoreId(c), Addr(l * 32), kind).unwrap();
        }
        prop_assert_eq!(h.stats().accesses(), n);
        prop_assert_eq!(h.stats().l1_hits + h.stats().l1_misses, n);
        prop_assert!(h.stats().l2_hits + h.stats().l2_misses <= h.stats().l1_misses);
    }

    /// Displacement marking is sound: `was_meta_lost` is set for every
    /// line reported through the eviction log, and refetching such a
    /// line yields factory-fresh metadata.
    #[test]
    fn displacement_resets_metadata(stream in prop::collection::vec(0u64..64, 30..120)) {
        let mut h = Hierarchy::new(tiny(), SeqFactory).unwrap();
        let probe = Addr(0);
        h.ensure(CoreId(0), probe, AccessKind::Write).unwrap();
        *h.meta_mut(CoreId(0), probe).unwrap() = 0xFFFF;
        for l in stream {
            h.ensure(CoreId(0), Addr((1 + l) * 32), AccessKind::Read).unwrap();
        }
        let evicted: Vec<Addr> = h.drain_l2_evictions();
        if evicted.contains(&probe) {
            prop_assert!(h.was_meta_lost(probe));
            let r = h.ensure(CoreId(0), probe, AccessKind::Read).unwrap();
            prop_assert!(r.refetch_after_loss);
            prop_assert_eq!(h.meta(CoreId(0), probe), Some(&1), "factory fresh");
        }
    }
}
