/root/repo/target/debug/deps/hard_lockset-2647661e0009c05a.d: crates/lockset/src/lib.rs crates/lockset/src/bloom_table.rs crates/lockset/src/ideal.rs crates/lockset/src/meta.rs crates/lockset/src/setrepr.rs crates/lockset/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libhard_lockset-2647661e0009c05a.rmeta: crates/lockset/src/lib.rs crates/lockset/src/bloom_table.rs crates/lockset/src/ideal.rs crates/lockset/src/meta.rs crates/lockset/src/setrepr.rs crates/lockset/src/state.rs Cargo.toml

crates/lockset/src/lib.rs:
crates/lockset/src/bloom_table.rs:
crates/lockset/src/ideal.rs:
crates/lockset/src/meta.rs:
crates/lockset/src/setrepr.rs:
crates/lockset/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
