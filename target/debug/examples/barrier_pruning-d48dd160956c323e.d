/root/repo/target/debug/examples/barrier_pruning-d48dd160956c323e.d: examples/barrier_pruning.rs

/root/repo/target/debug/examples/barrier_pruning-d48dd160956c323e: examples/barrier_pruning.rs

examples/barrier_pruning.rs:
